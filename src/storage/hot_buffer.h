#ifndef RHEEM_STORAGE_HOT_BUFFER_H_
#define RHEEM_STORAGE_HOT_BUFFER_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "common/result.h"
#include "storage/storage_plan.h"

namespace rheem {
namespace storage {

/// \brief Hot-data buffer (paper §6, "Embracing hot data"): keeps frequently
/// accessed datasets cached in the consumer's native row format so repeated
/// analytics skip the backend's parse/convert path.
///
/// LRU-evicted by an estimated-bytes capacity. The ablation_hot_buffer
/// benchmark measures the exact effect the paper predicts: repeated
/// analytics over a CSV-resident dataset pay the text parse once instead of
/// every run.
class HotDataBuffer {
 public:
  HotDataBuffer(StorageManager* manager, int64_t capacity_bytes)
      : manager_(manager), capacity_bytes_(capacity_bytes) {}

  /// Loads `dataset` through the cache.
  Result<Dataset> Load(const std::string& dataset);

  /// Drops a cached entry (e.g. after the dataset was rewritten).
  void Invalidate(const std::string& dataset);
  void Clear();

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t resident_bytes() const { return resident_bytes_; }
  std::size_t resident_entries() const { return cache_.size(); }

 private:
  void EvictUntilFits(int64_t incoming_bytes);

  struct Entry {
    Dataset data;
    int64_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  StorageManager* manager_;
  int64_t capacity_bytes_;
  std::map<std::string, Entry> cache_;
  std::list<std::string> lru_;  // front = most recent
  int64_t resident_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_HOT_BUFFER_H_

#ifndef RHEEM_STORAGE_HOT_BUFFER_H_
#define RHEEM_STORAGE_HOT_BUFFER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "storage/storage_plan.h"

namespace rheem {
namespace storage {

/// \brief Hot-data buffer (paper §6, "Embracing hot data"): keeps frequently
/// accessed datasets cached in the consumer's native row format so repeated
/// analytics skip the backend's parse/convert path.
///
/// LRU-evicted by an estimated-bytes capacity. The ablation_hot_buffer
/// benchmark measures the exact effect the paper predicts: repeated
/// analytics over a CSV-resident dataset pay the text parse once instead of
/// every run.
///
/// Thread-safe: the DAG-parallel executor and concurrent JobServer workers
/// load sources from many threads at once; all bookkeeping is guarded by an
/// internal mutex. A hit is O(1) — the cached dataset is returned as a
/// shared const pointer, never copied. On construction the buffer registers
/// itself as a write observer of its StorageManager, so any write routed
/// through the manager (Put/Delete/Execute) invalidates the stale entry;
/// writes that go straight to a backend bypass this hook and require a
/// manual Invalidate().
///
/// Emits `hot_buffer.hits` / `hot_buffer.misses` counters and the
/// `hot_buffer.resident_bytes` gauge into the process-wide MetricsRegistry.
class HotDataBuffer {
 public:
  HotDataBuffer(StorageManager* manager, int64_t capacity_bytes);
  ~HotDataBuffer();

  HotDataBuffer(const HotDataBuffer&) = delete;
  HotDataBuffer& operator=(const HotDataBuffer&) = delete;

  /// Loads `dataset` through the cache. Hits return the cached dataset
  /// without copying a single row; callers must treat it as immutable.
  Result<std::shared_ptr<const Dataset>> Load(const std::string& dataset);

  /// Drops a cached entry (e.g. after the dataset was rewritten).
  void Invalidate(const std::string& dataset);
  void Clear();

  StorageManager* manager() const { return manager_; }

  int64_t hits() const;
  int64_t misses() const;
  int64_t resident_bytes() const;
  std::size_t resident_entries() const;

 private:
  void EvictUntilFitsLocked(int64_t incoming_bytes);

  struct Entry {
    std::shared_ptr<const Dataset> data;
    int64_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  StorageManager* manager_;
  const int64_t capacity_bytes_;
  int observer_id_ = -1;

  mutable std::mutex mu_;
  std::map<std::string, Entry> cache_;
  std::list<std::string> lru_;  // front = most recent
  int64_t resident_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_HOT_BUFFER_H_

#ifndef RHEEM_STORAGE_STORAGE_PLAN_H_
#define RHEEM_STORAGE_STORAGE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/store_op.h"
#include "storage/transformation.h"

namespace rheem {
namespace storage {

/// \brief One unit of an execution storage plan: apply a transformation plan
/// to the incoming data and materialize the result on one backend under one
/// name. The counterpart of the processing layer's task atom (paper §6:
/// "an execution storage plan is composed of storage atoms").
struct StorageAtom {
  std::string backend;           // target backend name
  std::string dataset;           // name under which to store
  TransformationPlan transform;  // applied on upload
  /// Key column to index by when the backend supports point lookups
  /// (-1 = backend default).
  int key_column = -1;
};

/// \brief An optimized execution storage plan (x-store level): the atoms are
/// executed in order against the registered backends.
struct StoragePlan {
  std::vector<StorageAtom> atoms;

  std::string ToString() const;
};

/// \brief Registry of storage backends plus the plan executor — the runtime
/// half of the storage abstraction. The optimizer half lives in
/// storage_optimizer.h.
class StorageManager {
 public:
  StorageManager() = default;

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  Status RegisterBackend(std::unique_ptr<StorageBackend> backend);
  Result<StorageBackend*> Backend(const std::string& name) const;
  std::vector<StorageBackend*> Backends() const;

  /// Executes every atom of `plan` over `data`.
  Status Execute(const StoragePlan& plan, const Dataset& data);

  /// Finds the dataset on whichever backend holds it (first match in
  /// registration order).
  Result<Dataset> Load(const std::string& dataset) const;
  Result<StorageBackend*> Locate(const std::string& dataset) const;

 private:
  std::vector<std::unique_ptr<StorageBackend>> backends_;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_STORAGE_PLAN_H_

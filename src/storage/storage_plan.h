#ifndef RHEEM_STORAGE_STORAGE_PLAN_H_
#define RHEEM_STORAGE_STORAGE_PLAN_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/store_op.h"
#include "storage/transformation.h"

namespace rheem {
namespace storage {

/// \brief One unit of an execution storage plan: apply a transformation plan
/// to the incoming data and materialize the result on one backend under one
/// name. The counterpart of the processing layer's task atom (paper §6:
/// "an execution storage plan is composed of storage atoms").
struct StorageAtom {
  std::string backend;           // target backend name
  std::string dataset;           // name under which to store
  TransformationPlan transform;  // applied on upload
  /// Key column to index by when the backend supports point lookups
  /// (-1 = backend default).
  int key_column = -1;
};

/// \brief An optimized execution storage plan (x-store level): the atoms are
/// executed in order against the registered backends.
struct StoragePlan {
  std::vector<StorageAtom> atoms;

  std::string ToString() const;
};

/// \brief Registry of storage backends plus the plan executor — the runtime
/// half of the storage abstraction. The optimizer half lives in
/// storage_optimizer.h.
///
/// Loads and writes routed through the manager are safe to issue
/// concurrently: a reader-writer lock serializes writers against readers,
/// so a Load never observes a half-written dataset. Direct
/// StorageBackend::Put/Get calls bypass that lock (and the write
/// observers) — backends themselves are not required to be thread-safe.
class StorageManager {
 public:
  /// Called after a dataset is (re)written or deleted through the manager.
  using WriteObserver = std::function<void(const std::string& dataset)>;

  StorageManager() = default;

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  Status RegisterBackend(std::unique_ptr<StorageBackend> backend);
  Result<StorageBackend*> Backend(const std::string& name) const;
  std::vector<StorageBackend*> Backends() const;

  /// Executes every atom of `plan` over `data`. Notifies write observers
  /// per materialized atom.
  Status Execute(const StoragePlan& plan, const Dataset& data);

  /// Writes `data` under `dataset` on the named backend and notifies the
  /// write observers (hot buffers drop their now-stale entry). Writes that
  /// bypass the manager (StorageBackend::Put directly) do NOT notify.
  Status Put(const std::string& backend, const std::string& dataset,
             const Dataset& data);

  /// Deletes `dataset` from every backend holding it; notifies observers.
  Status Delete(const std::string& dataset);

  /// Finds the dataset on whichever backend holds it (first match in
  /// registration order).
  Result<Dataset> Load(const std::string& dataset) const;
  Result<StorageBackend*> Locate(const std::string& dataset) const;

  /// Registers a callback fired after any write routed through the manager.
  /// Returns an id for RemoveWriteObserver. Thread-safe; the callback may be
  /// invoked from whichever thread performs the write and must not call back
  /// into the manager's write path.
  int AddWriteObserver(WriteObserver observer);
  void RemoveWriteObserver(int id);

  /// Retries per faulted Load (default 2). Backend reads are instrumented
  /// with the "storage.read" FaultInjector site; a fired fault is treated as
  /// a transient backend read error and retried within this budget, so a
  /// bounded chaos schedule never surfaces through a Load. Writes carry the
  /// (unretried) "storage.write" site.
  void set_read_retries(int n) { read_retries_ = n; }

 private:
  void NotifyWrite(const std::string& dataset) const;
  Result<StorageBackend*> LocateLocked(const std::string& dataset) const;

  std::vector<std::unique_ptr<StorageBackend>> backends_;

  /// Guards the backends' dataset state: shared for Load/Locate, exclusive
  /// for Put/Delete/Execute. Held only around backend calls, never while
  /// notifying observers.
  mutable std::shared_mutex data_mu_;

  mutable std::mutex observer_mu_;
  std::vector<std::pair<int, WriteObserver>> observers_;
  int next_observer_id_ = 0;
  int read_retries_ = 2;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_STORAGE_PLAN_H_

#ifndef RHEEM_STORAGE_TRANSFORMATION_H_
#define RHEEM_STORAGE_TRANSFORMATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/operators/descriptors.h"
#include "data/dataset.h"

namespace rheem {
namespace storage {

/// Kinds of data transformations applicable while a dataset is loaded into a
/// store (the Cartilage [Jindal et al., SIGMOD'13] idea the paper's storage
/// section builds on: transformation plans analogous to logical query plans,
/// applied to raw data on upload).
enum class TransformKind {
  kProject,    // keep a column subset
  kSortBy,     // order rows by one column
  kFilter,     // keep rows satisfying a predicate UDF
  kDedupe,     // drop duplicate rows
};

const char* TransformKindToString(TransformKind kind);

/// \brief One step of a transformation plan. Steps at this level are the
/// paper's "storage atoms": the minimum unit of data-quanta transformation
/// (e.g. a projection), as opposed to the data quanta themselves (§6).
struct TransformStep {
  TransformKind kind = TransformKind::kProject;
  std::vector<int> columns;  // kProject
  int column = -1;           // kSortBy
  bool ascending = true;     // kSortBy
  PredicateUdf predicate;    // kFilter

  static TransformStep Project(std::vector<int> columns);
  static TransformStep SortBy(int column, bool ascending = true);
  static TransformStep Filter(PredicateUdf predicate);
  static TransformStep Dedupe();
};

/// \brief Ordered sequence of storage atoms applied on upload.
class TransformationPlan {
 public:
  TransformationPlan() = default;

  TransformationPlan& Add(TransformStep step);

  std::size_t size() const { return steps_.size(); }
  const std::vector<TransformStep>& steps() const { return steps_; }

  /// Applies every step in order.
  Result<Dataset> Apply(const Dataset& in) const;

  std::string ToString() const;

 private:
  std::vector<TransformStep> steps_;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_TRANSFORMATION_H_

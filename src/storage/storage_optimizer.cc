#include "storage/storage_optimizer.h"

#include <limits>

namespace rheem {
namespace storage {

double StorageOptimizer::Score(const BackendTraits& traits,
                               const AccessProfile& profile) {
  if (profile.requires_persistence && !traits.persistent) {
    return std::numeric_limits<double>::infinity();
  }
  // Full-scan term: columnar stores scan column subsets much cheaper.
  double scan_factor = traits.scan_cost_factor;
  if (profile.column_subset_access && traits.columnar) {
    scan_factor *= 0.3;
  }
  double cost = profile.scan_frequency * scan_factor;
  // Lookup term: keyed backends answer point lookups without scanning.
  const double lookup_factor = traits.point_lookup ? 0.05 : 2.0;
  cost += profile.point_lookup_frequency * lookup_factor;
  // Append term: file-backed stores rewrite on append in this implementation.
  cost += profile.append_frequency * (traits.persistent ? 1.5 : 0.2);
  return cost;
}

Result<StoragePlan> StorageOptimizer::Plan(const std::string& dataset_name,
                                           const AccessProfile& profile) const {
  StorageBackend* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  for (StorageBackend* backend : manager_->Backends()) {
    const double score = Score(backend->traits(), profile);
    if (score < best_score) {
      best_score = score;
      best = backend;
    }
  }
  if (best == nullptr || best_score == std::numeric_limits<double>::infinity()) {
    return Status::NotFound(
        "no registered backend satisfies the access profile for '" +
        dataset_name + "'");
  }
  StorageAtom atom;
  atom.backend = best->name();
  atom.dataset = dataset_name;
  if (profile.range_filter_column >= 0) {
    atom.transform.Add(TransformStep::SortBy(profile.range_filter_column));
  }
  if (best->traits().point_lookup && profile.key_column >= 0) {
    atom.key_column = profile.key_column;
  }
  StoragePlan plan;
  plan.atoms.push_back(std::move(atom));
  return plan;
}

Status StorageOptimizer::Store(const std::string& dataset_name,
                               const Dataset& data,
                               const AccessProfile& profile) const {
  RHEEM_ASSIGN_OR_RETURN(StoragePlan plan, Plan(dataset_name, profile));
  return manager_->Execute(plan, data);
}

}  // namespace storage
}  // namespace rheem

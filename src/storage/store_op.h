#ifndef RHEEM_STORAGE_STORE_OP_H_
#define RHEEM_STORAGE_STORE_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rheem {
namespace storage {

/// The three levels of the RHEEM data storage abstraction (paper §6,
/// Figure 4), mirroring the processing stack: l-store operators express
/// application intent, p-store operators form optimized storage plans, and
/// x-store operators are what a concrete backend executes.
enum class StoreLevel { kLogical, kPhysical, kExecution };

const char* StoreLevelToString(StoreLevel level);

/// \brief Application-level description of how a dataset will be accessed —
/// the input the storage optimizer (WWHow!-style) uses to pick a backend and
/// a transformation plan.
struct AccessProfile {
  /// Full-scan analyses per session (OLAP-ish workloads).
  double scan_frequency = 1.0;
  /// Point lookups by key per session (serving-ish workloads).
  double point_lookup_frequency = 0.0;
  /// Appends per session.
  double append_frequency = 0.0;
  /// True when analyses read a small column subset.
  bool column_subset_access = false;
  /// The columns those analyses touch (when column_subset_access).
  std::vector<int> hot_columns;
  /// Column most frequently range-filtered on (-1 = none); the optimizer
  /// sorts the stored data by it to help downstream scans.
  int range_filter_column = -1;
  /// Key column for point lookups (-1 = none).
  int key_column = -1;
  /// Data must survive process restarts.
  bool requires_persistence = false;
};

/// \brief Capability traits a backend advertises to the storage optimizer.
struct BackendTraits {
  bool columnar = false;          // cheap column-subset scans
  bool point_lookup = false;      // keyed access
  bool persistent = false;        // survives the process
  double scan_cost_factor = 1.0;  // relative full-scan cost
};

/// \brief Execution-level storage platform (x-store): a concrete engine that
/// materializes datasets in its own native format.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual const std::string& name() const = 0;
  /// Native format label ("rows", "columnar", "csv", "kv").
  virtual const std::string& format() const = 0;
  virtual BackendTraits traits() const = 0;

  virtual Status Put(const std::string& dataset, const Dataset& data) = 0;
  virtual Result<Dataset> Get(const std::string& dataset) const = 0;
  virtual Status Delete(const std::string& dataset) = 0;
  virtual bool Exists(const std::string& dataset) const = 0;
  virtual std::vector<std::string> List() const = 0;

  /// Column-subset read; backends without columnar support fall back to a
  /// full Get + projection (still correct, just not cheaper).
  virtual Result<Dataset> GetColumns(const std::string& dataset,
                                     const std::vector<int>& columns) const;

  /// Keyed lookup (key compared against `key_column`); backends without
  /// point-lookup support scan.
  virtual Result<Dataset> GetByKey(const std::string& dataset, int key_column,
                                   const Value& key) const;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_STORE_OP_H_

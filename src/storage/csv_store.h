#ifndef RHEEM_STORAGE_CSV_STORE_H_
#define RHEEM_STORAGE_CSV_STORE_H_

#include <string>

#include "storage/store_op.h"

namespace rheem {
namespace storage {

/// \brief File-backed CSV backend: each dataset is one real .csv file under
/// the store's directory (values typed by a one-line header tag).
///
/// The persistent-but-slow corner of the backend space: full scans re-parse
/// text, column reads read everything. The hot-data buffer ablation uses it
/// as the cold tier.
class CsvStore : public StorageBackend {
 public:
  explicit CsvStore(std::string directory);

  const std::string& name() const override { return name_; }
  const std::string& format() const override { return format_; }
  BackendTraits traits() const override {
    return BackendTraits{/*columnar=*/false, /*point_lookup=*/false,
                         /*persistent=*/true, /*scan_cost_factor=*/3.0};
  }

  Status Put(const std::string& dataset, const Dataset& data) override;
  Result<Dataset> Get(const std::string& dataset) const override;
  Status Delete(const std::string& dataset) override;
  bool Exists(const std::string& dataset) const override;
  std::vector<std::string> List() const override;

  const std::string& directory() const { return directory_; }

 private:
  std::string PathFor(const std::string& dataset) const;

  std::string name_ = "csv-files";
  std::string format_ = "csv";
  std::string directory_;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_CSV_STORE_H_

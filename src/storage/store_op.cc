#include "storage/store_op.h"

namespace rheem {
namespace storage {

const char* StoreLevelToString(StoreLevel level) {
  switch (level) {
    case StoreLevel::kLogical: return "l-store";
    case StoreLevel::kPhysical: return "p-store";
    case StoreLevel::kExecution: return "x-store";
  }
  return "?";
}

Result<Dataset> StorageBackend::GetColumns(const std::string& dataset,
                                           const std::vector<int>& columns) const {
  RHEEM_ASSIGN_OR_RETURN(Dataset full, Get(dataset));
  std::vector<Record> out;
  out.reserve(full.size());
  for (const Record& r : full.records()) {
    for (int c : columns) {
      if (c < 0 || static_cast<std::size_t>(c) >= r.size()) {
        return Status::OutOfRange("column " + std::to_string(c) +
                                  " out of range in '" + dataset + "'");
      }
    }
    out.push_back(r.Project(columns));
  }
  return Dataset(std::move(out));
}

Result<Dataset> StorageBackend::GetByKey(const std::string& dataset,
                                         int key_column, const Value& key) const {
  RHEEM_ASSIGN_OR_RETURN(Dataset full, Get(dataset));
  std::vector<Record> out;
  for (const Record& r : full.records()) {
    if (key_column < 0 || static_cast<std::size_t>(key_column) >= r.size()) {
      return Status::OutOfRange("key column out of range in '" + dataset + "'");
    }
    if (r[static_cast<std::size_t>(key_column)] == key) out.push_back(r);
  }
  return Dataset(std::move(out));
}

}  // namespace storage
}  // namespace rheem

#ifndef RHEEM_STORAGE_STORAGE_OPTIMIZER_H_
#define RHEEM_STORAGE_STORAGE_OPTIMIZER_H_

#include <string>

#include "common/result.h"
#include "storage/storage_plan.h"
#include "storage/store_op.h"

namespace rheem {
namespace storage {

/// \brief The unified storage optimizer (paper §6, in the spirit of WWHow!
/// [Jindal et al., CIDR'13]): decides *where* (which backend) and *how*
/// (which transformation plan) to store a dataset from its access profile.
///
/// Scoring per backend (all registered with the StorageManager):
///   cost = scan_freq x scan_cost(backend, column_subset)
///        + lookup_freq x lookup_cost(backend)
///        + persistence constraint (hard)
/// The chosen atom also gets upload-time transformations: a sort by the
/// profile's range-filter column, and key indexing for lookup-heavy
/// profiles. The decision is returned as an explainable StoragePlan instead
/// of being applied blindly.
class StorageOptimizer {
 public:
  explicit StorageOptimizer(StorageManager* manager) : manager_(manager) {}

  /// Chooses backend + transformation plan for storing `dataset_name` with
  /// the given profile.
  Result<StoragePlan> Plan(const std::string& dataset_name,
                           const AccessProfile& profile) const;

  /// Convenience: Plan + Execute.
  Status Store(const std::string& dataset_name, const Dataset& data,
               const AccessProfile& profile) const;

  /// Relative score of one backend for a profile (lower = better); exposed
  /// for tests and the explain output.
  static double Score(const BackendTraits& traits, const AccessProfile& profile);

 private:
  StorageManager* manager_;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_STORAGE_OPTIMIZER_H_

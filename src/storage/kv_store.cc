#include "storage/kv_store.h"

#include <algorithm>

#include "data/serialization.h"

namespace rheem {
namespace storage {

Status KvStore::Put(const std::string& dataset, const Dataset& data) {
  return PutKeyed(dataset, data, default_key_column_);
}

Status KvStore::PutKeyed(const std::string& dataset, const Dataset& data,
                         int key_column) {
  Index index;
  index.key_column = key_column;
  for (const Record& r : data.records()) {
    if (key_column < 0 || static_cast<std::size_t>(key_column) >= r.size()) {
      return Status::OutOfRange("kv-store: key column " +
                                std::to_string(key_column) +
                                " out of range for record " + r.ToString());
    }
    Serializer::EncodeRecord(r, &index.buckets[r[static_cast<std::size_t>(key_column)]]);
    ++index.rows;
  }
  datasets_[dataset] = std::move(index);
  return Status::OK();
}

Result<Dataset> KvStore::Get(const std::string& dataset) const {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("kv-store: no dataset '" + dataset + "'");
  }
  // Deterministic scan order: sort keys.
  std::vector<const Value*> keys;
  keys.reserve(it->second.buckets.size());
  for (const auto& [k, v] : it->second.buckets) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const Value* a, const Value* b) { return a->Compare(*b) < 0; });
  std::vector<Record> out;
  out.reserve(it->second.rows);
  for (const Value* k : keys) {
    const std::string& bucket = it->second.buckets.at(*k);
    std::size_t offset = 0;
    while (offset < bucket.size()) {
      auto rec = Serializer::DecodeRecord(bucket, &offset);
      if (!rec.ok()) return rec.status().WithContext("kv-store decode");
      out.push_back(std::move(rec).ValueOrDie());
    }
  }
  return Dataset(std::move(out));
}

Status KvStore::Delete(const std::string& dataset) {
  if (datasets_.erase(dataset) == 0) {
    return Status::NotFound("kv-store: no dataset '" + dataset + "'");
  }
  return Status::OK();
}

bool KvStore::Exists(const std::string& dataset) const {
  return datasets_.count(dataset) > 0;
}

std::vector<std::string> KvStore::List() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, index] : datasets_) names.push_back(name);
  return names;
}

Result<Dataset> KvStore::GetByKey(const std::string& dataset, int key_column,
                                  const Value& key) const {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("kv-store: no dataset '" + dataset + "'");
  }
  if (key_column != it->second.key_column) {
    // Indexed on a different column: fall back to a scan.
    return StorageBackend::GetByKey(dataset, key_column, key);
  }
  auto bucket_it = it->second.buckets.find(key);
  if (bucket_it == it->second.buckets.end()) return Dataset();
  std::vector<Record> out;
  std::size_t offset = 0;
  while (offset < bucket_it->second.size()) {
    auto rec = Serializer::DecodeRecord(bucket_it->second, &offset);
    if (!rec.ok()) return rec.status().WithContext("kv-store decode");
    out.push_back(std::move(rec).ValueOrDie());
  }
  return Dataset(std::move(out));
}

}  // namespace storage
}  // namespace rheem

#include "storage/mem_column_store.h"

namespace rheem {
namespace storage {

Status MemColumnStore::Put(const std::string& dataset, const Dataset& data) {
  RHEEM_ASSIGN_OR_RETURN(relsim::Table table, relsim::Table::FromDataset(data));
  tables_[dataset] = std::move(table);
  return Status::OK();
}

Result<Dataset> MemColumnStore::Get(const std::string& dataset) const {
  auto it = tables_.find(dataset);
  if (it == tables_.end()) {
    return Status::NotFound("mem-column: no dataset '" + dataset + "'");
  }
  return it->second.ToDataset();
}

Status MemColumnStore::Delete(const std::string& dataset) {
  if (tables_.erase(dataset) == 0) {
    return Status::NotFound("mem-column: no dataset '" + dataset + "'");
  }
  return Status::OK();
}

bool MemColumnStore::Exists(const std::string& dataset) const {
  return tables_.count(dataset) > 0;
}

std::vector<std::string> MemColumnStore::List() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

Result<Dataset> MemColumnStore::GetColumns(const std::string& dataset,
                                           const std::vector<int>& columns) const {
  auto it = tables_.find(dataset);
  if (it == tables_.end()) {
    return Status::NotFound("mem-column: no dataset '" + dataset + "'");
  }
  const relsim::Table& table = it->second;
  for (int c : columns) {
    if (c < 0 || static_cast<std::size_t>(c) >= table.num_columns()) {
      return Status::OutOfRange("mem-column: column " + std::to_string(c) +
                                " out of range in '" + dataset + "'");
    }
  }
  // Columnar advantage: touch only the requested columns.
  std::vector<Record> out;
  out.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> fields;
    fields.reserve(columns.size());
    for (int c : columns) {
      fields.push_back(table.at(r, static_cast<std::size_t>(c)));
    }
    out.push_back(Record(std::move(fields)));
  }
  return Dataset(std::move(out));
}

Result<const relsim::Table*> MemColumnStore::GetTable(
    const std::string& dataset) const {
  auto it = tables_.find(dataset);
  if (it == tables_.end()) {
    return Status::NotFound("mem-column: no dataset '" + dataset + "'");
  }
  return &it->second;
}

}  // namespace storage
}  // namespace rheem

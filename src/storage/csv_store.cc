#include "storage/csv_store.h"

#include <cstdlib>
#include <filesystem>

#include "common/csv.h"
#include "common/string_util.h"

namespace rheem {
namespace storage {

namespace {

/// Cells carry a one-character type tag so datasets round-trip with types:
/// "i:42", "d:3.14", "s:text", "b:1", "n:" (null), "l:1;2;3" (double list).
std::string EncodeCell(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "n:";
    case ValueType::kBool: return v.bool_unchecked() ? "b:1" : "b:0";
    case ValueType::kInt64: return "i:" + std::to_string(v.int64_unchecked());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.double_unchecked());
      return buf;
    }
    case ValueType::kString: return "s:" + v.string_unchecked();
    case ValueType::kDoubleList: {
      std::string out = "l:";
      const auto& xs = v.double_list_unchecked();
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) out += ";";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", xs[i]);
        out += buf;
      }
      return out;
    }
  }
  return "n:";
}

Result<Value> DecodeCell(const std::string& cell) {
  if (cell.size() < 2 || cell[1] != ':') {
    return Status::IoError("malformed CSV cell: " + cell);
  }
  const std::string payload = cell.substr(2);
  switch (cell[0]) {
    case 'n': return Value::Null();
    case 'b': return Value(payload == "1");
    case 'i': return Value(static_cast<int64_t>(std::strtoll(payload.c_str(), nullptr, 10)));
    case 'd': return Value(std::strtod(payload.c_str(), nullptr));
    case 's': return Value(payload);
    case 'l': {
      std::vector<double> xs;
      if (!payload.empty()) {
        for (const std::string& part : SplitString(payload, ';')) {
          xs.push_back(std::strtod(part.c_str(), nullptr));
        }
      }
      return Value(std::move(xs));
    }
    default:
      return Status::IoError("unknown CSV cell tag: " + cell);
  }
}

/// One-character codes shared with the cell tags (b/i/d/s/n/l).
char TypeToCode(ValueType t) {
  switch (t) {
    case ValueType::kBool: return 'b';
    case ValueType::kInt64: return 'i';
    case ValueType::kDouble: return 'd';
    case ValueType::kString: return 's';
    case ValueType::kDoubleList: return 'l';
    case ValueType::kNull: return 'n';
  }
  return 'n';
}

ValueType CodeToType(char c) {
  switch (c) {
    case 'b': return ValueType::kBool;
    case 'i': return ValueType::kInt64;
    case 'd': return ValueType::kDouble;
    case 's': return ValueType::kString;
    case 'l': return ValueType::kDoubleList;
    default: return ValueType::kNull;
  }
}

}  // namespace

CsvStore::CsvStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string CsvStore::PathFor(const std::string& dataset) const {
  return directory_ + "/" + dataset + ".csv";
}

Status CsvStore::Put(const std::string& dataset, const Dataset& data) {
  CsvCodec codec;
  std::string text;
  // Schema header: "#schema" then one "code:name" cell per column. Data
  // cells always start with a one-character type tag, so the marker can
  // never collide with a data row.
  if (data.has_schema()) {
    std::vector<std::string> cells;
    cells.reserve(data.schema().num_fields() + 1);
    cells.push_back("#schema");
    for (const Field& f : data.schema().fields()) {
      cells.push_back(std::string(1, TypeToCode(f.type)) + ":" + f.name);
    }
    text += codec.FormatLine(cells);
    text += "\n";
  }
  for (const Record& r : data.records()) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const Value& v : r.fields()) cells.push_back(EncodeCell(v));
    text += codec.FormatLine(cells);
    text += "\n";
  }
  return WriteStringToFile(PathFor(dataset), text);
}

Result<Dataset> CsvStore::Get(const std::string& dataset) const {
  auto text = ReadFileToString(PathFor(dataset));
  if (!text.ok()) {
    return Status::NotFound("csv-files: no dataset '" + dataset + "'");
  }
  CsvCodec codec;
  RHEEM_ASSIGN_OR_RETURN(auto rows, codec.ParseDocument(*text));
  bool has_schema = false;
  Schema schema;
  std::size_t first_row = 0;
  if (!rows.empty() && !rows[0].empty() && rows[0][0] == "#schema") {
    std::vector<Field> fields;
    fields.reserve(rows[0].size() - 1);
    for (std::size_t i = 1; i < rows[0].size(); ++i) {
      const std::string& cell = rows[0][i];
      if (cell.size() < 2 || cell[1] != ':') {
        return Status::IoError("malformed CSV schema cell: " + cell);
      }
      fields.push_back(Field{cell.substr(2), CodeToType(cell[0])});
    }
    schema = Schema(std::move(fields));
    has_schema = true;
    first_row = 1;
  }
  std::vector<Record> records;
  records.reserve(rows.size() - first_row);
  for (std::size_t row = first_row; row < rows.size(); ++row) {
    std::vector<Value> fields;
    fields.reserve(rows[row].size());
    for (const std::string& cell : rows[row]) {
      RHEEM_ASSIGN_OR_RETURN(Value v, DecodeCell(cell));
      fields.push_back(std::move(v));
    }
    records.push_back(Record(std::move(fields)));
  }
  if (has_schema) return Dataset(std::move(records), std::move(schema));
  return Dataset(std::move(records));
}

Status CsvStore::Delete(const std::string& dataset) {
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(dataset), ec)) {
    return Status::NotFound("csv-files: no dataset '" + dataset + "'");
  }
  return Status::OK();
}

bool CsvStore::Exists(const std::string& dataset) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(dataset), ec);
}

std::vector<std::string> CsvStore::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".csv") {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace storage
}  // namespace rheem

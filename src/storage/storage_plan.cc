#include "storage/storage_plan.h"

#include "storage/kv_store.h"

namespace rheem {
namespace storage {

std::string StoragePlan::ToString() const {
  std::string out = "storage plan (" + std::to_string(atoms.size()) +
                    " atom(s))\n";
  for (const StorageAtom& atom : atoms) {
    out += "  [" + atom.backend + "] '" + atom.dataset +
           "' <- " + atom.transform.ToString() + "\n";
  }
  return out;
}

Status StorageManager::RegisterBackend(std::unique_ptr<StorageBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("cannot register a null backend");
  }
  for (const auto& b : backends_) {
    if (b->name() == backend->name()) {
      return Status::AlreadyExists("backend '" + backend->name() +
                                   "' already registered");
    }
  }
  backends_.push_back(std::move(backend));
  return Status::OK();
}

Result<StorageBackend*> StorageManager::Backend(const std::string& name) const {
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return Status::NotFound("no backend named '" + name + "'");
}

std::vector<StorageBackend*> StorageManager::Backends() const {
  std::vector<StorageBackend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  return out;
}

Status StorageManager::Execute(const StoragePlan& plan, const Dataset& data) {
  for (const StorageAtom& atom : plan.atoms) {
    RHEEM_ASSIGN_OR_RETURN(StorageBackend * backend, Backend(atom.backend));
    RHEEM_ASSIGN_OR_RETURN(Dataset transformed, atom.transform.Apply(data));
    if (atom.key_column >= 0) {
      // Keyed materialization where supported.
      if (auto* kv = dynamic_cast<KvStore*>(backend)) {
        RHEEM_RETURN_IF_ERROR(
            kv->PutKeyed(atom.dataset, transformed, atom.key_column));
        continue;
      }
    }
    RHEEM_RETURN_IF_ERROR(backend->Put(atom.dataset, transformed));
  }
  return Status::OK();
}

Result<Dataset> StorageManager::Load(const std::string& dataset) const {
  RHEEM_ASSIGN_OR_RETURN(StorageBackend * backend, Locate(dataset));
  return backend->Get(dataset);
}

Result<StorageBackend*> StorageManager::Locate(const std::string& dataset) const {
  for (const auto& b : backends_) {
    if (b->Exists(dataset)) return b.get();
  }
  return Status::NotFound("dataset '" + dataset +
                          "' not found on any backend");
}

}  // namespace storage
}  // namespace rheem

#include "storage/storage_plan.h"

#include "common/fault.h"
#include "storage/kv_store.h"

namespace rheem {
namespace storage {

std::string StoragePlan::ToString() const {
  std::string out = "storage plan (" + std::to_string(atoms.size()) +
                    " atom(s))\n";
  for (const StorageAtom& atom : atoms) {
    out += "  [" + atom.backend + "] '" + atom.dataset +
           "' <- " + atom.transform.ToString() + "\n";
  }
  return out;
}

Status StorageManager::RegisterBackend(std::unique_ptr<StorageBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("cannot register a null backend");
  }
  for (const auto& b : backends_) {
    if (b->name() == backend->name()) {
      return Status::AlreadyExists("backend '" + backend->name() +
                                   "' already registered");
    }
  }
  backends_.push_back(std::move(backend));
  return Status::OK();
}

Result<StorageBackend*> StorageManager::Backend(const std::string& name) const {
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return Status::NotFound("no backend named '" + name + "'");
}

std::vector<StorageBackend*> StorageManager::Backends() const {
  std::vector<StorageBackend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  return out;
}

Status StorageManager::Execute(const StoragePlan& plan, const Dataset& data) {
  for (const StorageAtom& atom : plan.atoms) {
    RHEEM_ASSIGN_OR_RETURN(StorageBackend * backend, Backend(atom.backend));
    // Transform outside the write lock; only the materialization mutates
    // backend state.
    RHEEM_ASSIGN_OR_RETURN(Dataset transformed, atom.transform.Apply(data));
    RHEEM_RETURN_IF_ERROR(FaultInjector::Global().Hit(
        "storage.write",
        "dataset=" + atom.dataset + ",backend=" + atom.backend));
    {
      std::unique_lock<std::shared_mutex> lock(data_mu_);
      auto* kv = atom.key_column >= 0 ? dynamic_cast<KvStore*>(backend)
                                      : nullptr;
      if (kv != nullptr) {
        // Keyed materialization where supported.
        RHEEM_RETURN_IF_ERROR(
            kv->PutKeyed(atom.dataset, transformed, atom.key_column));
      } else {
        RHEEM_RETURN_IF_ERROR(backend->Put(atom.dataset, transformed));
      }
    }
    NotifyWrite(atom.dataset);
  }
  return Status::OK();
}

Status StorageManager::Put(const std::string& backend,
                           const std::string& dataset, const Dataset& data) {
  RHEEM_ASSIGN_OR_RETURN(StorageBackend * b, Backend(backend));
  RHEEM_RETURN_IF_ERROR(FaultInjector::Global().Hit(
      "storage.write", "dataset=" + dataset + ",backend=" + backend));
  {
    std::unique_lock<std::shared_mutex> lock(data_mu_);
    RHEEM_RETURN_IF_ERROR(b->Put(dataset, data));
  }
  NotifyWrite(dataset);
  return Status::OK();
}

Status StorageManager::Delete(const std::string& dataset) {
  bool found = false;
  {
    std::unique_lock<std::shared_mutex> lock(data_mu_);
    for (const auto& b : backends_) {
      if (!b->Exists(dataset)) continue;
      RHEEM_RETURN_IF_ERROR(b->Delete(dataset));
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("dataset '" + dataset +
                            "' not found on any backend");
  }
  NotifyWrite(dataset);
  return Status::OK();
}

int StorageManager::AddWriteObserver(WriteObserver observer) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  const int id = next_observer_id_++;
  observers_.emplace_back(id, std::move(observer));
  return id;
}

void StorageManager::RemoveWriteObserver(int id) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == id) {
      observers_.erase(it);
      return;
    }
  }
}

void StorageManager::NotifyWrite(const std::string& dataset) const {
  // Copy under the lock so an observer removing itself mid-notify is safe.
  std::vector<WriteObserver> observers;
  {
    std::lock_guard<std::mutex> lock(observer_mu_);
    observers.reserve(observers_.size());
    for (const auto& [id, fn] : observers_) observers.push_back(fn);
  }
  for (const WriteObserver& fn : observers) fn(dataset);
}

Result<Dataset> StorageManager::Load(const std::string& dataset) const {
  std::shared_lock<std::shared_mutex> lock(data_mu_);
  RHEEM_ASSIGN_OR_RETURN(StorageBackend * backend, LocateLocked(dataset));
  Status faulted = Status::OK();
  for (int attempt = 0; attempt <= read_retries_; ++attempt) {
    faulted = FaultInjector::Global().Hit(
        "storage.read", "dataset=" + dataset + ",backend=" + backend->name() +
                            ",attempt=" + std::to_string(attempt));
    if (faulted.ok()) return backend->Get(dataset);
  }
  return faulted.WithContext("storage read of '" + dataset + "' failed after " +
                             std::to_string(read_retries_ + 1) + " attempt(s)");
}

Result<StorageBackend*> StorageManager::Locate(const std::string& dataset) const {
  std::shared_lock<std::shared_mutex> lock(data_mu_);
  return LocateLocked(dataset);
}

Result<StorageBackend*> StorageManager::LocateLocked(
    const std::string& dataset) const {
  for (const auto& b : backends_) {
    if (b->Exists(dataset)) return b.get();
  }
  return Status::NotFound("dataset '" + dataset +
                          "' not found on any backend");
}

}  // namespace storage
}  // namespace rheem

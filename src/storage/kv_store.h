#ifndef RHEEM_STORAGE_KV_STORE_H_
#define RHEEM_STORAGE_KV_STORE_H_

#include <map>
#include <string>
#include <unordered_map>

#include "data/value.h"
#include "storage/store_op.h"

namespace rheem {
namespace storage {

/// \brief In-memory key/value backend: each dataset is an index from a key
/// column to serialized records — fast point lookups, mediocre scans.
class KvStore : public StorageBackend {
 public:
  /// Records are indexed by `default_key_column` at Put time unless the
  /// caller uses PutKeyed with an explicit column.
  explicit KvStore(int default_key_column = 0)
      : default_key_column_(default_key_column) {}

  const std::string& name() const override { return name_; }
  const std::string& format() const override { return format_; }
  BackendTraits traits() const override {
    return BackendTraits{/*columnar=*/false, /*point_lookup=*/true,
                         /*persistent=*/false, /*scan_cost_factor=*/1.5};
  }

  Status Put(const std::string& dataset, const Dataset& data) override;
  Status PutKeyed(const std::string& dataset, const Dataset& data,
                  int key_column);
  Result<Dataset> Get(const std::string& dataset) const override;
  Status Delete(const std::string& dataset) override;
  bool Exists(const std::string& dataset) const override;
  std::vector<std::string> List() const override;

  Result<Dataset> GetByKey(const std::string& dataset, int key_column,
                           const Value& key) const override;

 private:
  struct Index {
    int key_column = 0;
    // Key -> serialized records (multi-map semantics via concatenation).
    std::unordered_map<Value, std::string, ValueHasher> buckets;
    std::size_t rows = 0;
  };

  int default_key_column_;
  std::string name_ = "kv-store";
  std::string format_ = "kv";
  std::map<std::string, Index> datasets_;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_KV_STORE_H_

#ifndef RHEEM_STORAGE_MEM_COLUMN_STORE_H_
#define RHEEM_STORAGE_MEM_COLUMN_STORE_H_

#include <map>
#include <string>

#include "platforms/relsim/table.h"
#include "storage/store_op.h"

namespace rheem {
namespace storage {

/// \brief In-memory columnar backend: datasets live as relsim Tables, so
/// column-subset reads touch only the requested columns.
class MemColumnStore : public StorageBackend {
 public:
  MemColumnStore() = default;

  const std::string& name() const override { return name_; }
  const std::string& format() const override { return format_; }
  BackendTraits traits() const override {
    return BackendTraits{/*columnar=*/true, /*point_lookup=*/false,
                         /*persistent=*/false, /*scan_cost_factor=*/0.6};
  }

  Status Put(const std::string& dataset, const Dataset& data) override;
  Result<Dataset> Get(const std::string& dataset) const override;
  Status Delete(const std::string& dataset) override;
  bool Exists(const std::string& dataset) const override;
  std::vector<std::string> List() const override;

  Result<Dataset> GetColumns(const std::string& dataset,
                             const std::vector<int>& columns) const override;

  /// Direct access to the native columnar representation (used by the hot
  /// buffer to serve relsim without format conversion).
  Result<const relsim::Table*> GetTable(const std::string& dataset) const;

 private:
  std::string name_ = "mem-column";
  std::string format_ = "columnar";
  std::map<std::string, relsim::Table> tables_;
};

}  // namespace storage
}  // namespace rheem

#endif  // RHEEM_STORAGE_MEM_COLUMN_STORE_H_

#include "storage/hot_buffer.h"

#include "common/metrics.h"

namespace rheem {
namespace storage {

HotDataBuffer::HotDataBuffer(StorageManager* manager, int64_t capacity_bytes)
    : manager_(manager), capacity_bytes_(capacity_bytes) {
  observer_id_ = manager_->AddWriteObserver(
      [this](const std::string& dataset) { Invalidate(dataset); });
}

HotDataBuffer::~HotDataBuffer() {
  manager_->RemoveWriteObserver(observer_id_);
}

Result<std::shared_ptr<const Dataset>> HotDataBuffer::Load(
    const std::string& dataset) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(dataset);
    if (it != cache_.end()) {
      ++hits_;
      lru_.erase(it->second.lru_pos);
      lru_.push_front(dataset);
      it->second.lru_pos = lru_.begin();
      CountIfEnabled(registry.counter("hot_buffer.hits"), 1);
      return it->second.data;
    }
    ++misses_;
  }
  CountIfEnabled(registry.counter("hot_buffer.misses"), 1);
  // The backend parse runs outside the lock so concurrent loads of other
  // datasets are not serialized behind it. Two racing misses on the same
  // dataset both parse; the second insert below simply wins.
  RHEEM_ASSIGN_OR_RETURN(Dataset loaded, manager_->Load(dataset));
  auto data = std::make_shared<const Dataset>(std::move(loaded));
  const int64_t bytes = data->EstimatedBytes();
  if (bytes <= capacity_bytes_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(dataset);
    if (it != cache_.end()) {  // raced with another miss: replace
      resident_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_pos);
      cache_.erase(it);
    }
    EvictUntilFitsLocked(bytes);
    lru_.push_front(dataset);
    Entry entry;
    entry.data = data;
    entry.bytes = bytes;
    entry.lru_pos = lru_.begin();
    cache_.emplace(dataset, std::move(entry));
    resident_bytes_ += bytes;
    if (registry.enabled()) {
      registry.gauge("hot_buffer.resident_bytes")->Set(resident_bytes_);
    }
  }
  return data;
}

void HotDataBuffer::Invalidate(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(dataset);
  if (it == cache_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  cache_.erase(it);
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.counter("hot_buffer.invalidations")->Add(1);
    registry.gauge("hot_buffer.resident_bytes")->Set(resident_bytes_);
  }
}

void HotDataBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.gauge("hot_buffer.resident_bytes")->Set(0);
  }
}

int64_t HotDataBuffer::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t HotDataBuffer::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t HotDataBuffer::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t HotDataBuffer::resident_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void HotDataBuffer::EvictUntilFitsLocked(int64_t incoming_bytes) {
  while (!lru_.empty() && resident_bytes_ + incoming_bytes > capacity_bytes_) {
    const std::string victim = lru_.back();
    auto it = cache_.find(victim);
    if (it != cache_.end()) {
      resident_bytes_ -= it->second.bytes;
      cache_.erase(it);
    }
    lru_.pop_back();
  }
}

}  // namespace storage
}  // namespace rheem

#include "storage/hot_buffer.h"

namespace rheem {
namespace storage {

Result<Dataset> HotDataBuffer::Load(const std::string& dataset) {
  auto it = cache_.find(dataset);
  if (it != cache_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(dataset);
    it->second.lru_pos = lru_.begin();
    return it->second.data;
  }
  ++misses_;
  RHEEM_ASSIGN_OR_RETURN(Dataset data, manager_->Load(dataset));
  const int64_t bytes = data.EstimatedBytes();
  if (bytes <= capacity_bytes_) {
    EvictUntilFits(bytes);
    lru_.push_front(dataset);
    Entry entry;
    entry.data = data;
    entry.bytes = bytes;
    entry.lru_pos = lru_.begin();
    cache_.emplace(dataset, std::move(entry));
    resident_bytes_ += bytes;
  }
  return data;
}

void HotDataBuffer::Invalidate(const std::string& dataset) {
  auto it = cache_.find(dataset);
  if (it == cache_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  cache_.erase(it);
}

void HotDataBuffer::Clear() {
  cache_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

void HotDataBuffer::EvictUntilFits(int64_t incoming_bytes) {
  while (!lru_.empty() && resident_bytes_ + incoming_bytes > capacity_bytes_) {
    const std::string victim = lru_.back();
    auto it = cache_.find(victim);
    if (it != cache_.end()) {
      resident_bytes_ -= it->second.bytes;
      cache_.erase(it);
    }
    lru_.pop_back();
  }
}

}  // namespace storage
}  // namespace rheem

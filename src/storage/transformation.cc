#include "storage/transformation.h"

#include "core/operators/kernels.h"

namespace rheem {
namespace storage {

const char* TransformKindToString(TransformKind kind) {
  switch (kind) {
    case TransformKind::kProject: return "Project";
    case TransformKind::kSortBy: return "SortBy";
    case TransformKind::kFilter: return "Filter";
    case TransformKind::kDedupe: return "Dedupe";
  }
  return "?";
}

TransformStep TransformStep::Project(std::vector<int> columns) {
  TransformStep s;
  s.kind = TransformKind::kProject;
  s.columns = std::move(columns);
  return s;
}

TransformStep TransformStep::SortBy(int column, bool ascending) {
  TransformStep s;
  s.kind = TransformKind::kSortBy;
  s.column = column;
  s.ascending = ascending;
  return s;
}

TransformStep TransformStep::Filter(PredicateUdf predicate) {
  TransformStep s;
  s.kind = TransformKind::kFilter;
  s.predicate = std::move(predicate);
  return s;
}

TransformStep TransformStep::Dedupe() {
  TransformStep s;
  s.kind = TransformKind::kDedupe;
  return s;
}

TransformationPlan& TransformationPlan::Add(TransformStep step) {
  steps_.push_back(std::move(step));
  return *this;
}

Result<Dataset> TransformationPlan::Apply(const Dataset& in) const {
  Dataset current = in;
  for (const TransformStep& step : steps_) {
    switch (step.kind) {
      case TransformKind::kProject: {
        RHEEM_ASSIGN_OR_RETURN(current,
                               kernels::Project(step.columns, current));
        break;
      }
      case TransformKind::kSortBy: {
        const int col = step.column;
        const bool asc = step.ascending;
        for (const Record& r : current.records()) {
          if (col < 0 || static_cast<std::size_t>(col) >= r.size()) {
            return Status::OutOfRange("SortBy column " + std::to_string(col) +
                                      " out of range");
          }
        }
        KeyUdf key;
        key.fn = [col](const Record& r) {
          return r[static_cast<std::size_t>(col)];
        };
        RHEEM_ASSIGN_OR_RETURN(Dataset sorted,
                               kernels::SortByKey(key, current));
        if (!asc) {
          std::vector<Record> reversed(sorted.records().rbegin(),
                                       sorted.records().rend());
          sorted = Dataset(std::move(reversed));
        }
        current = std::move(sorted);
        break;
      }
      case TransformKind::kFilter: {
        RHEEM_ASSIGN_OR_RETURN(current,
                               kernels::Filter(step.predicate, current));
        break;
      }
      case TransformKind::kDedupe: {
        RHEEM_ASSIGN_OR_RETURN(current, kernels::Distinct(current));
        break;
      }
    }
  }
  return current;
}

std::string TransformationPlan::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += TransformKindToString(steps_[i].kind);
    if (steps_[i].kind == TransformKind::kSortBy) {
      out += "($" + std::to_string(steps_[i].column) +
             (steps_[i].ascending ? " asc)" : " desc)");
    }
  }
  return out.empty() ? "<identity>" : out;
}

}  // namespace storage
}  // namespace rheem

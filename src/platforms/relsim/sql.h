#ifndef RHEEM_PLATFORMS_RELSIM_SQL_H_
#define RHEEM_PLATFORMS_RELSIM_SQL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "platforms/relsim/catalog.h"
#include "platforms/relsim/expression.h"
#include "platforms/relsim/rel_exec.h"
#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {

/// \brief Minimal SQL SELECT frontend over the relsim engine — the
/// "declarative language" option the paper gives application developers
/// (§3.2: "an application developer could also expose a declarative language
/// for users to define their tasks").
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT <item> [, <item>]* | *
///   FROM <table> [JOIN <table> ON <left_col> = <right_col>]
///   [WHERE <expr>]
///   [GROUP BY <column> [, <column>]*]
///   [ORDER BY <column> [ASC|DESC]]
///   [LIMIT <n>]
///
///   item  := <expr> [AS <name>]
///          | SUM|COUNT|MIN|MAX|AVG '(' <column> | '*' ')' [AS <name>]
///   expr  := boolean/comparison/arithmetic over columns and literals,
///            with AND / OR / NOT, parentheses, =, <>, !=, <, <=, >, >=,
///            +, -, *, /; string literals in single quotes.
///
/// Restrictions (documented, checked, and tested): one optional equi-JOIN
/// with unqualified column names (the joined schema is left columns then
/// right columns, duplicate names suffixed "_r"); aggregates take a plain
/// column (or * for COUNT); non-aggregate select items under GROUP BY must
/// be group columns.
struct SqlQuery;  // parsed form (opaque; see sql.cc)

/// Parses and runs one SELECT against the catalog.
Result<Table> ExecuteSql(const Catalog& catalog, const std::string& query);

/// Parse-only entry point: returns a normalized rendering of the parsed
/// query (used by tests and the example's echo mode) or a parse error.
Result<std::string> ExplainSql(const std::string& query);

}  // namespace relsim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_SQL_H_

#ifndef RHEEM_PLATFORMS_RELSIM_TABLE_H_
#define RHEEM_PLATFORMS_RELSIM_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace rheem {
namespace relsim {

/// \brief Column-oriented table: the native storage format of the relsim
/// platform (the reproduction's stand-in for a PostgreSQL-style engine).
///
/// Crossing into relsim means columnarizing row-shaped data quanta and
/// crossing out means linearizing back — the format-conversion cost the
/// paper's storage section (§6) wants hot-data buffers to avoid.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Columnarizes a row dataset. When `data` carries no schema, one is
  /// inferred from the first record (later rows must match its arity).
  static Result<Table> FromDataset(const Dataset& data);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  Status AppendRow(const Record& row);

  const std::vector<Value>& column(std::size_t i) const { return columns_[i]; }
  const Value& at(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }

  Record RowAt(std::size_t row) const;

  /// Linearizes back to row-shaped records (schema attached).
  Dataset ToDataset() const;

  std::string ToString(std::size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace relsim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_TABLE_H_

#include "platforms/relsim/rel_exec.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "data/record.h"

namespace rheem {
namespace relsim {

Result<Table> FilterTable(const Table& in, const ExprPtr& predicate) {
  Table out(in.schema());
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    RHEEM_ASSIGN_OR_RETURN(bool keep, EvalPredicate(predicate, in, r));
    if (keep) RHEEM_RETURN_IF_ERROR(out.AppendRow(in.RowAt(r)));
  }
  return out;
}

Result<Table> ProjectTable(const Table& in, const std::vector<int>& columns) {
  for (int c : columns) {
    if (c < 0 || static_cast<std::size_t>(c) >= in.num_columns()) {
      return Status::OutOfRange("projection column " + std::to_string(c) +
                                " out of range");
    }
  }
  Table out(in.schema().Project(columns));
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    RHEEM_RETURN_IF_ERROR(out.AppendRow(in.RowAt(r).Project(columns)));
  }
  return out;
}

Result<Table> ProjectExprs(
    const Table& in,
    const std::vector<std::pair<std::string, ExprPtr>>& items) {
  // Infer output types from the first row (null when empty).
  std::vector<Field> fields;
  for (const auto& [name, e] : items) {
    ValueType type = ValueType::kNull;
    if (in.num_rows() > 0) {
      RHEEM_ASSIGN_OR_RETURN(Value v, e->Eval(in, 0));
      type = v.type();
    }
    fields.push_back(Field{name, type});
  }
  Table out{Schema(std::move(fields))};
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(items.size());
    for (const auto& [name, e] : items) {
      RHEEM_ASSIGN_OR_RETURN(Value v, e->Eval(in, r));
      row.push_back(std::move(v));
    }
    RHEEM_RETURN_IF_ERROR(out.AppendRow(Record(std::move(row))));
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  Value min;
  Value max;

  void Update(const Value& v) {
    if (v.is_null()) return;
    sum += v.ToDoubleOr(0.0);
    if (count == 0 || v.Compare(min) < 0) min = v;
    if (count == 0 || v.Compare(max) > 0) max = v;
    ++count;
  }

  Value Finish(AggKind kind, int64_t group_rows) const {
    switch (kind) {
      case AggKind::kSum: return Value(sum);
      case AggKind::kCount: return Value(group_rows);
      case AggKind::kMin: return count > 0 ? min : Value::Null();
      case AggKind::kMax: return count > 0 ? max : Value::Null();
      case AggKind::kAvg:
        return count > 0 ? Value(sum / static_cast<double>(count))
                         : Value::Null();
    }
    return Value::Null();
  }
};

ValueType AggOutputType(AggKind kind, const Schema& schema, int column) {
  switch (kind) {
    case AggKind::kCount: return ValueType::kInt64;
    case AggKind::kSum:
    case AggKind::kAvg: return ValueType::kDouble;
    case AggKind::kMin:
    case AggKind::kMax:
      return column >= 0 &&
                     static_cast<std::size_t>(column) < schema.num_fields()
                 ? schema.field(static_cast<std::size_t>(column)).type
                 : ValueType::kNull;
  }
  return ValueType::kNull;
}

}  // namespace

Result<Table> HashAggregate(const Table& in,
                            const std::vector<int>& group_columns,
                            const std::vector<AggSpec>& aggs) {
  for (int c : group_columns) {
    if (c < 0 || static_cast<std::size_t>(c) >= in.num_columns()) {
      return Status::OutOfRange("group column " + std::to_string(c) +
                                " out of range");
    }
  }
  for (const AggSpec& a : aggs) {
    if (a.kind != AggKind::kCount &&
        (a.column < 0 || static_cast<std::size_t>(a.column) >= in.num_columns())) {
      return Status::OutOfRange("aggregate column " + std::to_string(a.column) +
                                " out of range");
    }
  }

  struct GroupEntry {
    std::vector<AggState> states;
    int64_t rows = 0;
  };
  // std::map on the group key gives deterministic output order.
  std::map<Record, GroupEntry> groups;
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(group_columns.size());
    for (int c : group_columns) {
      key.push_back(in.at(r, static_cast<std::size_t>(c)));
    }
    GroupEntry& entry = groups[Record(std::move(key))];
    if (entry.states.empty()) entry.states.resize(aggs.size());
    entry.rows += 1;
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].kind == AggKind::kCount) continue;
      entry.states[a].Update(
          in.at(r, static_cast<std::size_t>(aggs[a].column)));
    }
  }
  if (group_columns.empty() && groups.empty()) {
    groups[Record()] = GroupEntry{std::vector<AggState>(aggs.size()), 0};
  }

  std::vector<Field> fields;
  for (int c : group_columns) {
    fields.push_back(in.schema().field(static_cast<std::size_t>(c)));
  }
  for (const AggSpec& a : aggs) {
    fields.push_back(Field{a.name, AggOutputType(a.kind, in.schema(), a.column)});
  }
  Table out{Schema(std::move(fields))};
  for (const auto& [key, entry] : groups) {
    std::vector<Value> row = key.fields();
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(entry.states[a].Finish(aggs[a].kind, entry.rows));
    }
    RHEEM_RETURN_IF_ERROR(out.AppendRow(Record(std::move(row))));
  }
  return out;
}

Result<Table> HashJoinTables(const Table& left, int left_column,
                             const Table& right, int right_column) {
  if (left_column < 0 ||
      static_cast<std::size_t>(left_column) >= left.num_columns()) {
    return Status::OutOfRange("left join column out of range");
  }
  if (right_column < 0 ||
      static_cast<std::size_t>(right_column) >= right.num_columns()) {
    return Status::OutOfRange("right join column out of range");
  }
  std::unordered_map<Value, std::vector<std::size_t>, ValueHasher> build;
  build.reserve(right.num_rows());
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    const Value& key = right.at(r, static_cast<std::size_t>(right_column));
    if (key.is_null()) continue;  // SQL: null keys never match
    build[key].push_back(r);
  }
  Table out{Schema::Concat(left.schema(), right.schema())};
  for (std::size_t l = 0; l < left.num_rows(); ++l) {
    const Value& key = left.at(l, static_cast<std::size_t>(left_column));
    if (key.is_null()) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (std::size_t r : it->second) {
      RHEEM_RETURN_IF_ERROR(
          out.AppendRow(Record::Concat(left.RowAt(l), right.RowAt(r))));
    }
  }
  return out;
}

Result<Table> OrderBy(const Table& in, int column, bool ascending) {
  if (column < 0 || static_cast<std::size_t>(column) >= in.num_columns()) {
    return Status::OutOfRange("order-by column out of range");
  }
  std::vector<std::size_t> order(in.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto& col = in.column(static_cast<std::size_t>(column));
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const int c = col[a].Compare(col[b]);
                     return ascending ? c < 0 : c > 0;
                   });
  Table out(in.schema());
  for (std::size_t i : order) {
    RHEEM_RETURN_IF_ERROR(out.AppendRow(in.RowAt(i)));
  }
  return out;
}

Result<Table> DistinctTable(const Table& in) {
  std::unordered_map<Record, bool, RecordHasher> seen;
  seen.reserve(in.num_rows());
  Table out(in.schema());
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    Record row = in.RowAt(r);
    auto [it, inserted] = seen.emplace(row, true);
    if (inserted) RHEEM_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace relsim
}  // namespace rheem

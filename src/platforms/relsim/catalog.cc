#include "platforms/relsim/catalog.h"

namespace rheem {
namespace relsim {

Status Catalog::Register(const std::string& name, Table table) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::List() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

}  // namespace relsim
}  // namespace rheem

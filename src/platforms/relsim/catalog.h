#ifndef RHEEM_PLATFORMS_RELSIM_CATALOG_H_
#define RHEEM_PLATFORMS_RELSIM_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {

/// \brief Named-table catalog of the relsim engine.
class Catalog {
 public:
  Catalog() = default;

  Status Register(const std::string& name, Table table);
  Result<const Table*> Get(const std::string& name) const;
  Status Drop(const std::string& name);
  std::vector<std::string> List() const;
  bool Has(const std::string& name) const { return tables_.count(name) > 0; }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace relsim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_CATALOG_H_

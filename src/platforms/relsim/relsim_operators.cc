#include "platforms/relsim/relsim_operators.h"

#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {

Result<Dataset> IngestThroughTableFormat(const Dataset& in) {
  RHEEM_ASSIGN_OR_RETURN(Table table, Table::FromDataset(in));
  return table.ToDataset();
}

}  // namespace relsim
}  // namespace rheem

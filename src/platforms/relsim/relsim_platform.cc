#include "platforms/relsim/relsim_platform.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "core/optimizer/stage_splitter.h"
#include "platforms/javasim/javasim_operators.h"
#include "platforms/relsim/relsim_operators.h"

namespace rheem {

namespace {

BasicCostModel::Params RelParams(const Config& config, double query_setup_us) {
  BasicCostModel::Params p;
  p.per_quantum_micros =
      config.GetDouble("relsim.per_quantum_us", 0.012).ValueOr(0.012);
  p.parallelism = 2.0;  // intra-query parallelism of a classical engine
  p.stage_overhead_micros = query_setup_us;
  p.job_overhead_micros = query_setup_us;
  p.boundary_micros_per_byte = 0.002;  // COPY-in / COPY-out style transfer
  p.boundary_fixed_micros = 200.0;
  p.shuffle_micros_per_quantum = 0.0;
  return p;
}

MappingTable RelMappings() {
  MappingTable t;
  auto add = [&t](OpKind kind, const char* exec, double weight,
                  const char* context = "") {
    t.Add(OperatorMapping{kind, "", exec, weight, context});
  };
  add(OpKind::kCollectionSource, "RelTableScan", 1.0);
  add(OpKind::kFilter, "RelFilterUdf", 2.0,
      "UDF predicate evaluated row-at-a-time");
  add(OpKind::kProject, "RelProject", 0.3, "columnar projection");
  add(OpKind::kDistinct, "RelHashDistinct", 0.6);
  add(OpKind::kSort, "RelOrderBy", 0.6);
  add(OpKind::kReduceByKey, "RelHashAggregate", 0.5,
      "hash aggregation, combiner fused");
  t.Add(OperatorMapping{OpKind::kGroupByKey, "HashGroupBy", "RelHashGroup",
                        0.6, ""});
  t.Add(OperatorMapping{OpKind::kGroupByKey, "SortGroupBy", "RelSortGroup",
                        0.7, ""});
  add(OpKind::kGlobalReduce, "RelScalarAggregate", 0.5);
  add(OpKind::kCount, "RelCountStar", 0.1, "catalog row count");
  t.Add(OperatorMapping{OpKind::kJoin, "HashJoin", "RelHashJoin", 0.5, ""});
  t.Add(OperatorMapping{OpKind::kJoin, "SortMergeJoin", "RelMergeJoin", 0.6,
                        ""});
  add(OpKind::kCrossProduct, "RelNestedLoop", 1.0);
  add(OpKind::kUnion, "RelUnionAll", 0.3);
  add(OpKind::kIntersect, "RelIntersect", 0.6);
  add(OpKind::kSubtract, "RelExcept", 0.6);
  add(OpKind::kTopK, "RelOrderByLimit", 0.5);
  add(OpKind::kCollect, "RelCursorFetch", 1.0);
  // No Map/FlatMap/Sample/ZipWithId/BroadcastMap/ThetaJoin/IEJoin/loops:
  // arbitrary record-shaping UDFs and iterative drivers are outside a
  // classical relational engine's operator surface.
  return t;
}

}  // namespace

RelSimPlatform::RelSimPlatform(const Config& config)
    : Platform(kName),
      query_setup_us_(
          config.GetDouble("relsim.query_setup_us", 400.0).ValueOr(400.0)),
      cost_model_(RelParams(config, query_setup_us_)) {
  mappings_ = RelMappings();
}

Result<std::vector<Dataset>> RelSimPlatform::ExecuteStage(
    const Stage& stage, const BoundaryMap& boundary_inputs,
    ExecutionMetrics* metrics) {
  // Query planning/setup charge per submitted atom.
  metrics->sim_overhead_micros += static_cast<int64_t>(query_setup_us_);
  metrics->jobs_run += 1;
  CountIfEnabled(MetricsRegistry::Global().counter("relsim.queries_run"), 1);

  // Ingest boundary data into the engine's native columnar format (real
  // measured conversion work), then evaluate the atom row-at-a-time.
  std::vector<Dataset> ingested;
  ingested.reserve(boundary_inputs.size());
  BoundaryMap converted;
  {
    TraceSpan ingest_span("ingest", "relsim");
    ingest_span.AddTag("inputs", static_cast<int64_t>(boundary_inputs.size()));
    for (const auto& [op_id, dataset] : boundary_inputs) {
      RHEEM_ASSIGN_OR_RETURN(Dataset d,
                             relsim::IngestThroughTableFormat(*dataset));
      ingested.push_back(std::move(d));
      converted[op_id] = &ingested.back();
    }
  }

  javasim::DatasetWalker walker(metrics);
  RHEEM_RETURN_IF_ERROR(walker.RunOps(stage.ops(), converted));
  std::vector<Dataset> outputs;
  outputs.reserve(stage.outputs().size());
  for (const Operator* out : stage.outputs()) {
    RHEEM_ASSIGN_OR_RETURN(const Dataset* d, walker.ResultOf(out->id()));
    outputs.push_back(*d);
  }
  return outputs;
}

}  // namespace rheem

#include "platforms/relsim/expression.h"

namespace rheem {
namespace relsim {

namespace {

class ColByIndex : public Expression {
 public:
  explicit ColByIndex(int index) : index_(index) {}
  Result<Value> Eval(const Table& table, std::size_t row) const override {
    if (index_ < 0 || static_cast<std::size_t>(index_) >= table.num_columns()) {
      return Status::OutOfRange("column index " + std::to_string(index_) +
                                " out of range");
    }
    return table.at(row, static_cast<std::size_t>(index_));
  }
  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

 private:
  int index_;
};

class ColByName : public Expression {
 public:
  explicit ColByName(std::string name) : name_(std::move(name)) {}
  Result<Value> Eval(const Table& table, std::size_t row) const override {
    RHEEM_ASSIGN_OR_RETURN(int index, table.schema().IndexOf(name_));
    return table.at(row, static_cast<std::size_t>(index));
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class Literal : public Expression {
 public:
  explicit Literal(Value v) : v_(std::move(v)) {}
  Result<Value> Eval(const Table&, std::size_t) const override { return v_; }
  std::string ToString() const override { return v_.ToString(); }

 private:
  Value v_;
};

const char* CmpName(RelCompare op) {
  switch (op) {
    case RelCompare::kEq: return "=";
    case RelCompare::kNe: return "<>";
    case RelCompare::kLt: return "<";
    case RelCompare::kLe: return "<=";
    case RelCompare::kGt: return ">";
    case RelCompare::kGe: return ">=";
  }
  return "?";
}

class Comparison : public Expression {
 public:
  Comparison(RelCompare op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Table& t, std::size_t row) const override {
    RHEEM_ASSIGN_OR_RETURN(Value l, left_->Eval(t, row));
    RHEEM_ASSIGN_OR_RETURN(Value r, right_->Eval(t, row));
    // SQL-ish null semantics: any null comparand yields null (false-y).
    if (l.is_null() || r.is_null()) return Value::Null();
    const int c = l.Compare(r);
    bool out = false;
    switch (op_) {
      case RelCompare::kEq: out = (c == 0); break;
      case RelCompare::kNe: out = (c != 0); break;
      case RelCompare::kLt: out = (c < 0); break;
      case RelCompare::kLe: out = (c <= 0); break;
      case RelCompare::kGt: out = (c > 0); break;
      case RelCompare::kGe: out = (c >= 0); break;
    }
    return Value(out);
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + CmpName(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  RelCompare op_;
  ExprPtr left_, right_;
};

const char* ArithName(RelArith op) {
  switch (op) {
    case RelArith::kAdd: return "+";
    case RelArith::kSub: return "-";
    case RelArith::kMul: return "*";
    case RelArith::kDiv: return "/";
  }
  return "?";
}

class Arithmetic : public Expression {
 public:
  Arithmetic(RelArith op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Table& t, std::size_t row) const override {
    RHEEM_ASSIGN_OR_RETURN(Value l, left_->Eval(t, row));
    RHEEM_ASSIGN_OR_RETURN(Value r, right_->Eval(t, row));
    if (l.is_null() || r.is_null()) return Value::Null();
    if (!l.is_numeric() || !r.is_numeric()) {
      return Status::InvalidArgument("arithmetic on non-numeric values");
    }
    // Integer arithmetic stays integral except division.
    if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64 &&
        op_ != RelArith::kDiv) {
      const int64_t a = l.int64_unchecked();
      const int64_t b = r.int64_unchecked();
      switch (op_) {
        case RelArith::kAdd: return Value(a + b);
        case RelArith::kSub: return Value(a - b);
        case RelArith::kMul: return Value(a * b);
        case RelArith::kDiv: break;
      }
    }
    const double a = l.ToDoubleOr(0);
    const double b = r.ToDoubleOr(0);
    switch (op_) {
      case RelArith::kAdd: return Value(a + b);
      case RelArith::kSub: return Value(a - b);
      case RelArith::kMul: return Value(a * b);
      case RelArith::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
    }
    return Status::Internal("unreachable arithmetic case");
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + ArithName(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  RelArith op_;
  ExprPtr left_, right_;
};

class BoolBinary : public Expression {
 public:
  BoolBinary(bool is_and, ExprPtr left, ExprPtr right)
      : is_and_(is_and), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Table& t, std::size_t row) const override {
    RHEEM_ASSIGN_OR_RETURN(Value l, left_->Eval(t, row));
    const bool lb = !l.is_null() && l.ToInt64Or(0) != 0;
    // Short circuit.
    if (is_and_ && !lb) return Value(false);
    if (!is_and_ && lb) return Value(true);
    RHEEM_ASSIGN_OR_RETURN(Value r, right_->Eval(t, row));
    const bool rb = !r.is_null() && r.ToInt64Or(0) != 0;
    return Value(rb);
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + (is_and_ ? " AND " : " OR ") +
           right_->ToString() + ")";
  }

 private:
  bool is_and_;
  ExprPtr left_, right_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  Result<Value> Eval(const Table& t, std::size_t row) const override {
    RHEEM_ASSIGN_OR_RETURN(Value v, inner_->Eval(t, row));
    if (v.is_null()) return Value::Null();
    return Value(v.ToInt64Or(0) == 0);
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  ExprPtr inner_;
};

}  // namespace

namespace expr {

ExprPtr Col(int index) { return std::make_shared<ColByIndex>(index); }
ExprPtr Col(const std::string& name) {
  return std::make_shared<ColByName>(name);
}
ExprPtr Lit(Value v) { return std::make_shared<Literal>(std::move(v)); }
ExprPtr Cmp(RelCompare op, ExprPtr left, ExprPtr right) {
  return std::make_shared<Comparison>(op, std::move(left), std::move(right));
}
ExprPtr Arith(RelArith op, ExprPtr left, ExprPtr right) {
  return std::make_shared<Arithmetic>(op, std::move(left), std::move(right));
}
ExprPtr And(ExprPtr left, ExprPtr right) {
  return std::make_shared<BoolBinary>(true, std::move(left), std::move(right));
}
ExprPtr Or(ExprPtr left, ExprPtr right) {
  return std::make_shared<BoolBinary>(false, std::move(left), std::move(right));
}
ExprPtr Not(ExprPtr inner) { return std::make_shared<NotExpr>(std::move(inner)); }

}  // namespace expr

Result<bool> EvalPredicate(const ExprPtr& e, const Table& table,
                           std::size_t row) {
  if (e == nullptr) return Status::InvalidArgument("null predicate");
  RHEEM_ASSIGN_OR_RETURN(Value v, e->Eval(table, row));
  if (v.is_null()) return false;
  return v.ToInt64Or(0) != 0;
}

}  // namespace relsim
}  // namespace rheem

#ifndef RHEEM_PLATFORMS_RELSIM_REL_EXEC_H_
#define RHEEM_PLATFORMS_RELSIM_REL_EXEC_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "platforms/relsim/expression.h"
#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {

/// \brief The relsim engine's relational operators: a compact volcano-style
/// execution layer over columnar tables, exercised directly by examples and
/// the storage layer, and indirectly through the RHEEM platform adapter.

/// Rows of `in` satisfying `predicate`.
Result<Table> FilterTable(const Table& in, const ExprPtr& predicate);

/// Structural projection by column indices.
Result<Table> ProjectTable(const Table& in, const std::vector<int>& columns);

/// Computed projection: each (name, expression) pair becomes a column.
Result<Table> ProjectExprs(
    const Table& in, const std::vector<std::pair<std::string, ExprPtr>>& items);

/// Aggregate functions of HashAggregate.
enum class AggKind { kSum, kCount, kMin, kMax, kAvg };

struct AggSpec {
  AggKind kind = AggKind::kCount;
  int column = 0;  // ignored for kCount
  std::string name;
};

/// Groups by `group_columns` and computes `aggs` per group. With no group
/// columns, produces a single global-aggregate row.
Result<Table> HashAggregate(const Table& in,
                            const std::vector<int>& group_columns,
                            const std::vector<AggSpec>& aggs);

/// Equi-join on one column pair; output schema = Schema::Concat.
Result<Table> HashJoinTables(const Table& left, int left_column,
                             const Table& right, int right_column);

/// Sorts by one column.
Result<Table> OrderBy(const Table& in, int column, bool ascending = true);

/// Removes duplicate rows.
Result<Table> DistinctTable(const Table& in);

}  // namespace relsim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_REL_EXEC_H_

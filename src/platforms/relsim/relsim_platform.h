#ifndef RHEEM_PLATFORMS_RELSIM_RELSIM_PLATFORM_H_
#define RHEEM_PLATFORMS_RELSIM_RELSIM_PLATFORM_H_

#include "common/config.h"
#include "core/mapping/platform.h"

namespace rheem {

/// \brief The relational platform (the reproduction's PostgreSQL stand-in).
///
/// Supports only the relational subset of the physical operator pool —
/// filters, projections, aggregations, equi-joins, sort, distinct, union —
/// and none of the UDF-iteration machinery (no Map/FlatMap/BroadcastMap, no
/// loops). Its cost model makes scans/aggregations cheap and its boundary
/// expensive: entering the platform columnarizes the data into its native
/// Table format (real work), which is why the optimizer only routes
/// aggregation-heavy subplans here when they are large enough to amortize
/// the ingestion (ablation A2).
///
/// Config keys:
///   relsim.per_quantum_us (double, default 0.012)
///   relsim.query_setup_us (double, default 400)
class RelSimPlatform : public Platform {
 public:
  static constexpr const char* kName = "relsim";

  explicit RelSimPlatform(const Config& config = Config());

  const PlatformCostModel& cost_model() const override { return cost_model_; }

  Result<std::vector<Dataset>> ExecuteStage(const Stage& stage,
                                            const BoundaryMap& boundary_inputs,
                                            ExecutionMetrics* metrics) override;

 private:
  double query_setup_us_;
  BasicCostModel cost_model_;
};

}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_RELSIM_PLATFORM_H_

#ifndef RHEEM_PLATFORMS_RELSIM_RELSIM_OPERATORS_H_
#define RHEEM_PLATFORMS_RELSIM_RELSIM_OPERATORS_H_

#include "common/result.h"
#include "data/dataset.h"

namespace rheem {
namespace relsim {

/// \brief Ingestion boundary of the relsim platform: row-shaped data quanta
/// are columnarized into the engine's native Table format and linearized
/// back for the operator pipeline (relsim evaluates RHEEM UDF operators
/// row-at-a-time, like UDFs in a classical RDBMS).
///
/// This round-trip is real measured work. It is exactly the "data might not
/// be in the required format" penalty the paper's storage abstraction (§6)
/// proposes hot-data buffers to avoid, and the ablation_hot_buffer benchmark
/// quantifies it.
Result<Dataset> IngestThroughTableFormat(const Dataset& in);

}  // namespace relsim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_RELSIM_OPERATORS_H_

#ifndef RHEEM_PLATFORMS_RELSIM_EXPRESSION_H_
#define RHEEM_PLATFORMS_RELSIM_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/value.h"
#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {

/// \brief Scalar expression AST evaluated against a table row: the small
/// declarative language relsim offers instead of opaque UDFs.
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Result<Value> Eval(const Table& table, std::size_t row) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expression>;

/// Comparison operators of the expression language.
enum class RelCompare { kEq, kNe, kLt, kLe, kGt, kGe };
/// Arithmetic operators.
enum class RelArith { kAdd, kSub, kMul, kDiv };

namespace expr {

/// Column reference by index.
ExprPtr Col(int index);
/// Column reference by name, resolved against the table at eval time.
ExprPtr Col(const std::string& name);
ExprPtr Lit(Value v);
ExprPtr Cmp(RelCompare op, ExprPtr left, ExprPtr right);
ExprPtr Arith(RelArith op, ExprPtr left, ExprPtr right);
ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr inner);

}  // namespace expr

/// Evaluates `e` and coerces to bool (null/absent -> false).
Result<bool> EvalPredicate(const ExprPtr& e, const Table& table,
                           std::size_t row);

}  // namespace relsim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_RELSIM_EXPRESSION_H_

#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_fields());
}

Result<Table> Table::FromDataset(const Dataset& data) {
  Schema schema;
  if (data.has_schema()) {
    schema = data.schema();
  } else if (!data.empty()) {
    std::vector<Field> fields;
    const Record& first = data.at(0);
    for (std::size_t i = 0; i < first.size(); ++i) {
      fields.push_back(Field{"c" + std::to_string(i), first.at(i).type()});
    }
    schema = Schema(std::move(fields));
  }
  Table t(schema);
  for (const Record& r : data.records()) {
    RHEEM_RETURN_IF_ERROR(t.AppendRow(r));
  }
  return t;
}

Status Table::AppendRow(const Record& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table of " +
        std::to_string(columns_.size()) + " columns");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].push_back(row.at(i));
  }
  ++num_rows_;
  return Status::OK();
}

Record Table::RowAt(std::size_t row) const {
  std::vector<Value> fields;
  fields.reserve(columns_.size());
  for (const auto& col : columns_) fields.push_back(col[row]);
  return Record(std::move(fields));
}

Dataset Table::ToDataset() const {
  std::vector<Record> records;
  records.reserve(num_rows_);
  for (std::size_t r = 0; r < num_rows_; ++r) records.push_back(RowAt(r));
  return Dataset(std::move(records), schema_);
}

std::string Table::ToString(std::size_t max_rows) const {
  std::string out = "Table[" + std::to_string(num_rows_) + " rows] " +
                    schema_.ToString() + "\n";
  for (std::size_t r = 0; r < num_rows_ && r < max_rows; ++r) {
    out += "  " + RowAt(r).ToString() + "\n";
  }
  if (num_rows_ > max_rows) {
    out += "  ... (" + std::to_string(num_rows_ - max_rows) + " more)\n";
  }
  return out;
}

}  // namespace relsim
}  // namespace rheem

#include "platforms/relsim/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace rheem {
namespace relsim {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (upper-cased for keyword checks), symbol
  std::string raw;    // original spelling
  double number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  /// Consumes the next token if it is the given keyword (case-insensitive).
  bool TakeKeyword(const std::string& keyword) {
    if (current_.kind == TokenKind::kIdent && current_.text == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  bool TakeSymbol(const std::string& symbol) {
    if (current_.kind == TokenKind::kSymbol && current_.text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  Status error() const { return error_; }

 private:
  void Advance() {
    if (!error_.ok()) return;
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      current_ = Token{};
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string raw;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        raw += input_[pos_++];
      }
      current_.kind = TokenKind::kIdent;
      current_.raw = raw;
      current_.text.clear();
      for (char ch : raw) {
        current_.text += static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      const char* start = input_.c_str() + pos_;
      char* end = nullptr;
      current_.number = std::strtod(start, &end);
      current_.kind = TokenKind::kNumber;
      current_.raw.assign(start, static_cast<std::size_t>(end - start));
      pos_ += static_cast<std::size_t>(end - start);
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string value;
      for (;;) {
        if (pos_ >= input_.size()) {
          error_ = Status::InvalidArgument("unterminated string literal");
          return;
        }
        if (input_[pos_] == '\'') {
          // SQL escape: a doubled quote inside a literal is one quote.
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            value += '\'';
            pos_ += 2;
            continue;
          }
          ++pos_;  // closing quote
          break;
        }
        value += input_[pos_++];
      }
      current_.kind = TokenKind::kString;
      current_.raw = value;
      current_.text = value;
      return;
    }
    // Multi-character comparison symbols first.
    for (const char* sym : {"<=", ">=", "<>", "!="}) {
      if (input_.compare(pos_, 2, sym) == 0) {
        current_.kind = TokenKind::kSymbol;
        current_.text = sym;
        current_.raw = sym;
        pos_ += 2;
        return;
      }
    }
    static const std::string kSingles = "()+-*/<>=,";
    if (kSingles.find(c) != std::string::npos) {
      current_.kind = TokenKind::kSymbol;
      current_.text = std::string(1, c);
      current_.raw = current_.text;
      ++pos_;
      return;
    }
    error_ = Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in SQL query");
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  Token current_;
  Status error_;
};

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;                 // null for aggregates
  std::string expr_text;        // rendering for naming/validation
  bool is_aggregate = false;
  AggKind agg = AggKind::kCount;
  std::string agg_column;       // "" = COUNT(*)
  std::string alias;            // AS name (may be empty)
  bool is_star = false;         // bare *
};

struct ParsedQuery {
  std::vector<SelectItem> items;
  std::string table;
  std::string join_table;     // "" = no join
  std::string join_left_col;  // column of `table`
  std::string join_right_col; // column of `join_table`
  ExprPtr where;                // null = none
  std::string where_text;
  std::vector<std::string> group_by;
  std::string order_by;         // "" = none
  bool order_ascending = true;
  int64_t limit = -1;           // -1 = none
};

// ---------------------------------------------------------------------------
// Expression parser (precedence climbing)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& input) : lexer_(input) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    RHEEM_RETURN_IF_ERROR(Expect("SELECT"));
    RHEEM_RETURN_IF_ERROR(ParseSelectList(&q));
    RHEEM_RETURN_IF_ERROR(Expect("FROM"));
    if (lexer_.Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected a table name after FROM");
    }
    q.table = lexer_.Take().raw;
    if (lexer_.TakeKeyword("JOIN")) {
      if (lexer_.Peek().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected a table name after JOIN");
      }
      q.join_table = lexer_.Take().raw;
      RHEEM_RETURN_IF_ERROR(Expect("ON"));
      if (lexer_.Peek().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("ON expects column = column");
      }
      q.join_left_col = lexer_.Take().raw;
      if (!lexer_.TakeSymbol("=")) {
        return Status::InvalidArgument("ON expects column = column");
      }
      if (lexer_.Peek().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("ON expects column = column");
      }
      q.join_right_col = lexer_.Take().raw;
    }
    if (lexer_.TakeKeyword("WHERE")) {
      RHEEM_ASSIGN_OR_RETURN(auto e, ParseExpr());
      q.where = e.first;
      q.where_text = e.second;
    }
    if (lexer_.TakeKeyword("GROUP")) {
      RHEEM_RETURN_IF_ERROR(Expect("BY"));
      do {
        if (lexer_.Peek().kind != TokenKind::kIdent) {
          return Status::InvalidArgument("GROUP BY expects column names");
        }
        q.group_by.push_back(lexer_.Take().raw);
      } while (lexer_.TakeSymbol(","));
    }
    if (lexer_.TakeKeyword("ORDER")) {
      RHEEM_RETURN_IF_ERROR(Expect("BY"));
      if (lexer_.Peek().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("ORDER BY expects a column name");
      }
      q.order_by = lexer_.Take().raw;
      if (lexer_.TakeKeyword("DESC")) {
        q.order_ascending = false;
      } else {
        lexer_.TakeKeyword("ASC");
      }
    }
    if (lexer_.TakeKeyword("LIMIT")) {
      if (lexer_.Peek().kind != TokenKind::kNumber) {
        return Status::InvalidArgument("LIMIT expects a number");
      }
      q.limit = static_cast<int64_t>(lexer_.Take().number);
      if (q.limit < 0) return Status::InvalidArgument("negative LIMIT");
    }
    RHEEM_RETURN_IF_ERROR(lexer_.error());
    if (lexer_.Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after query: '" +
                                     lexer_.Peek().raw + "'");
    }
    return q;
  }

 private:
  using ExprAndText = std::pair<ExprPtr, std::string>;

  Status Expect(const std::string& keyword) {
    if (!lexer_.TakeKeyword(keyword)) {
      return Status::InvalidArgument("expected " + keyword + " near '" +
                                     lexer_.Peek().raw + "'");
    }
    return Status::OK();
  }

  static Result<AggKind> AggFromName(const std::string& upper) {
    if (upper == "SUM") return AggKind::kSum;
    if (upper == "COUNT") return AggKind::kCount;
    if (upper == "MIN") return AggKind::kMin;
    if (upper == "MAX") return AggKind::kMax;
    if (upper == "AVG") return AggKind::kAvg;
    return Status::NotFound("not an aggregate: " + upper);
  }

  Status ParseSelectList(ParsedQuery* q) {
    if (lexer_.TakeSymbol("*")) {
      SelectItem star;
      star.is_star = true;
      q->items.push_back(std::move(star));
      return Status::OK();
    }
    do {
      SelectItem item;
      // Aggregate?
      if (lexer_.Peek().kind == TokenKind::kIdent) {
        auto agg = AggFromName(lexer_.Peek().text);
        if (agg.ok()) {
          Token name = lexer_.Take();
          if (!lexer_.TakeSymbol("(")) {
            return Status::InvalidArgument("expected ( after " + name.raw);
          }
          item.is_aggregate = true;
          item.agg = agg.ValueOrDie();
          if (lexer_.TakeSymbol("*")) {
            if (item.agg != AggKind::kCount) {
              return Status::InvalidArgument("only COUNT accepts *");
            }
          } else if (lexer_.Peek().kind == TokenKind::kIdent) {
            item.agg_column = lexer_.Take().raw;
          } else {
            return Status::InvalidArgument(
                "aggregates take a column name (or * for COUNT)");
          }
          if (!lexer_.TakeSymbol(")")) {
            return Status::InvalidArgument("expected ) to close " + name.raw);
          }
          item.expr_text = name.text + "(" +
                           (item.agg_column.empty() ? "*" : item.agg_column) +
                           ")";
        }
      }
      if (!item.is_aggregate) {
        RHEEM_ASSIGN_OR_RETURN(ExprAndText e, ParseExpr());
        item.expr = e.first;
        item.expr_text = e.second;
      }
      if (lexer_.TakeKeyword("AS")) {
        if (lexer_.Peek().kind != TokenKind::kIdent) {
          return Status::InvalidArgument("AS expects a name");
        }
        item.alias = lexer_.Take().raw;
      }
      q->items.push_back(std::move(item));
    } while (lexer_.TakeSymbol(","));
    return Status::OK();
  }

  Result<ExprAndText> ParseExpr() { return ParseOr(); }

  Result<ExprAndText> ParseOr() {
    RHEEM_ASSIGN_OR_RETURN(ExprAndText left, ParseAnd());
    while (lexer_.TakeKeyword("OR")) {
      RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParseAnd());
      left = {expr::Or(left.first, right.first),
              "(" + left.second + " OR " + right.second + ")"};
    }
    return left;
  }

  Result<ExprAndText> ParseAnd() {
    RHEEM_ASSIGN_OR_RETURN(ExprAndText left, ParseNot());
    while (lexer_.TakeKeyword("AND")) {
      RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParseNot());
      left = {expr::And(left.first, right.first),
              "(" + left.second + " AND " + right.second + ")"};
    }
    return left;
  }

  Result<ExprAndText> ParseNot() {
    if (lexer_.TakeKeyword("NOT")) {
      RHEEM_ASSIGN_OR_RETURN(ExprAndText inner, ParseNot());
      return ExprAndText{expr::Not(inner.first), "NOT " + inner.second};
    }
    return ParseComparison();
  }

  Result<ExprAndText> ParseComparison() {
    RHEEM_ASSIGN_OR_RETURN(ExprAndText left, ParseAdditive());
    static const std::pair<const char*, RelCompare> kOps[] = {
        {"<=", RelCompare::kLe}, {">=", RelCompare::kGe},
        {"<>", RelCompare::kNe}, {"!=", RelCompare::kNe},
        {"=", RelCompare::kEq},  {"<", RelCompare::kLt},
        {">", RelCompare::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (lexer_.TakeSymbol(sym)) {
        RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParseAdditive());
        return ExprAndText{expr::Cmp(op, left.first, right.first),
                           "(" + left.second + " " + sym + " " +
                               right.second + ")"};
      }
    }
    return left;
  }

  Result<ExprAndText> ParseAdditive() {
    RHEEM_ASSIGN_OR_RETURN(ExprAndText left, ParseMultiplicative());
    for (;;) {
      if (lexer_.TakeSymbol("+")) {
        RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParseMultiplicative());
        left = {expr::Arith(RelArith::kAdd, left.first, right.first),
                "(" + left.second + " + " + right.second + ")"};
      } else if (lexer_.TakeSymbol("-")) {
        RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParseMultiplicative());
        left = {expr::Arith(RelArith::kSub, left.first, right.first),
                "(" + left.second + " - " + right.second + ")"};
      } else {
        return left;
      }
    }
  }

  Result<ExprAndText> ParseMultiplicative() {
    RHEEM_ASSIGN_OR_RETURN(ExprAndText left, ParsePrimary());
    for (;;) {
      if (lexer_.TakeSymbol("*")) {
        RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParsePrimary());
        left = {expr::Arith(RelArith::kMul, left.first, right.first),
                "(" + left.second + " * " + right.second + ")"};
      } else if (lexer_.TakeSymbol("/")) {
        RHEEM_ASSIGN_OR_RETURN(ExprAndText right, ParsePrimary());
        left = {expr::Arith(RelArith::kDiv, left.first, right.first),
                "(" + left.second + " / " + right.second + ")"};
      } else {
        return left;
      }
    }
  }

  Result<ExprAndText> ParsePrimary() {
    RHEEM_RETURN_IF_ERROR(lexer_.error());
    const Token& t = lexer_.Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        Token tok = lexer_.Take();
        const double d = tok.number;
        const bool integral = d == static_cast<int64_t>(d) &&
                              tok.raw.find('.') == std::string::npos;
        ExprPtr e = integral ? expr::Lit(Value(static_cast<int64_t>(d)))
                             : expr::Lit(Value(d));
        return ExprAndText{e, tok.raw};
      }
      case TokenKind::kString: {
        Token tok = lexer_.Take();
        // Re-quote through the shared helper so Render() output (and any
        // query text rebuilt from it) stays parseable even when the literal
        // contains quotes.
        return ExprAndText{expr::Lit(Value(tok.raw)), SqlQuoteString(tok.raw)};
      }
      case TokenKind::kIdent: {
        if (t.text == "NULL") {
          lexer_.Take();
          return ExprAndText{expr::Lit(Value::Null()), "NULL"};
        }
        if (t.text == "TRUE" || t.text == "FALSE") {
          Token tok = lexer_.Take();
          return ExprAndText{expr::Lit(Value(tok.text == "TRUE")), tok.text};
        }
        Token tok = lexer_.Take();
        return ExprAndText{expr::Col(tok.raw), tok.raw};
      }
      case TokenKind::kSymbol:
        if (t.text == "(") {
          lexer_.Take();
          RHEEM_ASSIGN_OR_RETURN(ExprAndText inner, ParseExpr());
          if (!lexer_.TakeSymbol(")")) {
            return Status::InvalidArgument("expected )");
          }
          return inner;
        }
        if (t.text == "-") {  // unary minus
          lexer_.Take();
          RHEEM_ASSIGN_OR_RETURN(ExprAndText inner, ParsePrimary());
          return ExprAndText{
              expr::Arith(RelArith::kSub, expr::Lit(Value(int64_t{0})),
                          inner.first),
              "-" + inner.second};
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    return Status::InvalidArgument("unexpected token '" + t.raw +
                                   "' in expression");
  }

  Lexer lexer_;
};

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Result<Table> RunParsed(const Catalog& catalog, const ParsedQuery& q) {
  RHEEM_ASSIGN_OR_RETURN(const Table* source, catalog.Get(q.table));
  Table current = *source;

  if (!q.join_table.empty()) {
    // Equi-join; the combined schema is left columns then right columns
    // (duplicate names suffixed "_r" — reference those downstream).
    RHEEM_ASSIGN_OR_RETURN(const Table* right, catalog.Get(q.join_table));
    RHEEM_ASSIGN_OR_RETURN(int lcol, current.schema().IndexOf(q.join_left_col));
    RHEEM_ASSIGN_OR_RETURN(int rcol, right->schema().IndexOf(q.join_right_col));
    RHEEM_ASSIGN_OR_RETURN(current,
                           HashJoinTables(current, lcol, *right, rcol));
  }

  if (q.where != nullptr) {
    RHEEM_ASSIGN_OR_RETURN(current, FilterTable(current, q.where));
  }

  const bool has_aggregate =
      std::any_of(q.items.begin(), q.items.end(),
                  [](const SelectItem& i) { return i.is_aggregate; });

  if (has_aggregate || !q.group_by.empty()) {
    // Resolve group columns and validate non-aggregate items.
    std::vector<int> group_cols;
    for (const std::string& name : q.group_by) {
      RHEEM_ASSIGN_OR_RETURN(int idx, current.schema().IndexOf(name));
      group_cols.push_back(idx);
    }
    std::vector<AggSpec> aggs;
    for (const SelectItem& item : q.items) {
      if (item.is_star) {
        return Status::InvalidArgument("* cannot be mixed with aggregation");
      }
      if (item.is_aggregate) {
        AggSpec spec;
        spec.kind = item.agg;
        if (!item.agg_column.empty()) {
          RHEEM_ASSIGN_OR_RETURN(spec.column,
                                 current.schema().IndexOf(item.agg_column));
        }
        spec.name = item.alias.empty() ? item.expr_text : item.alias;
        aggs.push_back(std::move(spec));
      } else {
        // Must be one of the group columns (plain reference).
        const bool is_group_col =
            std::find(q.group_by.begin(), q.group_by.end(), item.expr_text) !=
            q.group_by.end();
        if (!is_group_col) {
          return Status::InvalidArgument(
              "non-aggregate select item '" + item.expr_text +
              "' must appear in GROUP BY");
        }
      }
    }
    RHEEM_ASSIGN_OR_RETURN(current, HashAggregate(current, group_cols, aggs));
  } else if (!(q.items.size() == 1 && q.items[0].is_star)) {
    std::vector<std::pair<std::string, ExprPtr>> projections;
    for (const SelectItem& item : q.items) {
      if (item.is_star) {
        return Status::InvalidArgument("* cannot be mixed with other items");
      }
      projections.emplace_back(
          item.alias.empty() ? item.expr_text : item.alias, item.expr);
    }
    RHEEM_ASSIGN_OR_RETURN(current, ProjectExprs(current, projections));
  }

  if (!q.order_by.empty()) {
    RHEEM_ASSIGN_OR_RETURN(int idx, current.schema().IndexOf(q.order_by));
    RHEEM_ASSIGN_OR_RETURN(current, OrderBy(current, idx, q.order_ascending));
  }

  if (q.limit >= 0 && static_cast<std::size_t>(q.limit) < current.num_rows()) {
    Table limited(current.schema());
    for (std::size_t r = 0; r < static_cast<std::size_t>(q.limit); ++r) {
      RHEEM_RETURN_IF_ERROR(limited.AppendRow(current.RowAt(r)));
    }
    current = std::move(limited);
  }
  return current;
}

std::string Render(const ParsedQuery& q) {
  std::string out = "SELECT ";
  for (std::size_t i = 0; i < q.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = q.items[i];
    out += item.is_star ? "*" : item.expr_text;
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM " + q.table;
  if (!q.join_table.empty()) {
    out += " JOIN " + q.join_table + " ON " + q.join_left_col + " = " +
           q.join_right_col;
  }
  if (q.where != nullptr) out += " WHERE " + q.where_text;
  if (!q.group_by.empty()) out += " GROUP BY " + JoinStrings(q.group_by, ", ");
  if (!q.order_by.empty()) {
    out += " ORDER BY " + q.order_by + (q.order_ascending ? " ASC" : " DESC");
  }
  if (q.limit >= 0) out += " LIMIT " + std::to_string(q.limit);
  return out;
}

}  // namespace

Result<Table> ExecuteSql(const Catalog& catalog, const std::string& query) {
  Parser parser(query);
  RHEEM_ASSIGN_OR_RETURN(ParsedQuery parsed, parser.Parse());
  return RunParsed(catalog, parsed);
}

Result<std::string> ExplainSql(const std::string& query) {
  Parser parser(query);
  RHEEM_ASSIGN_OR_RETURN(ParsedQuery parsed, parser.Parse());
  return Render(parsed);
}

}  // namespace relsim
}  // namespace rheem

#ifndef RHEEM_PLATFORMS_JAVASIM_JAVASIM_OPERATORS_H_
#define RHEEM_PLATFORMS_JAVASIM_JAVASIM_OPERATORS_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "core/mapping/platform.h"
#include "core/operators/physical_ops.h"
#include "data/dataset.h"

namespace rheem {
namespace javasim {

/// \brief Execution-operator layer of the javasim platform: eager,
/// single-threaded evaluation of whole Datasets — the "plain Java program"
/// side of the paper's Figure 2.
///
/// Each physical operator maps to one of these evaluations via the mapping
/// table declared in JavaSimPlatform; the walker executes a task atom (or a
/// loop body) in topological order with zero scheduling overhead.
class DatasetWalker {
 public:
  explicit DatasetWalker(ExecutionMetrics* metrics) : metrics_(metrics) {}

  /// Evaluates `ops` (already topologically ordered) resolving out-of-stage
  /// inputs from `external` (producer op id -> dataset).
  Status RunOps(const std::vector<Operator*>& ops, const BoundaryMap& external);

  Result<const Dataset*> ResultOf(int op_id) const;

 private:
  /// Dispatches one operator to its execution kernel.
  Result<Dataset> EvalOperator(const PhysicalOperator& op,
                               const std::vector<const Dataset*>& inputs);

  /// Runs a Repeat/DoWhile body to completion (inputs: state, data).
  Result<Dataset> EvalLoop(const PhysicalOperator& op, const Dataset& state0,
                           const Dataset& data);

  ExecutionMetrics* metrics_;
  std::map<int, Dataset> results_;
  int64_t next_zip_id_ = 0;
};

}  // namespace javasim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_JAVASIM_JAVASIM_OPERATORS_H_

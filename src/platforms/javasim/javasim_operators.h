#ifndef RHEEM_PLATFORMS_JAVASIM_JAVASIM_OPERATORS_H_
#define RHEEM_PLATFORMS_JAVASIM_JAVASIM_OPERATORS_H_

#include <map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/mapping/platform.h"
#include "core/operators/kernels.h"
#include "core/operators/physical_ops.h"
#include "data/dataset.h"

namespace rheem {
namespace javasim {

/// \brief Execution-operator layer of the javasim platform: eager evaluation
/// of whole Datasets — the "plain Java program" side of the paper's Figure 2.
///
/// Each physical operator maps to one of these evaluations via the mapping
/// table declared in JavaSimPlatform; the walker executes a task atom (or a
/// loop body) in topological order with zero scheduling overhead. Kernels
/// run morsel-parallel per `opts` (kernels.* config keys), and with `fuse`
/// enabled consecutive Map/Filter/FlatMap/Project runs execute as a single
/// FusedPipeline pass with no intermediate Dataset.
class DatasetWalker {
 public:
  explicit DatasetWalker(ExecutionMetrics* metrics,
                         kernels::KernelOptions opts = {}, bool fuse = false)
      : metrics_(metrics), opts_(opts), fuse_(fuse) {}

  /// Evaluates `ops` (already topologically ordered) resolving out-of-stage
  /// inputs from `external` (producer op id -> dataset). Operators whose ids
  /// appear in `preserve` keep an addressable result (they are never fused
  /// into the middle of a pipeline).
  Status RunOps(const std::vector<Operator*>& ops, const BoundaryMap& external,
                const std::unordered_set<int>& preserve = {});

  Result<const Dataset*> ResultOf(int op_id) const;

 private:
  /// Resolves one upstream operator's output (stage-local or external).
  Result<const Dataset*> ResolveInput(const Operator& producer,
                                      const BoundaryMap& external,
                                      const Operator& consumer) const;

  /// Dispatches one operator to its execution kernel.
  Result<Dataset> EvalOperator(const PhysicalOperator& op,
                               const std::vector<const Dataset*>& inputs);

  /// Runs a Repeat/DoWhile body to completion (inputs: state, data).
  Result<Dataset> EvalLoop(const PhysicalOperator& op, const Dataset& state0,
                           const Dataset& data);

  ExecutionMetrics* metrics_;
  kernels::KernelOptions opts_;
  bool fuse_ = false;
  std::map<int, Dataset> results_;
  int64_t next_zip_id_ = 0;
};

}  // namespace javasim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_JAVASIM_JAVASIM_OPERATORS_H_

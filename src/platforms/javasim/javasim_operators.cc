#include "platforms/javasim/javasim_operators.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "core/operators/fusion.h"
#include "core/operators/iejoin.h"
#include "core/plan/plan.h"

namespace rheem {
namespace javasim {

Result<const Dataset*> DatasetWalker::ResolveInput(
    const Operator& producer, const BoundaryMap& external,
    const Operator& consumer) const {
  auto it = results_.find(producer.id());
  if (it != results_.end()) return &it->second;
  auto ext = external.find(producer.id());
  if (ext == external.end()) {
    return Status::ExecutionError("javasim: missing input #" +
                                  std::to_string(producer.id()) + " for " +
                                  consumer.name());
  }
  return ext->second;
}

Status DatasetWalker::RunOps(const std::vector<Operator*>& ops,
                             const BoundaryMap& external,
                             const std::unordered_set<int>& preserve) {
  const std::vector<fusion::FusionUnit> units =
      fusion::PlanFusionUnits(ops, preserve, fuse_);
  for (const fusion::FusionUnit& unit : units) {
    if (unit.fused()) {
      // One pass over the head's input; only the tail's result materializes
      // (the planner guarantees no one else reads the intermediates).
      Operator* head = unit.ops.front();
      Operator* tail = unit.ops.back();
      if (dynamic_cast<PhysicalOperator*>(head) == nullptr ||
          head->inputs().empty()) {
        return Status::InvalidPlan("javasim: malformed fused chain at " +
                                   head->name());
      }
      RHEEM_ASSIGN_OR_RETURN(const Dataset* in,
                             ResolveInput(*head->inputs()[0], external, *head));
      TraceSpan chain_span("chain", "javasim");
      chain_span.AddTag("operators", static_cast<int64_t>(unit.ops.size()));
      chain_span.AddTag("tail", tail->name());
      RHEEM_ASSIGN_OR_RETURN(
          Dataset out,
          kernels::FusedPipeline(fusion::StepsFor(unit.ops), *in, opts_));
      results_[tail->id()] = std::move(out);
      if (metrics_ != nullptr) {
        metrics_->fused_operators += static_cast<int64_t>(unit.ops.size());
      }
      CountIfEnabled(
          MetricsRegistry::Global().counter("javasim.fused_operators"),
          static_cast<int64_t>(unit.ops.size()));
      continue;
    }
    Operator* base = unit.ops.front();
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) {
      return Status::InvalidPlan("javasim can only execute physical operators");
    }
    std::vector<const Dataset*> inputs;
    inputs.reserve(op->inputs().size());
    for (Operator* in : op->inputs()) {
      RHEEM_ASSIGN_OR_RETURN(const Dataset* d,
                             ResolveInput(*in, external, *op));
      inputs.push_back(d);
    }
    TraceSpan op_span("chain", "javasim");
    op_span.AddTag("operators", static_cast<int64_t>(1));
    op_span.AddTag("tail", op->name());
    RHEEM_ASSIGN_OR_RETURN(Dataset out, EvalOperator(*op, inputs));
    results_[op->id()] = std::move(out);
  }
  return Status::OK();
}

Result<const Dataset*> DatasetWalker::ResultOf(int op_id) const {
  auto it = results_.find(op_id);
  if (it == results_.end()) {
    return Status::ExecutionError("javasim: no result for operator #" +
                                  std::to_string(op_id));
  }
  return &it->second;
}

Result<Dataset> DatasetWalker::EvalOperator(
    const PhysicalOperator& op, const std::vector<const Dataset*>& inputs) {
  static const Dataset* const kEmpty = new Dataset();
  const Dataset& in0 = inputs.empty() ? *kEmpty : *inputs[0];
  switch (op.kind()) {
    case OpKind::kCollectionSource:
      return static_cast<const CollectionSourceOp&>(op).data();
    case OpKind::kStageInput:
    case OpKind::kLoopState:
    case OpKind::kLoopData:
      return Status::ExecutionError(op.kind_name() +
                                    " must be bound externally");
    case OpKind::kMap:
      return kernels::Map(static_cast<const MapOp&>(op).udf(), in0, opts_);
    case OpKind::kFlatMap:
      return kernels::FlatMap(static_cast<const FlatMapOp&>(op).udf(), in0,
                              opts_);
    case OpKind::kFilter:
      return kernels::Filter(static_cast<const FilterOp&>(op).udf(), in0,
                             opts_);
    case OpKind::kProject:
      return kernels::Project(static_cast<const ProjectOp&>(op).columns(), in0,
                              opts_);
    case OpKind::kDistinct:
      return kernels::Distinct(in0);
    case OpKind::kSort:
      return kernels::SortByKey(static_cast<const SortOp&>(op).key(), in0,
                                opts_);
    case OpKind::kSample: {
      const auto& s = static_cast<const SampleOp&>(op);
      return kernels::Sample(s.fraction(), s.seed(), in0, opts_);
    }
    case OpKind::kZipWithId: {
      auto out = kernels::ZipWithId(next_zip_id_, in0, opts_);
      if (out.ok()) next_zip_id_ += static_cast<int64_t>(in0.size());
      return out;
    }
    case OpKind::kReduceByKey: {
      const auto& r = static_cast<const ReduceByKeyOp&>(op);
      return kernels::ReduceByKey(r.key(), r.reduce(), in0, opts_);
    }
    case OpKind::kGroupByKey: {
      const auto& g = static_cast<const GroupByKeyOp&>(op);
      return g.algorithm() == GroupByAlgorithm::kHash
                 ? kernels::HashGroupBy(g.key(), g.group(), in0, opts_)
                 : kernels::SortGroupBy(g.key(), g.group(), in0, opts_);
    }
    case OpKind::kGlobalReduce:
      return kernels::GlobalReduce(
          static_cast<const GlobalReduceOp&>(op).reduce(), in0, opts_);
    case OpKind::kCount:
      return kernels::Count(in0, opts_);
    case OpKind::kBroadcastMap:
      return kernels::BroadcastMap(
          static_cast<const BroadcastMapOp&>(op).udf(), in0, *inputs[1],
          opts_);
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(op);
      return j.algorithm() == JoinAlgorithm::kHash
                 ? kernels::HashJoin(j.left_key(), j.right_key(), in0,
                                     *inputs[1], opts_)
                 : kernels::SortMergeJoin(j.left_key(), j.right_key(), in0,
                                          *inputs[1]);
    }
    case OpKind::kThetaJoin:
      return kernels::ThetaJoin(
          static_cast<const ThetaJoinOp&>(op).condition(), in0, *inputs[1]);
    case OpKind::kIEJoin:
      return kernels::IEJoin(static_cast<const IEJoinOp&>(op).spec(), in0,
                             *inputs[1]);
    case OpKind::kCrossProduct:
      return kernels::CrossProduct(in0, *inputs[1]);
    case OpKind::kUnion:
      return kernels::Union(in0, *inputs[1]);
    case OpKind::kIntersect:
      return kernels::Intersect(in0, *inputs[1]);
    case OpKind::kSubtract:
      return kernels::Subtract(in0, *inputs[1]);
    case OpKind::kTopK: {
      const auto& t = static_cast<const TopKOp&>(op);
      return kernels::TopK(t.key(), t.k(), t.ascending(), in0);
    }
    case OpKind::kRepeat:
    case OpKind::kDoWhile:
      return EvalLoop(op, in0, *inputs[1]);
    case OpKind::kCollect:
      return in0;
  }
  return Status::Unsupported("javasim cannot execute " + op.kind_name());
}

Result<Dataset> DatasetWalker::EvalLoop(const PhysicalOperator& op,
                                        const Dataset& state0,
                                        const Dataset& data) {
  const Plan* body = nullptr;
  int iterations = 0;
  const LoopConditionUdf* condition = nullptr;
  if (op.kind() == OpKind::kRepeat) {
    const auto& rep = static_cast<const RepeatOp&>(op);
    body = &rep.body();
    iterations = rep.num_iterations();
  } else {
    const auto& dw = static_cast<const DoWhileOp&>(op);
    body = &dw.body();
    iterations = dw.max_iterations();
    condition = &dw.condition();
  }
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> body_topo,
                         body->TopologicalOrder());
  // Locate the marker operators once.
  const Operator* state_marker = nullptr;
  const Operator* data_marker = nullptr;
  for (Operator* o : body_topo) {
    auto* p = dynamic_cast<PhysicalOperator*>(o);
    if (p == nullptr) continue;
    if (p->kind() == OpKind::kLoopState) state_marker = p;
    if (p->kind() == OpKind::kLoopData) data_marker = p;
  }
  // The body sink's result is read back after every iteration.
  std::unordered_set<int> preserve;
  if (body->sink() != nullptr) preserve.insert(body->sink()->id());
  Dataset state = state0;
  for (int iter = 0; iter < iterations; ++iter) {
    if (condition != nullptr && condition->fn && !condition->fn(state, iter)) {
      break;
    }
    BoundaryMap bindings;
    if (state_marker != nullptr) bindings[state_marker->id()] = &state;
    if (data_marker != nullptr) bindings[data_marker->id()] = &data;
    // A fresh walker per iteration: body results must not leak across
    // iterations (ids collide), but the zip-id counter carries over.
    DatasetWalker body_walker(metrics_, opts_, fuse_);
    body_walker.next_zip_id_ = next_zip_id_;
    std::vector<Operator*> body_ops;
    for (Operator* o : body_topo) {
      auto* p = dynamic_cast<PhysicalOperator*>(o);
      if (p != nullptr && (p->kind() == OpKind::kLoopState ||
                           p->kind() == OpKind::kLoopData)) {
        continue;  // bound, not evaluated
      }
      body_ops.push_back(o);
    }
    RHEEM_RETURN_IF_ERROR(body_walker.RunOps(body_ops, bindings, preserve));
    next_zip_id_ = body_walker.next_zip_id_;
    // The body may return a marker directly (degenerate bodies).
    if (body->sink() == state_marker) continue;
    if (body->sink() == data_marker) {
      state = data;
      continue;
    }
    RHEEM_ASSIGN_OR_RETURN(const Dataset* next,
                           body_walker.ResultOf(body->sink()->id()));
    state = *next;
  }
  return state;
}

}  // namespace javasim
}  // namespace rheem

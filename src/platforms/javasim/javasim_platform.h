#ifndef RHEEM_PLATFORMS_JAVASIM_JAVASIM_PLATFORM_H_
#define RHEEM_PLATFORMS_JAVASIM_JAVASIM_PLATFORM_H_

#include "common/config.h"
#include "core/mapping/platform.h"

namespace rheem {

/// \brief The "plain Java program" platform of the paper's Figure 2:
/// single-threaded, eager, with essentially zero fixed overheads.
///
/// Strengths (encoded in its cost model): tiny/medium inputs and iterative
/// jobs, where cluster-style platforms drown in scheduling latency.
/// Weakness: no parallelism, so throughput-bound jobs scale linearly.
///
/// Config keys:
///   javasim.per_quantum_us  (double, default 0.03) estimated cost/quantum
class JavaSimPlatform : public Platform {
 public:
  static constexpr const char* kName = "javasim";

  explicit JavaSimPlatform(const Config& config = Config());

  const PlatformCostModel& cost_model() const override { return cost_model_; }

  Result<std::vector<Dataset>> ExecuteStage(const Stage& stage,
                                            const BoundaryMap& boundary_inputs,
                                            ExecutionMetrics* metrics) override;

 private:
  BasicCostModel cost_model_;
};

}  // namespace rheem

#endif  // RHEEM_PLATFORMS_JAVASIM_JAVASIM_PLATFORM_H_

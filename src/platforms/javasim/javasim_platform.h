#ifndef RHEEM_PLATFORMS_JAVASIM_JAVASIM_PLATFORM_H_
#define RHEEM_PLATFORMS_JAVASIM_JAVASIM_PLATFORM_H_

#include "common/config.h"
#include "core/mapping/platform.h"
#include "core/operators/kernels.h"

namespace rheem {

/// \brief The "plain Java program" platform of the paper's Figure 2:
/// eager, in-process, with essentially zero fixed overheads.
///
/// Strengths (encoded in its cost model): tiny/medium inputs and iterative
/// jobs, where cluster-style platforms drown in scheduling latency. Its
/// kernels run morsel-parallel on the shared thread pool and fuse
/// record-at-a-time chains into single passes, but it has no cluster-scale
/// horizontal parallelism, so throughput-bound jobs still favor sparksim.
///
/// Config keys:
///   javasim.per_quantum_us    (double, default 0.03) estimated cost/quantum
///   kernels.parallel          (bool,   default true) morsel parallelism
///   kernels.morsel_size       (int,    default 16384) records per morsel
///   kernels.fuse              (bool,   default true) pipeline fusion
///   kernels.cost_parallelism  (double, default 3.0) modeled speedup from
///                             morsel parallelism when kernels.parallel is on
///   kernels.fusion_discount   (double, default 0.75) modeled per-tuple
///                             discount for fusable ops when kernels.fuse is on
class JavaSimPlatform : public Platform {
 public:
  static constexpr const char* kName = "javasim";

  explicit JavaSimPlatform(const Config& config = Config());

  const PlatformCostModel& cost_model() const override { return cost_model_; }

  Result<std::vector<Dataset>> ExecuteStage(const Stage& stage,
                                            const BoundaryMap& boundary_inputs,
                                            ExecutionMetrics* metrics) override;

 private:
  kernels::KernelOptions kernel_opts_;
  bool fuse_ = true;
  BasicCostModel cost_model_;
};

}  // namespace rheem

#endif  // RHEEM_PLATFORMS_JAVASIM_JAVASIM_PLATFORM_H_

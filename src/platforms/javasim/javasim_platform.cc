#include "platforms/javasim/javasim_platform.h"

#include "core/optimizer/stage_splitter.h"
#include "platforms/javasim/javasim_operators.h"

namespace rheem {

namespace {

BasicCostModel::Params JavaParams(const Config& config) {
  BasicCostModel::Params p;
  p.per_quantum_micros = config.GetDouble("javasim.per_quantum_us", 0.03)
                             .ValueOr(0.03);
  // Morsel parallelism gives javasim a modeled intra-process speedup; it is
  // a fixed config constant (not hardware-sniffed) so platform choices stay
  // reproducible. Still far below sparksim's slot count: heavy parallel jobs
  // keep landing on the cluster platform.
  const bool parallel = config.GetBool("kernels.parallel", true).ValueOr(true);
  p.parallelism =
      parallel ? config.GetDouble("kernels.cost_parallelism", 3.0).ValueOr(3.0)
               : 1.0;
  const bool fuse = config.GetBool("kernels.fuse", true).ValueOr(true);
  p.fusion_discount =
      fuse ? config.GetDouble("kernels.fusion_discount", 0.75).ValueOr(0.75)
           : 1.0;
  p.stage_overhead_micros = 0.0;
  p.job_overhead_micros = 0.0;
  p.boundary_micros_per_byte = 0.0004;
  p.boundary_fixed_micros = 20.0;
  p.shuffle_micros_per_quantum = 0.0;  // no shuffles in one process
  return p;
}

MappingTable JavaMappings() {
  MappingTable t;
  auto add = [&t](OpKind kind, const char* exec, double weight = 1.0,
                  const char* context = "") {
    t.Add(OperatorMapping{kind, "", exec, weight, context});
  };
  add(OpKind::kCollectionSource, "JavaCollectionSource");
  add(OpKind::kMap, "JavaMap");
  add(OpKind::kFlatMap, "JavaFlatMap");
  add(OpKind::kFilter, "JavaFilter");
  add(OpKind::kProject, "JavaProject");
  add(OpKind::kDistinct, "JavaHashDistinct");
  add(OpKind::kSort, "JavaSort");
  add(OpKind::kSample, "JavaBernoulliSample");
  add(OpKind::kZipWithId, "JavaZipWithId");
  add(OpKind::kReduceByKey, "JavaReduceByKey");
  t.Add(OperatorMapping{OpKind::kGroupByKey, "HashGroupBy", "JavaHashGroupBy",
                        1.0, "hash table over whole input"});
  t.Add(OperatorMapping{OpKind::kGroupByKey, "SortGroupBy", "JavaSortGroupBy",
                        1.0, "stable sort + run scan"});
  add(OpKind::kGlobalReduce, "JavaReduce");
  add(OpKind::kCount, "JavaCount");
  add(OpKind::kBroadcastMap, "JavaMapWithSideInput");
  t.Add(OperatorMapping{OpKind::kJoin, "HashJoin", "JavaHashJoin", 1.0, ""});
  t.Add(OperatorMapping{OpKind::kJoin, "SortMergeJoin", "JavaSortMergeJoin",
                        1.0, ""});
  add(OpKind::kThetaJoin, "JavaNestedLoopJoin");
  add(OpKind::kIEJoin, "JavaIEJoin", 1.0,
      "bit-array inequality join, single-threaded");
  add(OpKind::kCrossProduct, "JavaCartesian");
  add(OpKind::kUnion, "JavaUnionAll");
  add(OpKind::kIntersect, "JavaHashIntersect");
  add(OpKind::kSubtract, "JavaHashSubtract");
  add(OpKind::kTopK, "JavaHeapTopK", 1.0, "O(n log k) heap selection");
  add(OpKind::kRepeat, "JavaForLoop", 1.0, "plain in-process loop");
  add(OpKind::kDoWhile, "JavaWhileLoop");
  add(OpKind::kCollect, "JavaCollect");
  return t;
}

}  // namespace

JavaSimPlatform::JavaSimPlatform(const Config& config)
    : Platform(kName),
      kernel_opts_(kernels::KernelOptions::FromConfig(config)),
      fuse_(config.GetBool("kernels.fuse", true).ValueOr(true)),
      cost_model_(JavaParams(config)) {
  mappings_ = JavaMappings();
}

Result<std::vector<Dataset>> JavaSimPlatform::ExecuteStage(
    const Stage& stage, const BoundaryMap& boundary_inputs,
    ExecutionMetrics* metrics) {
  javasim::DatasetWalker walker(metrics, kernel_opts_, fuse_);
  // Stage outputs are read back by the executor: never fuse them away.
  std::unordered_set<int> preserve;
  for (const Operator* out : stage.outputs()) preserve.insert(out->id());
  RHEEM_RETURN_IF_ERROR(walker.RunOps(stage.ops(), boundary_inputs, preserve));
  std::vector<Dataset> outputs;
  outputs.reserve(stage.outputs().size());
  for (const Operator* out : stage.outputs()) {
    RHEEM_ASSIGN_OR_RETURN(const Dataset* d, walker.ResultOf(out->id()));
    outputs.push_back(*d);
  }
  return outputs;
}

}  // namespace rheem

#include "platforms/sparksim/sparksim_operators.h"

#include <mutex>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/operators/fusion.h"
#include "core/operators/iejoin.h"
#include "core/plan/plan.h"
#include "core/operators/kernels.h"
#include "platforms/sparksim/shuffle.h"

namespace rheem {
namespace sparksim {

// Partitions are sparksim's parallelism unit: `opts_` is forced serial at
// construction so the virtual cluster clock prices each task's true CPU
// work (and no nested pool work hides from it); only the columnar switch
// passes through from platform config.

Status RddWalker::RunOps(const std::vector<Operator*>& ops,
                         const RddBindings& external,
                         const std::unordered_set<int>& preserve) {
  const std::vector<fusion::FusionUnit> units =
      fusion::PlanFusionUnits(ops, preserve, fuse_);
  for (const fusion::FusionUnit& unit : units) {
    if (unit.fused()) {
      // A narrow record-at-a-time chain: one fused pass per partition. The
      // chain never spans a shuffle because key-based ops are not fusable.
      Operator* head = unit.ops.front();
      Operator* tail = unit.ops.back();
      if (dynamic_cast<PhysicalOperator*>(head) == nullptr ||
          head->inputs().empty()) {
        return Status::InvalidPlan("sparksim: malformed fused chain at " +
                                   head->name());
      }
      RHEEM_ASSIGN_OR_RETURN(const Rdd* in,
                             ResolveInput(*head->inputs()[0], external, *head));
      const std::vector<kernels::FusedStep> steps = fusion::StepsFor(unit.ops);
      TraceSpan chain_span("chain", "sparksim");
      chain_span.AddTag("operators", static_cast<int64_t>(unit.ops.size()));
      chain_span.AddTag("tail", tail->name());
      RHEEM_ASSIGN_OR_RETURN(
          Rdd out, MapPartitions(*in, [this, &steps](const Dataset& d, std::size_t) {
            return kernels::FusedPipeline(steps, d, opts_);
          }));
      results_[tail->id()] = std::move(out);
      if (metrics_ != nullptr) {
        metrics_->fused_operators += static_cast<int64_t>(unit.ops.size());
      }
      CountIfEnabled(
          MetricsRegistry::Global().counter("sparksim.fused_operators"),
          static_cast<int64_t>(unit.ops.size()));
      continue;
    }
    Operator* base = unit.ops.front();
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) {
      return Status::InvalidPlan("sparksim can only execute physical operators");
    }
    std::vector<const Rdd*> inputs;
    inputs.reserve(op->inputs().size());
    for (Operator* in : op->inputs()) {
      RHEEM_ASSIGN_OR_RETURN(const Rdd* r, ResolveInput(*in, external, *op));
      inputs.push_back(r);
    }
    TraceSpan op_span("chain", "sparksim");
    op_span.AddTag("operators", static_cast<int64_t>(1));
    op_span.AddTag("tail", op->name());
    RHEEM_ASSIGN_OR_RETURN(Rdd out, EvalOperator(*op, inputs));
    results_[op->id()] = std::move(out);
  }
  return Status::OK();
}

Result<const Rdd*> RddWalker::ResolveInput(const Operator& producer,
                                           const RddBindings& external,
                                           const Operator& consumer) const {
  auto it = results_.find(producer.id());
  if (it != results_.end()) return &it->second;
  auto ext = external.find(producer.id());
  if (ext == external.end()) {
    return Status::ExecutionError("sparksim: missing input #" +
                                  std::to_string(producer.id()) + " for " +
                                  consumer.name());
  }
  return ext->second;
}

Result<const Rdd*> RddWalker::ResultOf(int op_id) const {
  auto it = results_.find(op_id);
  if (it == results_.end()) {
    return Status::ExecutionError("sparksim: no result for operator #" +
                                  std::to_string(op_id));
  }
  return &it->second;
}

Result<Rdd> RddWalker::MapPartitions(
    const Rdd& in,
    const std::function<Result<Dataset>(const Dataset&, std::size_t)>& fn) {
  std::vector<Dataset> out(in.num_partitions());
  RHEEM_RETURN_IF_ERROR(scheduler_->RunTasks(
      in.num_partitions(), metrics_, [&](std::size_t i) -> Status {
        auto r = fn(in.partition(i), i);
        if (!r.ok()) return r.status();
        out[i] = std::move(r).ValueOrDie();
        return Status::OK();
      }));
  return Rdd(std::move(out));
}

Result<Rdd> RddWalker::EvalOperator(const PhysicalOperator& op,
                                    const std::vector<const Rdd*>& inputs) {
  static const Rdd* const kEmpty = new Rdd();
  const Rdd& in0 = inputs.empty() ? *kEmpty : *inputs[0];
  switch (op.kind()) {
    case OpKind::kCollectionSource:
      return Rdd::FromDataset(
          static_cast<const CollectionSourceOp&>(op).data(), num_partitions_);
    case OpKind::kStageInput:
    case OpKind::kLoopState:
    case OpKind::kLoopData:
      return Status::ExecutionError(op.kind_name() +
                                    " must be bound externally");
    case OpKind::kMap: {
      const auto& udf = static_cast<const MapOp&>(op).udf();
      return MapPartitions(in0, [this, &udf](const Dataset& d, std::size_t) {
        return kernels::Map(udf, d, opts_);
      });
    }
    case OpKind::kFlatMap: {
      const auto& udf = static_cast<const FlatMapOp&>(op).udf();
      return MapPartitions(in0, [this, &udf](const Dataset& d, std::size_t) {
        return kernels::FlatMap(udf, d, opts_);
      });
    }
    case OpKind::kFilter: {
      const auto& udf = static_cast<const FilterOp&>(op).udf();
      return MapPartitions(in0, [this, &udf](const Dataset& d, std::size_t) {
        return kernels::Filter(udf, d, opts_);
      });
    }
    case OpKind::kProject: {
      const auto& cols = static_cast<const ProjectOp&>(op).columns();
      return MapPartitions(in0, [this, &cols](const Dataset& d, std::size_t) {
        return kernels::Project(cols, d, opts_);
      });
    }
    case OpKind::kDistinct: {
      // Local distinct, shuffle duplicates together, final distinct.
      RHEEM_ASSIGN_OR_RETURN(
          Rdd local, MapPartitions(in0, [](const Dataset& d, std::size_t) {
            return kernels::Distinct(d);
          }));
      RHEEM_ASSIGN_OR_RETURN(Rdd shuffled,
                             ShuffleByRecordHash(local, num_partitions_,
                                                 scheduler_, metrics_));
      return MapPartitions(shuffled, [](const Dataset& d, std::size_t) {
        return kernels::Distinct(d);
      });
    }
    case OpKind::kSort: {
      // Gather-and-sort on the driver; the output stays a single partition
      // so downstream order-sensitive consumers see a total order.
      const auto& key = static_cast<const SortOp&>(op).key();
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      RHEEM_ASSIGN_OR_RETURN(Dataset sorted,
                             kernels::SortByKey(key, in0.Gather(), opts_));
      return Rdd::Single(std::move(sorted));
    }
    case OpKind::kSample: {
      const auto& s = static_cast<const SampleOp&>(op);
      const double fraction = s.fraction();
      const uint64_t seed = s.seed();
      // Passing each partition's global start offset makes the per-partition
      // calls keep exactly the records one whole-dataset call would keep
      // (the kernel's decision is a function of seed and global index), so
      // Sample agrees across platforms.
      std::vector<uint64_t> offsets(in0.num_partitions() + 1, 0);
      for (std::size_t i = 0; i < in0.num_partitions(); ++i) {
        offsets[i + 1] = offsets[i] + in0.partition(i).size();
      }
      return MapPartitions(in0, [this, fraction, seed, offsets](const Dataset& d,
                                                          std::size_t i) {
        return kernels::Sample(fraction, seed, d, opts_, offsets[i]);
      });
    }
    case OpKind::kZipWithId: {
      // Two phases, like Spark's zipWithIndex: size scan then offset map.
      std::vector<int64_t> offsets(in0.num_partitions() + 1, next_zip_id_);
      for (std::size_t i = 0; i < in0.num_partitions(); ++i) {
        offsets[i + 1] = offsets[i] + static_cast<int64_t>(in0.partition(i).size());
      }
      next_zip_id_ = offsets.back();
      return MapPartitions(in0, [this, &offsets](const Dataset& d, std::size_t i) {
        return kernels::ZipWithId(offsets[i], d, opts_);
      });
    }
    case OpKind::kReduceByKey: {
      const auto& r = static_cast<const ReduceByKeyOp&>(op);
      // Map-side combine before the shuffle (Spark's combiner).
      RHEEM_ASSIGN_OR_RETURN(
          Rdd combined, MapPartitions(in0, [this, &r](const Dataset& d, std::size_t) {
            return kernels::ReduceByKey(r.key(), r.reduce(), d, opts_);
          }));
      RHEEM_ASSIGN_OR_RETURN(Rdd shuffled,
                             ShuffleByKey(combined, r.key(), num_partitions_,
                                          scheduler_, metrics_));
      return MapPartitions(shuffled, [this, &r](const Dataset& d, std::size_t) {
        return kernels::ReduceByKey(r.key(), r.reduce(), d, opts_);
      });
    }
    case OpKind::kGroupByKey: {
      const auto& g = static_cast<const GroupByKeyOp&>(op);
      RHEEM_ASSIGN_OR_RETURN(Rdd shuffled,
                             ShuffleByKey(in0, g.key(), num_partitions_,
                                          scheduler_, metrics_));
      return MapPartitions(shuffled, [this, &g](const Dataset& d, std::size_t) {
        return g.algorithm() == GroupByAlgorithm::kHash
                   ? kernels::HashGroupBy(g.key(), g.group(), d, opts_)
                   : kernels::SortGroupBy(g.key(), g.group(), d,
                                          opts_);
      });
    }
    case OpKind::kGlobalReduce: {
      const auto& r = static_cast<const GlobalReduceOp&>(op);
      RHEEM_ASSIGN_OR_RETURN(
          Rdd partials, MapPartitions(in0, [this, &r](const Dataset& d, std::size_t) {
            return kernels::GlobalReduce(r.reduce(), d, opts_);
          }));
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      RHEEM_ASSIGN_OR_RETURN(Dataset final_value,
                             kernels::GlobalReduce(r.reduce(), partials.Gather(),
                                                   opts_));
      return Rdd::Single(std::move(final_value));
    }
    case OpKind::kCount: {
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      return Rdd::Single(Dataset(std::vector<Record>{
          Record({Value(static_cast<int64_t>(in0.TotalRows()))})}));
    }
    case OpKind::kBroadcastMap: {
      const auto& udf = static_cast<const BroadcastMapOp&>(op).udf();
      // Materialize the side input once (a broadcast variable).
      const Dataset broadcast = inputs[1]->Gather();
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      return MapPartitions(in0, [this, &udf, &broadcast](const Dataset& d,
                                                   std::size_t) {
        return kernels::BroadcastMap(udf, d, broadcast, opts_);
      });
    }
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(op);
      RHEEM_ASSIGN_OR_RETURN(Rdd left,
                             ShuffleByKey(in0, j.left_key(), num_partitions_,
                                          scheduler_, metrics_));
      RHEEM_ASSIGN_OR_RETURN(Rdd right,
                             ShuffleByKey(*inputs[1], j.right_key(),
                                          num_partitions_, scheduler_,
                                          metrics_));
      return MapPartitions(left, [&](const Dataset& d, std::size_t i) {
        return j.algorithm() == JoinAlgorithm::kHash
                   ? kernels::HashJoin(j.left_key(), j.right_key(), d,
                                       right.partition(i), opts_)
                   : kernels::SortMergeJoin(j.left_key(), j.right_key(), d,
                                            right.partition(i));
      });
    }
    case OpKind::kThetaJoin: {
      const auto& cond = static_cast<const ThetaJoinOp&>(op).condition();
      const Dataset broadcast = inputs[1]->Gather();  // broadcast join
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      return MapPartitions(in0, [&cond, &broadcast](const Dataset& d,
                                                    std::size_t) {
        return kernels::ThetaJoin(cond, d, broadcast);
      });
    }
    case OpKind::kIEJoin: {
      const auto& spec = static_cast<const IEJoinOp&>(op).spec();
      const Dataset broadcast = inputs[1]->Gather();
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      return MapPartitions(in0, [&spec, &broadcast](const Dataset& d,
                                                    std::size_t) {
        return kernels::IEJoin(spec, d, broadcast);
      });
    }
    case OpKind::kCrossProduct: {
      const Dataset broadcast = inputs[1]->Gather();
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      return MapPartitions(in0, [&broadcast](const Dataset& d, std::size_t) {
        return kernels::CrossProduct(d, broadcast);
      });
    }
    case OpKind::kUnion: {
      std::vector<Dataset> parts = in0.partitions();
      for (const Dataset& p : inputs[1]->partitions()) parts.push_back(p);
      return Rdd(std::move(parts));
    }
    case OpKind::kIntersect:
    case OpKind::kSubtract: {
      // Co-partition both sides by record hash, then apply per partition.
      const bool is_intersect = op.kind() == OpKind::kIntersect;
      RHEEM_ASSIGN_OR_RETURN(Rdd left,
                             ShuffleByRecordHash(in0, num_partitions_,
                                                 scheduler_, metrics_));
      RHEEM_ASSIGN_OR_RETURN(Rdd right,
                             ShuffleByRecordHash(*inputs[1], num_partitions_,
                                                 scheduler_, metrics_));
      return MapPartitions(left, [&](const Dataset& d, std::size_t i) {
        return is_intersect ? kernels::Intersect(d, right.partition(i))
                            : kernels::Subtract(d, right.partition(i));
      });
    }
    case OpKind::kTopK: {
      // Per-partition top-k, then a driver-side merge of the candidates.
      const auto& t = static_cast<const TopKOp&>(op);
      RHEEM_ASSIGN_OR_RETURN(
          Rdd local, MapPartitions(in0, [&t](const Dataset& d, std::size_t) {
            return kernels::TopK(t.key(), t.k(), t.ascending(), d);
          }));
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      RHEEM_ASSIGN_OR_RETURN(
          Dataset merged,
          kernels::TopK(t.key(), t.k(), t.ascending(), local.Gather()));
      return Rdd::Single(std::move(merged));
    }
    case OpKind::kRepeat:
    case OpKind::kDoWhile:
      return EvalLoop(op, in0, *inputs[1]);
    case OpKind::kCollect:
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      return Rdd::Single(in0.Gather());
  }
  return Status::Unsupported("sparksim cannot execute " + op.kind_name());
}

Result<Rdd> RddWalker::EvalLoop(const PhysicalOperator& op, const Rdd& state0,
                                const Rdd& data) {
  const Plan* body = nullptr;
  int iterations = 0;
  const LoopConditionUdf* condition = nullptr;
  if (op.kind() == OpKind::kRepeat) {
    const auto& rep = static_cast<const RepeatOp&>(op);
    body = &rep.body();
    iterations = rep.num_iterations();
  } else {
    const auto& dw = static_cast<const DoWhileOp&>(op);
    body = &dw.body();
    iterations = dw.max_iterations();
    condition = &dw.condition();
  }
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> body_topo,
                         body->TopologicalOrder());
  const Operator* state_marker = nullptr;
  const Operator* data_marker = nullptr;
  std::vector<Operator*> body_ops;
  for (Operator* o : body_topo) {
    auto* p = dynamic_cast<PhysicalOperator*>(o);
    if (p != nullptr && p->kind() == OpKind::kLoopState) {
      state_marker = p;
      continue;
    }
    if (p != nullptr && p->kind() == OpKind::kLoopData) {
      data_marker = p;
      continue;
    }
    body_ops.push_back(o);
  }

  Rdd state = state0;
  for (int iter = 0; iter < iterations; ++iter) {
    if (condition != nullptr && condition->fn) {
      // The driver inspects the state: a collect per check.
      metrics_->sim_overhead_micros +=
          static_cast<int64_t>(scheduler_->overhead().collect_fixed_us);
      if (!condition->fn(state.Gather(), iter)) break;
    }
    // Every iteration is a fresh job submission on a cluster — the key cost
    // of iterative workloads on this platform (paper Figure 2).
    metrics_->jobs_run += 1;
    metrics_->sim_overhead_micros +=
        static_cast<int64_t>(scheduler_->overhead().job_submit_us +
                             scheduler_->overhead().stage_us);
    RddBindings bindings;
    if (state_marker != nullptr) bindings[state_marker->id()] = &state;
    if (data_marker != nullptr) bindings[data_marker->id()] = &data;
    RddWalker body_walker(num_partitions_, scheduler_, metrics_, fuse_);
    body_walker.next_zip_id_ = next_zip_id_;
    // The loop sink feeds the next iteration: it must stay addressable.
    std::unordered_set<int> body_preserve;
    if (body->sink() != nullptr) body_preserve.insert(body->sink()->id());
    RHEEM_RETURN_IF_ERROR(body_walker.RunOps(body_ops, bindings, body_preserve));
    next_zip_id_ = body_walker.next_zip_id_;
    // The body may return a marker directly (degenerate bodies).
    if (body->sink() == state_marker) continue;
    if (body->sink() == data_marker) {
      state = data;
      continue;
    }
    RHEEM_ASSIGN_OR_RETURN(const Rdd* next,
                           body_walker.ResultOf(body->sink()->id()));
    state = *next;
  }
  return state;
}

}  // namespace sparksim
}  // namespace rheem

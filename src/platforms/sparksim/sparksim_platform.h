#ifndef RHEEM_PLATFORMS_SPARKSIM_SPARKSIM_PLATFORM_H_
#define RHEEM_PLATFORMS_SPARKSIM_SPARKSIM_PLATFORM_H_

#include <memory>

#include "common/config.h"
#include "common/thread_pool.h"
#include "core/mapping/platform.h"
#include "platforms/sparksim/overhead.h"

namespace rheem {

/// \brief The cluster-style platform of the paper's Figure 2: partitioned
/// datasets, task-parallel narrow transforms on worker slots, real hash
/// shuffles at key boundaries, broadcast side inputs, and fixed per-job /
/// per-stage / per-task scheduling overheads charged as simulated time.
///
/// Strengths: large inputs, where the slots' parallel throughput dominates.
/// Weakness: fixed overheads swamp small and iterative jobs — a plain
/// in-process program beats it by an order of magnitude there, which is
/// exactly the behaviour Figure 2 reports for SVM on small LIBSVM datasets.
///
/// Config keys:
///   sparksim.slots           (int, default 8)  worker threads ("executors")
///   sparksim.partitions      (int, default = slots)
///   sparksim.per_quantum_us  (double, default 0.03)
///   sparksim.task_retries    (int, default 3) per-task retry budget
///   sparksim.job_submit_us / stage_us / task_us / shuffle_fixed_us /
///   collect_fixed_us         (see SparkOverheadModel)
///   kernels.fuse             (bool, default true) fuse narrow chains into
///                            one pass per partition
///   kernels.fusion_discount  (double, default 0.75) modeled per-tuple
///                            discount for fusable ops when kernels.fuse is on
class SparkSimPlatform : public Platform {
 public:
  static constexpr const char* kName = "sparksim";

  explicit SparkSimPlatform(const Config& config = Config());

  const PlatformCostModel& cost_model() const override { return cost_model_; }

  Result<std::vector<Dataset>> ExecuteStage(const Stage& stage,
                                            const BoundaryMap& boundary_inputs,
                                            ExecutionMetrics* metrics) override;

  std::size_t num_partitions() const { return num_partitions_; }

 private:
  sparksim::SparkOverheadModel overhead_;
  std::unique_ptr<ThreadPool> pool_;
  std::size_t num_partitions_;
  int task_retries_;
  bool fuse_ = true;
  bool columnar_ = true;
  BasicCostModel cost_model_;
};

}  // namespace rheem

#endif  // RHEEM_PLATFORMS_SPARKSIM_SPARKSIM_PLATFORM_H_

#include "platforms/sparksim/overhead.h"

namespace rheem {
namespace sparksim {

SparkOverheadModel SparkOverheadModel::FromConfig(const Config& config) {
  SparkOverheadModel m;
  m.job_submit_us =
      config.GetDouble("sparksim.job_submit_us", m.job_submit_us).ValueOr(m.job_submit_us);
  m.stage_us = config.GetDouble("sparksim.stage_us", m.stage_us).ValueOr(m.stage_us);
  m.task_us = config.GetDouble("sparksim.task_us", m.task_us).ValueOr(m.task_us);
  m.shuffle_fixed_us = config.GetDouble("sparksim.shuffle_fixed_us", m.shuffle_fixed_us)
                           .ValueOr(m.shuffle_fixed_us);
  m.collect_fixed_us = config.GetDouble("sparksim.collect_fixed_us", m.collect_fixed_us)
                           .ValueOr(m.collect_fixed_us);
  return m;
}

}  // namespace sparksim
}  // namespace rheem

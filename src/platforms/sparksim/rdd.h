#ifndef RHEEM_PLATFORMS_SPARKSIM_RDD_H_
#define RHEEM_PLATFORMS_SPARKSIM_RDD_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace rheem {
namespace sparksim {

/// \brief Partitioned dataset: the sparksim platform's native representation
/// (the analogue of a Spark RDD). Each partition is processed by one task.
class Rdd {
 public:
  Rdd() = default;
  explicit Rdd(std::vector<Dataset> partitions)
      : partitions_(std::move(partitions)) {}

  /// Splits `data` into `num_partitions` near-equal contiguous partitions.
  static Rdd FromDataset(const Dataset& data, std::size_t num_partitions);

  /// Single-partition RDD (used for small states and sorted outputs).
  static Rdd Single(Dataset data);

  std::size_t num_partitions() const { return partitions_.size(); }
  const Dataset& partition(std::size_t i) const { return partitions_[i]; }
  Dataset& mutable_partition(std::size_t i) { return partitions_[i]; }
  const std::vector<Dataset>& partitions() const { return partitions_; }

  std::size_t TotalRows() const;

  /// Concatenates all partitions in order (a driver-side collect).
  Dataset Gather() const;

 private:
  std::vector<Dataset> partitions_;
};

}  // namespace sparksim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_SPARKSIM_RDD_H_

#ifndef RHEEM_PLATFORMS_SPARKSIM_SPARKSIM_OPERATORS_H_
#define RHEEM_PLATFORMS_SPARKSIM_SPARKSIM_OPERATORS_H_

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/mapping/platform.h"
#include "core/operators/kernels.h"
#include "core/operators/physical_ops.h"
#include "platforms/sparksim/rdd.h"
#include "platforms/sparksim/scheduler.h"

namespace rheem {
namespace sparksim {

/// External inputs to a walker run: producer op id -> partitioned data.
using RddBindings = std::unordered_map<int, const Rdd*>;

/// \brief Execution-operator layer of sparksim: evaluates physical operators
/// over partitioned Rdds with task-parallel narrow transformations, real
/// hash shuffles at key boundaries, broadcast side inputs, and per-iteration
/// job submission charges for loops — the "Spark job" side of Figure 2.
///
/// Parallelism comes from one task per partition on the slot pool; kernels
/// inside a task run serially so the virtual cluster clock prices each
/// task's true CPU work. With `fuse` enabled, consecutive narrow
/// record-at-a-time operators (Map/Filter/FlatMap/Project) execute as one
/// fused pass per partition — shuffle boundaries are never crossed because
/// key-based operators are not fusable.
class RddWalker {
 public:
  /// `task_opts` governs the kernels invoked inside scheduler tasks. It must
  /// stay serial (partitions are the parallelism unit; nested pool work would
  /// hide from the virtual cluster clock) but may enable the columnar batch
  /// path, which speeds a task up without adding threads.
  RddWalker(std::size_t num_partitions, TaskScheduler* scheduler,
            ExecutionMetrics* metrics, bool fuse = false,
            kernels::KernelOptions task_opts = kernels::KernelOptions::Serial())
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions),
        scheduler_(scheduler), metrics_(metrics), fuse_(fuse),
        opts_(task_opts) {
    opts_.parallel = false;  // enforced: tasks never nest a pool
    opts_.pool = nullptr;
  }

  /// Operators whose ids appear in `preserve` keep an addressable Rdd
  /// result (stage outputs, loop sinks) and are never fused away.
  Status RunOps(const std::vector<Operator*>& ops, const RddBindings& external,
                const std::unordered_set<int>& preserve = {});

  Result<const Rdd*> ResultOf(int op_id) const;

 private:
  Result<const Rdd*> ResolveInput(const Operator& producer,
                                  const RddBindings& external,
                                  const Operator& consumer) const;

  Result<Rdd> EvalOperator(const PhysicalOperator& op,
                           const std::vector<const Rdd*>& inputs);
  Result<Rdd> EvalLoop(const PhysicalOperator& op, const Rdd& state0,
                       const Rdd& data);

  /// Applies a per-partition kernel as one task per partition.
  Result<Rdd> MapPartitions(
      const Rdd& in,
      const std::function<Result<Dataset>(const Dataset&, std::size_t)>& fn);

  std::size_t num_partitions_;
  TaskScheduler* scheduler_;
  ExecutionMetrics* metrics_;
  bool fuse_ = false;
  kernels::KernelOptions opts_ = kernels::KernelOptions::Serial();
  std::map<int, Rdd> results_;
  int64_t next_zip_id_ = 0;
};

}  // namespace sparksim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_SPARKSIM_SPARKSIM_OPERATORS_H_

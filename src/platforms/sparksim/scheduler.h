#ifndef RHEEM_PLATFORMS_SPARKSIM_SCHEDULER_H_
#define RHEEM_PLATFORMS_SPARKSIM_SCHEDULER_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/mapping/platform.h"
#include "platforms/sparksim/overhead.h"

namespace rheem {
namespace sparksim {

/// \brief Runs per-partition tasks on the platform's worker slots and charges
/// the per-task launch overhead — sparksim's DAG-scheduler stand-in.
///
/// Virtual cluster clock: the host machine may have fewer cores than the
/// simulated cluster has slots (including the degenerate single-core case),
/// in which case the threads serialize and measured wall time overstates the
/// cluster's latency. RunTasks therefore times every task, computes the
/// latency an `slots()`-wide cluster would have achieved
/// (max(sum/slots, longest task)), and charges the *difference* to the
/// simulated clock — near zero on a host with >= slots free cores, negative
/// when the host serializes. ExecutionMetrics::TotalMicros (wall + simulated)
/// thus reports the modeled cluster latency on any host, which is what the
/// Figure 2 reproduction compares. DESIGN.md §3 documents this substitution.
class TaskScheduler {
 public:
  /// `task_retries`: how many times a failed task is re-attempted before the
  /// batch reports failure (Spark's spark.task.maxFailures analogue;
  /// default 3 retries = 4 attempts).
  TaskScheduler(ThreadPool* pool, SparkOverheadModel overhead,
                int task_retries = 3)
      : pool_(pool), overhead_(overhead), task_retries_(task_retries) {}

  const SparkOverheadModel& overhead() const { return overhead_; }
  std::size_t slots() const { return pool_->num_threads(); }
  int task_retries() const { return task_retries_; }

  /// Executes fn(0..n-1) as `n` parallel tasks; blocks until all complete.
  /// Failed tasks are retried up to task_retries() times (each retry charges
  /// another task launch). Charges n x task_us of simulated launch overhead
  /// plus the virtual cluster clock correction to `metrics` and returns the
  /// first task error (deterministically: the lowest index).
  Status RunTasks(std::size_t n, ExecutionMetrics* metrics,
                  const std::function<Status(std::size_t)>& fn);

 private:
  ThreadPool* pool_;
  SparkOverheadModel overhead_;
  int task_retries_;
};

}  // namespace sparksim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_SPARKSIM_SCHEDULER_H_

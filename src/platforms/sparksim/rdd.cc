#include "platforms/sparksim/rdd.h"

namespace rheem {
namespace sparksim {

Rdd Rdd::FromDataset(const Dataset& data, std::size_t num_partitions) {
  return Rdd(data.SplitInto(num_partitions == 0 ? 1 : num_partitions));
}

Rdd Rdd::Single(Dataset data) {
  std::vector<Dataset> parts;
  parts.push_back(std::move(data));
  return Rdd(std::move(parts));
}

std::size_t Rdd::TotalRows() const {
  std::size_t n = 0;
  for (const auto& p : partitions_) n += p.size();
  return n;
}

Dataset Rdd::Gather() const {
  Dataset out;
  for (const auto& p : partitions_) out.AppendAll(p);
  return out;
}

}  // namespace sparksim
}  // namespace rheem

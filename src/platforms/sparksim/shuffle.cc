#include "platforms/sparksim/shuffle.h"

#include <atomic>

#include "data/serialization.h"

namespace rheem {
namespace sparksim {

namespace {

using BucketFn = std::function<std::size_t(const Record&)>;

Result<Rdd> ShuffleImpl(const Rdd& in, std::size_t out_partitions,
                        TaskScheduler* scheduler, ExecutionMetrics* metrics,
                        const BucketFn& bucket_of) {
  if (out_partitions == 0) out_partitions = 1;
  metrics->sim_overhead_micros +=
      static_cast<int64_t>(scheduler->overhead().shuffle_fixed_us);

  const std::size_t nin = in.num_partitions();
  // blocks[input partition][output partition] = encoded bucket.
  std::vector<std::vector<std::string>> blocks(
      nin, std::vector<std::string>(out_partitions));
  std::atomic<int64_t> bytes{0};

  // Map side: bucket + encode.
  RHEEM_RETURN_IF_ERROR(scheduler->RunTasks(
      nin, metrics, [&](std::size_t pi) -> Status {
        for (const Record& r : in.partition(pi).records()) {
          const std::size_t target = bucket_of(r) % out_partitions;
          Serializer::EncodeRecord(r, &blocks[pi][target]);
        }
        for (const std::string& b : blocks[pi]) {
          bytes.fetch_add(static_cast<int64_t>(b.size()));
        }
        return Status::OK();
      }));

  // Reduce side: decode this partition's incoming blocks.
  std::vector<Dataset> out(out_partitions);
  RHEEM_RETURN_IF_ERROR(scheduler->RunTasks(
      out_partitions, metrics, [&](std::size_t po) -> Status {
        std::vector<Record> records;
        for (std::size_t pi = 0; pi < nin; ++pi) {
          const std::string& block = blocks[pi][po];
          std::size_t offset = 0;
          while (offset < block.size()) {
            auto rec = Serializer::DecodeRecord(block, &offset);
            if (!rec.ok()) {
              return rec.status().WithContext("shuffle decode");
            }
            records.push_back(std::move(rec).ValueOrDie());
          }
        }
        out[po] = Dataset(std::move(records));
        return Status::OK();
      }));

  metrics->shuffle_bytes += bytes.load();
  return Rdd(std::move(out));
}

}  // namespace

Result<Rdd> ShuffleByKey(const Rdd& in, const KeyUdf& key,
                         std::size_t out_partitions, TaskScheduler* scheduler,
                         ExecutionMetrics* metrics) {
  if (!key.fn) return Status::InvalidArgument("shuffle key UDF is empty");
  return ShuffleImpl(in, out_partitions, scheduler, metrics,
                     [&key](const Record& r) { return key.fn(r).Hash(); });
}

Result<Rdd> ShuffleByRecordHash(const Rdd& in, std::size_t out_partitions,
                                TaskScheduler* scheduler,
                                ExecutionMetrics* metrics) {
  return ShuffleImpl(in, out_partitions, scheduler, metrics,
                     [](const Record& r) { return r.Hash(); });
}

}  // namespace sparksim
}  // namespace rheem

#ifndef RHEEM_PLATFORMS_SPARKSIM_SHUFFLE_H_
#define RHEEM_PLATFORMS_SPARKSIM_SHUFFLE_H_

#include "common/result.h"
#include "core/operators/descriptors.h"
#include "platforms/sparksim/rdd.h"
#include "platforms/sparksim/scheduler.h"

namespace rheem {
namespace sparksim {

/// \brief Hash shuffle: redistributes every record to the partition selected
/// by its key hash, moving the bytes through the real serializer.
///
/// The map side encodes each outgoing bucket (parallel tasks, one per input
/// partition); the reduce side decodes its incoming buckets (parallel tasks,
/// one per output partition). Shuffled byte counts land in
/// ExecutionMetrics::shuffle_bytes, and the serialization work is genuine
/// wall time — sparksim's shuffles cost what they claim to cost.
Result<Rdd> ShuffleByKey(const Rdd& in, const KeyUdf& key,
                         std::size_t out_partitions, TaskScheduler* scheduler,
                         ExecutionMetrics* metrics);

/// Shuffle keyed by the whole record's hash (used by Distinct).
Result<Rdd> ShuffleByRecordHash(const Rdd& in, std::size_t out_partitions,
                                TaskScheduler* scheduler,
                                ExecutionMetrics* metrics);

}  // namespace sparksim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_SPARKSIM_SHUFFLE_H_

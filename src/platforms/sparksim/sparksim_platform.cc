#include "platforms/sparksim/sparksim_platform.h"

#include <unordered_set>

#include "core/optimizer/stage_splitter.h"
#include "platforms/sparksim/rdd.h"
#include "platforms/sparksim/scheduler.h"
#include "platforms/sparksim/sparksim_operators.h"

namespace rheem {

namespace {

BasicCostModel::Params SparkParams(const Config& config,
                                   const sparksim::SparkOverheadModel& overhead,
                                   std::size_t slots) {
  BasicCostModel::Params p;
  p.per_quantum_micros =
      config.GetDouble("sparksim.per_quantum_us", 0.03).ValueOr(0.03);
  p.parallelism = static_cast<double>(slots);
  p.stage_overhead_micros = overhead.stage_us + overhead.job_submit_us;
  p.job_overhead_micros = overhead.job_submit_us + overhead.stage_us;
  p.boundary_micros_per_byte = 0.0008;  // leaves/enters the "cluster"
  p.boundary_fixed_micros = overhead.collect_fixed_us;
  // Estimated per-quantum shuffle toll (ser+deser+hash).
  p.shuffle_micros_per_quantum = 0.05;
  // Narrow record-at-a-time chains fuse into one pass per partition.
  const bool fuse = config.GetBool("kernels.fuse", true).ValueOr(true);
  p.fusion_discount =
      fuse ? config.GetDouble("kernels.fusion_discount", 0.75).ValueOr(0.75)
           : 1.0;
  return p;
}

MappingTable SparkMappings() {
  MappingTable t;
  auto add = [&t](OpKind kind, const char* exec, double weight = 1.0,
                  const char* context = "") {
    t.Add(OperatorMapping{kind, "", exec, weight, context});
  };
  add(OpKind::kCollectionSource, "SparkParallelize");
  add(OpKind::kMap, "SparkMapPartitions");
  add(OpKind::kFlatMap, "SparkFlatMap");
  add(OpKind::kFilter, "SparkFilter");
  add(OpKind::kProject, "SparkProject");
  add(OpKind::kDistinct, "SparkDistinct", 1.0, "local distinct + shuffle");
  add(OpKind::kSort, "SparkCollectSort", 1.2, "driver-side sort");
  add(OpKind::kSample, "SparkBernoulliSample");
  add(OpKind::kZipWithId, "SparkZipWithIndex");
  add(OpKind::kReduceByKey, "SparkReduceByKey", 1.0, "map-side combine");
  t.Add(OperatorMapping{OpKind::kGroupByKey, "HashGroupBy",
                        "SparkGroupByKey+Hash", 1.0, "shuffle + hash groups"});
  t.Add(OperatorMapping{OpKind::kGroupByKey, "SortGroupBy",
                        "SparkGroupByKey+Sort", 1.0, "shuffle + sorted runs"});
  add(OpKind::kGlobalReduce, "SparkTreeReduce");
  add(OpKind::kCount, "SparkCount");
  add(OpKind::kBroadcastMap, "SparkMapWithBroadcast", 1.0,
      "broadcast variable");
  t.Add(OperatorMapping{OpKind::kJoin, "HashJoin", "SparkShuffledHashJoin",
                        1.0, ""});
  t.Add(OperatorMapping{OpKind::kJoin, "SortMergeJoin",
                        "SparkSortMergeJoin", 1.0, ""});
  add(OpKind::kThetaJoin, "SparkBroadcastNestedLoopJoin");
  add(OpKind::kIEJoin, "SparkIEJoin", 1.0,
      "broadcast right side, per-partition bit-array join");
  add(OpKind::kCrossProduct, "SparkCartesian");
  add(OpKind::kUnion, "SparkUnion");
  add(OpKind::kIntersect, "SparkIntersection", 1.0, "co-partitioned shuffle");
  add(OpKind::kSubtract, "SparkSubtract", 1.0, "co-partitioned shuffle");
  add(OpKind::kTopK, "SparkTakeOrdered", 1.0, "partition top-k + driver merge");
  add(OpKind::kRepeat, "SparkIterativeDriver", 1.0,
      "one job submission per iteration");
  add(OpKind::kDoWhile, "SparkIterativeDriverConditional");
  add(OpKind::kCollect, "SparkCollect");
  return t;
}

}  // namespace

SparkSimPlatform::SparkSimPlatform(const Config& config)
    : Platform(kName),
      overhead_(sparksim::SparkOverheadModel::FromConfig(config)),
      pool_(std::make_unique<ThreadPool>(static_cast<std::size_t>(
          config.GetInt("sparksim.slots", 8).ValueOr(8)))),
      num_partitions_(static_cast<std::size_t>(
          config.GetInt("sparksim.partitions",
                        config.GetInt("sparksim.slots", 8).ValueOr(8))
              .ValueOr(8))),
      task_retries_(static_cast<int>(
          config.GetInt("sparksim.task_retries", 3).ValueOr(3))),
      fuse_(config.GetBool("kernels.fuse", true).ValueOr(true)),
      columnar_(config.GetBool("kernels.columnar", true).ValueOr(true)),
      cost_model_(SparkParams(config, overhead_, pool_->num_threads())) {
  mappings_ = SparkMappings();
}

Result<std::vector<Dataset>> SparkSimPlatform::ExecuteStage(
    const Stage& stage, const BoundaryMap& boundary_inputs,
    ExecutionMetrics* metrics) {
  // Each task atom is an independent submission against the cluster.
  metrics->jobs_run += 1;
  metrics->sim_overhead_micros +=
      static_cast<int64_t>(overhead_.job_submit_us + overhead_.stage_us);

  sparksim::TaskScheduler scheduler(pool_.get(), overhead_, task_retries_);
  kernels::KernelOptions task_opts = kernels::KernelOptions::Serial();
  task_opts.columnar = columnar_;
  sparksim::RddWalker walker(num_partitions_, &scheduler, metrics, fuse_,
                             task_opts);

  // Parallelize incoming boundary datasets.
  std::vector<std::unique_ptr<sparksim::Rdd>> bound;
  sparksim::RddBindings bindings;
  bound.reserve(boundary_inputs.size());
  for (const auto& [op_id, dataset] : boundary_inputs) {
    bound.push_back(std::make_unique<sparksim::Rdd>(
        sparksim::Rdd::FromDataset(*dataset, num_partitions_)));
    bindings[op_id] = bound.back().get();
  }

  // Stage outputs are gathered below: never fuse them away.
  std::unordered_set<int> preserve;
  for (const Operator* out : stage.outputs()) preserve.insert(out->id());
  RHEEM_RETURN_IF_ERROR(walker.RunOps(stage.ops(), bindings, preserve));

  std::vector<Dataset> outputs;
  outputs.reserve(stage.outputs().size());
  for (const Operator* out : stage.outputs()) {
    RHEEM_ASSIGN_OR_RETURN(const sparksim::Rdd* rdd, walker.ResultOf(out->id()));
    metrics->sim_overhead_micros +=
        static_cast<int64_t>(overhead_.collect_fixed_us);
    outputs.push_back(rdd->Gather());
  }
  return outputs;
}

}  // namespace rheem

#ifndef RHEEM_PLATFORMS_SPARKSIM_OVERHEAD_H_
#define RHEEM_PLATFORMS_SPARKSIM_OVERHEAD_H_

#include "common/config.h"

namespace rheem {
namespace sparksim {

/// \brief The cluster-overhead constants that make sparksim behave like a
/// distributed engine rather than a thread pool.
///
/// The paper's Figure 2 hinges on exactly these terms: a Spark job pays a
/// fixed submission+scheduling price per job and per task, so iterative
/// algorithms on small data are overhead-dominated, while large inputs
/// amortize the overheads and benefit from the parallel slots.
///
/// Overheads are charged to ExecutionMetrics::sim_overhead_micros as
/// *simulated* time (no sleeping), keeping benchmarks fast and deterministic
/// while the compute time stays real. Defaults are scaled-down Spark
/// constants (roughly 1:40 vs. a real cluster's ~200ms job latency) so the
/// crossover happens at laptop-sized datasets; they are config knobs, and
/// EXPERIMENTS.md documents the scaling.
struct SparkOverheadModel {
  double job_submit_us = 5000.0;     // per job submission (per loop iteration)
  double stage_us = 1000.0;          // per stage scheduling
  double task_us = 150.0;            // per task launch
  double shuffle_fixed_us = 800.0;   // per shuffle barrier
  double collect_fixed_us = 300.0;   // per driver-side collect

  /// Reads sparksim.job_submit_us / stage_us / task_us / shuffle_fixed_us /
  /// collect_fixed_us, falling back to the defaults above.
  static SparkOverheadModel FromConfig(const Config& config);
};

}  // namespace sparksim
}  // namespace rheem

#endif  // RHEEM_PLATFORMS_SPARKSIM_OVERHEAD_H_

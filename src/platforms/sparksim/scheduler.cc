#include "platforms/sparksim/scheduler.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace rheem {
namespace sparksim {

Status TaskScheduler::RunTasks(std::size_t n, ExecutionMetrics* metrics,
                               const std::function<Status(std::size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (metrics != nullptr) {
    metrics->tasks_launched += static_cast<int64_t>(n);
    metrics->sim_overhead_micros +=
        static_cast<int64_t>(overhead_.task_us * static_cast<double>(n));
  }
  CountIfEnabled(MetricsRegistry::Global().counter("sparksim.tasks_launched"),
                 static_cast<int64_t>(n));
  std::vector<Status> statuses(n);
  std::vector<int64_t> task_micros(n, 0);
  std::atomic<int64_t> retries{0};
  const int max_attempts = std::max(1, task_retries_ + 1);
  // Pool workers have no span open, so the batch's parent is captured here on
  // the scheduling thread and handed to every task span explicitly.
  const uint64_t parent_span = Tracer::CurrentSpanId();
  Stopwatch batch;
  pool_->ParallelFor(n, [&](std::size_t i) {
    // Thread-CPU time: interleaving with other tasks on an oversubscribed
    // host must not inflate a task's measured work.
    ThreadCpuTimer cpu;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      TraceSpan task_span("task", "sparksim", parent_span);
      task_span.AddTag("partition", static_cast<int64_t>(i));
      if (attempt > 0) task_span.AddTag("attempt", attempt);
      // An injected task-start fault is a lost executor slot: the task
      // fails this attempt and competes for the per-task retry budget.
      Status injected = FaultInjector::Global().Hit(
          "pool.task_start", "partition=" + std::to_string(i) +
                                 ",attempt=" + std::to_string(attempt));
      if (!injected.ok()) task_span.AddTag("fault", "injected");
      statuses[i] = injected.ok() ? fn(i) : injected;
      if (statuses[i].ok()) break;
      if (attempt + 1 < max_attempts) retries.fetch_add(1);
    }
    task_micros[i] = cpu.ElapsedMicros();
  });
  if (retries.load() > 0) {
    CountIfEnabled(MetricsRegistry::Global().counter("sparksim.task_retries"),
                   retries.load());
  }
  if (metrics != nullptr && retries.load() > 0) {
    // Every retry is another task launch on the cluster.
    metrics->retries += retries.load();
    metrics->tasks_launched += retries.load();
    metrics->sim_overhead_micros +=
        static_cast<int64_t>(overhead_.task_us * static_cast<double>(retries.load()));
  }
  if (metrics != nullptr) {
    // Virtual cluster clock (see header): replace the measured batch wall
    // time with the latency a `slots()`-wide cluster would achieve.
    const int64_t batch_wall = batch.ElapsedMicros();
    int64_t total = 0;
    int64_t longest = 0;
    for (int64_t t : task_micros) {
      total += t;
      longest = std::max(longest, t);
    }
    const int64_t modeled = std::max(
        longest, total / static_cast<int64_t>(std::max<std::size_t>(1, slots())));
    metrics->sim_overhead_micros += modeled - batch_wall;
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace sparksim
}  // namespace rheem

#include "data/serialization.h"

#include <cstring>

namespace rheem {

namespace {

template <typename T>
void PutRaw(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetRaw(const std::string& buf, std::size_t* offset, T* v) {
  if (*offset + sizeof(T) > buf.size()) return false;
  std::memcpy(v, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

void Serializer::EncodeRecord(const Record& r, std::string* out) {
  PutRaw<uint32_t>(static_cast<uint32_t>(r.size()), out);
  for (const auto& v : r.fields()) {
    PutRaw<uint8_t>(static_cast<uint8_t>(v.type()), out);
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        PutRaw<uint8_t>(v.bool_unchecked() ? 1 : 0, out);
        break;
      case ValueType::kInt64:
        PutRaw<int64_t>(v.int64_unchecked(), out);
        break;
      case ValueType::kDouble:
        PutRaw<double>(v.double_unchecked(), out);
        break;
      case ValueType::kString: {
        const std::string& s = v.string_unchecked();
        PutRaw<uint32_t>(static_cast<uint32_t>(s.size()), out);
        out->append(s);
        break;
      }
      case ValueType::kDoubleList: {
        const auto& xs = v.double_list_unchecked();
        PutRaw<uint32_t>(static_cast<uint32_t>(xs.size()), out);
        for (double d : xs) PutRaw<double>(d, out);
        break;
      }
    }
  }
}

Result<Record> Serializer::DecodeRecord(const std::string& buf,
                                        std::size_t* offset) {
  uint32_t nfields = 0;
  if (!GetRaw(buf, offset, &nfields)) {
    return Status::IoError("truncated record header");
  }
  // The count is untrusted input: every field costs at least its one-byte
  // type tag, so a count larger than the remaining bytes cannot possibly be
  // encoded — reject it *before* reserving, or a 12-byte frame could demand
  // a multi-GB allocation.
  if (nfields > buf.size() - *offset) {
    return Status::IoError("field count " + std::to_string(nfields) +
                           " exceeds remaining " +
                           std::to_string(buf.size() - *offset) + " bytes");
  }
  std::vector<Value> fields;
  fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    uint8_t tag = 0;
    if (!GetRaw(buf, offset, &tag)) return Status::IoError("truncated type tag");
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        fields.emplace_back();
        break;
      case ValueType::kBool: {
        uint8_t b = 0;
        if (!GetRaw(buf, offset, &b)) return Status::IoError("truncated bool");
        fields.emplace_back(b != 0);
        break;
      }
      case ValueType::kInt64: {
        int64_t v = 0;
        if (!GetRaw(buf, offset, &v)) return Status::IoError("truncated int64");
        fields.emplace_back(v);
        break;
      }
      case ValueType::kDouble: {
        double v = 0;
        if (!GetRaw(buf, offset, &v)) return Status::IoError("truncated double");
        fields.emplace_back(v);
        break;
      }
      case ValueType::kString: {
        uint32_t len = 0;
        if (!GetRaw(buf, offset, &len)) {
          return Status::IoError("truncated string length");
        }
        if (*offset + len > buf.size()) {
          return Status::IoError("truncated string payload");
        }
        fields.emplace_back(std::string(buf.data() + *offset, len));
        *offset += len;
        break;
      }
      case ValueType::kDoubleList: {
        uint32_t n = 0;
        if (!GetRaw(buf, offset, &n)) {
          return Status::IoError("truncated list length");
        }
        // Untrusted length: each element is 8 bytes, so bound the
        // allocation by what the buffer can still hold.
        if (n > (buf.size() - *offset) / sizeof(double)) {
          return Status::IoError("truncated list payload");
        }
        std::vector<double> xs(n);
        for (uint32_t k = 0; k < n; ++k) {
          if (!GetRaw(buf, offset, &xs[k])) {
            return Status::IoError("truncated list payload");
          }
        }
        fields.emplace_back(std::move(xs));
        break;
      }
      default:
        return Status::IoError("unknown value type tag " + std::to_string(tag));
    }
  }
  return Record(std::move(fields));
}

std::string Serializer::EncodeDataset(const Dataset& ds) {
  std::string out;
  out.reserve(static_cast<std::size_t>(EncodedSize(ds)));
  PutRaw<uint64_t>(ds.size(), &out);
  for (const auto& r : ds.records()) EncodeRecord(r, &out);
  return out;
}

Result<Dataset> Serializer::DecodeDataset(const std::string& buf) {
  std::size_t offset = 0;
  uint64_t rows = 0;
  if (!GetRaw(buf, &offset, &rows)) {
    return Status::IoError("truncated dataset header");
  }
  // Untrusted row count: every record costs at least its 4-byte field-count
  // header, so more rows than remaining/4 cannot be encoded. Checked before
  // reserve() so a tiny malicious frame cannot demand a huge allocation.
  if (rows > (buf.size() - offset) / sizeof(uint32_t)) {
    return Status::IoError("row count " + std::to_string(rows) +
                           " exceeds remaining " +
                           std::to_string(buf.size() - offset) + " bytes");
  }
  std::vector<Record> records;
  records.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    auto rec = DecodeRecord(buf, &offset);
    if (!rec.ok()) {
      return rec.status().WithContext("record " + std::to_string(i));
    }
    records.push_back(std::move(rec).ValueOrDie());
  }
  // A dataset frame is self-delimiting: bytes past the declared rows mean a
  // torn or concatenated frame, and silently dropping them would truncate
  // data. Surface the error instead.
  if (offset != buf.size()) {
    return Status::IoError("dataset frame has " +
                           std::to_string(buf.size() - offset) +
                           " trailing bytes after " + std::to_string(rows) +
                           " declared rows");
  }
  return Dataset(std::move(records));
}

int64_t Serializer::EncodedSize(const Record& r) {
  int64_t total = 4;
  for (const auto& v : r.fields()) {
    total += 1;
    switch (v.type()) {
      case ValueType::kNull: break;
      case ValueType::kBool: total += 1; break;
      case ValueType::kInt64: total += 8; break;
      case ValueType::kDouble: total += 8; break;
      case ValueType::kString:
        total += 4 + static_cast<int64_t>(v.string_unchecked().size());
        break;
      case ValueType::kDoubleList:
        total += 4 + static_cast<int64_t>(v.double_list_unchecked().size()) * 8;
        break;
    }
  }
  return total;
}

int64_t Serializer::EncodedSize(const Dataset& ds) {
  int64_t total = 8;
  for (const auto& r : ds.records()) total += EncodedSize(r);
  return total;
}

}  // namespace rheem

#ifndef RHEEM_DATA_SERIALIZATION_H_
#define RHEEM_DATA_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/record.h"

namespace rheem {

/// \brief Binary codec for Records and Datasets.
///
/// Two roles in the reproduction:
///  1. Real persistence for the storage backends and the stream channel.
///  2. Measured proxy for the (de)serialization work a real cross-platform
///     deployment pays at platform boundaries and shuffles — the executor
///     genuinely encodes/decodes bytes when a plan crosses platforms, so
///     movement costs in benchmarks are earned, not faked.
///
/// Wire format (little-endian):
///   record  := u32 field_count, field*
///   field   := u8 type_tag, payload
///   payload := bool->u8 | int64->i64 | double->f64
///              | string->u32 len + bytes | double_list->u32 n + f64*n
///
/// The decoders treat their input as *untrusted* (the network service feeds
/// them bytes straight off a socket): every declared count is bounded by
/// what the remaining buffer could possibly encode before any allocation,
/// truncation anywhere yields IoError rather than a crash or over-read, and
/// DecodeDataset rejects trailing bytes after the declared row count so torn
/// or concatenated frames surface as errors instead of truncated data.
class Serializer {
 public:
  /// Appends the encoding of `r` to `out`.
  static void EncodeRecord(const Record& r, std::string* out);

  /// Decodes one record starting at *offset; advances *offset past it.
  static Result<Record> DecodeRecord(const std::string& buf,
                                     std::size_t* offset);

  /// Encodes an entire dataset (u64 row count header, then records).
  static std::string EncodeDataset(const Dataset& ds);

  static Result<Dataset> DecodeDataset(const std::string& buf);

  /// Exact encoded size without materializing the bytes (cost estimation).
  static int64_t EncodedSize(const Record& r);
  static int64_t EncodedSize(const Dataset& ds);
};

}  // namespace rheem

#endif  // RHEEM_DATA_SERIALIZATION_H_

#include "data/schema.h"

#include <set>

namespace rheem {

Result<int> Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no field named '" + name + "' in schema " +
                          ToString());
}

Status Schema::ValidateRecord(const Record& r) const {
  if (r.size() != fields_.size()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(r.size()) +
        " does not match schema arity " + std::to_string(fields_.size()));
  }
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const ValueType actual = r.at(i).type();
    if (actual == ValueType::kNull) continue;  // null is member of any type
    ValueType expected = fields_[i].type;
    // int64 is acceptable where double is declared (numeric widening).
    if (expected == ValueType::kDouble && actual == ValueType::kInt64) continue;
    if (actual != expected) {
      return Status::InvalidArgument(
          "field '" + fields_[i].name + "' expects " +
          ValueTypeToString(expected) + " but record holds " +
          ValueTypeToString(actual));
    }
  }
  return Status::OK();
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields_;
  std::set<std::string> names;
  for (const auto& f : fields) names.insert(f.name);
  for (const auto& f : right.fields_) {
    Field g = f;
    while (names.count(g.name) > 0) g.name += "_r";
    names.insert(g.name);
    fields.push_back(std::move(g));
  }
  return Schema(std::move(fields));
}

Schema Schema::Project(const std::vector<int>& columns) const {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (int c : columns) fields.push_back(fields_[static_cast<std::size_t>(c)]);
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeToString(fields_[i].type);
  }
  out += "}";
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.fields_.size() != b.fields_.size()) return false;
  for (std::size_t i = 0; i < a.fields_.size(); ++i) {
    if (a.fields_[i].name != b.fields_[i].name ||
        a.fields_[i].type != b.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace rheem

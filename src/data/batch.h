#ifndef RHEEM_DATA_BATCH_H_
#define RHEEM_DATA_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace rheem {

/// \brief One typed column of a Batch: contiguous values plus a packed null
/// bitmap.
///
/// Exactly one of the value vectors is populated, chosen by `type`. Strings
/// live in a single arena (`str_bytes`) addressed by `str_offsets` — no
/// per-string heap allocation, which is where the row representation loses
/// most of its time. A column whose `type` is kNull holds only nulls.
struct ColumnData {
  ValueType type = ValueType::kNull;  // kBool/kInt64/kDouble/kString, or
                                      // kNull for an all-null column
  std::vector<int64_t> i64;           // type == kInt64
  std::vector<double> f64;            // type == kDouble
  std::vector<uint8_t> b8;            // type == kBool (0/1)
  std::string str_bytes;              // type == kString: concatenated payloads
  std::vector<uint32_t> str_offsets;  // type == kString: size rows+1
  /// Packed null bitmap (bit i set = row i is null). Empty means "no nulls":
  /// the common all-valid column never allocates or consults the bitmap.
  std::vector<uint64_t> null_words;

  bool has_nulls() const { return !null_words.empty(); }
  bool IsNull(std::size_t i) const {
    return !null_words.empty() && ((null_words[i >> 6] >> (i & 63)) & 1) != 0;
  }
  /// Marks row i null, allocating the bitmap for `rows` total rows on first
  /// use.
  void MarkNull(std::size_t i, std::size_t rows) {
    if (null_words.empty()) null_words.assign((rows + 63) / 64, 0);
    null_words[i >> 6] |= uint64_t{1} << (i & 63);
  }
  /// Adopts a byte mask (1 = null) of length `rows`; no-op when all zero.
  void SetNullsFromBytes(const std::vector<uint8_t>& mask);

  std::string_view StringAt(std::size_t i) const {
    return std::string_view(str_bytes.data() + str_offsets[i],
                            str_offsets[i + 1] - str_offsets[i]);
  }
  /// Boxes row i back into a Value (exact round-trip of the converted cell).
  Value ValueAt(std::size_t i) const;

  void Reserve(std::size_t rows);
  int64_t EstimatedBytes() const;
};

/// \brief Read-only view of a column set for vectorized evaluation.
///
/// The view decouples "which rows are active" from storage: `sel` (when set)
/// lists active physical row ids; otherwise the view is the dense range
/// [base, base + n). Kernels evaluate expressions over views so a fused
/// chain can mix base-batch columns with freshly computed ones without
/// re-materializing anything.
struct BatchView {
  const ColumnData* const* cols = nullptr;
  std::size_t num_cols = 0;
  const uint32_t* sel = nullptr;  // active row ids; nullptr = dense
  std::size_t base = 0;           // dense start row (ignored when sel set)
  std::size_t n = 0;              // active row count
  std::size_t row(std::size_t i) const { return sel ? sel[i] : base + i; }
};

/// \brief Columnar counterpart of Dataset: per-column typed vectors plus a
/// selection vector.
///
/// Following Whiz's decoupled data plane, operators choose the layout that is
/// fast on real hardware: kernels convert a Dataset to a Batch at operator
/// boundaries (counted in `batch.conversions_total`), run column-at-a-time
/// over contiguous memory, and narrow the *selection vector* instead of
/// materializing intermediate records. ToDataset() restores the exact row
/// representation — conversion is lossless for every convertible Dataset, so
/// columnar execution is byte-identical to the row path.
class Batch {
 public:
  Batch() = default;
  Batch(std::vector<ColumnData> columns, std::size_t rows)
      : cols_(std::move(columns)), rows_(rows) {}

  /// Strict, lossless conversion: every record must have the same arity and
  /// each column must hold exactly one runtime type (plus nulls).
  /// Unsupported on ragged arity, mixed int64/double columns, or
  /// kDoubleList cells — the caller falls back to the row path.
  static Result<Batch> FromDataset(const Dataset& in);

  /// Lenient prefix conversion for predicate/key evaluation only: converts
  /// columns [0, num_columns); a cell missing because its record is shorter
  /// converts to null — exactly what scalar field evaluation yields for an
  /// out-of-range reference. Still fails on mixed-type columns (the row path
  /// distinguishes int64 from double per cell; a widened column could not).
  static Result<Batch> FromDatasetPrefix(const Dataset& in,
                                         std::size_t num_columns);

  /// Materializes the selected rows back into records, in selection order.
  /// Carries no schema (matching what the row kernels emit).
  Dataset ToDataset() const;

  /// Boxes one physical row (ignores the selection).
  Record RecordAt(std::size_t physical_row) const;

  std::size_t num_rows() const { return rows_; }  // physical rows
  std::size_t num_columns() const { return cols_.size(); }
  std::size_t num_selected() const {
    return has_selection_ ? selection_.size() : rows_;
  }
  /// Physical row id of the i-th selected row.
  std::size_t RowAt(std::size_t i) const {
    return has_selection_ ? selection_[i] : i;
  }

  const ColumnData& column(std::size_t c) const { return cols_[c]; }
  ColumnData& mutable_column(std::size_t c) { return cols_[c]; }
  const std::vector<ColumnData>& columns() const { return cols_; }

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }
  void SetSelection(std::vector<uint32_t> selection) {
    selection_ = std::move(selection);
    has_selection_ = true;
  }
  void ClearSelection() {
    selection_.clear();
    has_selection_ = false;
  }

  /// A view over all columns and the current selection. `ptrs` is caller
  /// storage for the column-pointer array (kept alive as long as the view).
  BatchView View(std::vector<const ColumnData*>* ptrs) const;

  /// Checks arity and per-column type against a Schema (all-null columns
  /// pass any field type, like null cells in Schema::ValidateRecord).
  Status ValidateAgainst(const Schema& schema) const;

  int64_t EstimatedBytes() const;

 private:
  std::vector<ColumnData> cols_;
  std::size_t rows_ = 0;
  std::vector<uint32_t> selection_;
  bool has_selection_ = false;
};

}  // namespace rheem

#endif  // RHEEM_DATA_BATCH_H_

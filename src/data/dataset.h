#ifndef RHEEM_DATA_DATASET_H_
#define RHEEM_DATA_DATASET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/record.h"
#include "data/schema.h"

namespace rheem {

/// \brief Batch of data quanta flowing between execution operators.
///
/// Execution operators process multiple quanta per call (paper Section 3.1),
/// so the unit of exchange on channels, shuffles and storage reads is a
/// Dataset, not a Record. A Dataset optionally carries a Schema; UDF-heavy
/// plans typically leave it empty.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Record> records)
      : records_(std::move(records)) {}
  Dataset(std::vector<Record> records, Schema schema)
      : records_(std::move(records)), schema_(std::move(schema)),
        has_schema_(true) {}

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Record& at(std::size_t i) const { return records_[i]; }
  Record& at(std::size_t i) { return records_[i]; }
  const std::vector<Record>& records() const { return records_; }
  std::vector<Record>& mutable_records() { return records_; }

  void Append(Record r) { records_.push_back(std::move(r)); }
  void AppendAll(const Dataset& other);
  void AppendAll(Dataset&& other);

  bool has_schema() const { return has_schema_; }
  const Schema& schema() const { return schema_; }
  void set_schema(Schema schema) {
    schema_ = std::move(schema);
    has_schema_ = true;
  }

  /// Validates every record against the schema (no-op when schema absent).
  Status Validate() const;

  /// Splits into `n` contiguous chunks of near-equal size (some may be
  /// empty when size() < n). Used to partition input for sparksim.
  std::vector<Dataset> SplitInto(std::size_t n) const;

  /// Stable sort by the given comparator.
  void Sort(const std::function<bool(const Record&, const Record&)>& less);

  /// Total estimated bytes (drives movement/serialization cost models).
  int64_t EstimatedBytes() const;

  std::string ToString(std::size_t max_rows = 10) const;

  auto begin() const { return records_.begin(); }
  auto end() const { return records_.end(); }

 private:
  std::vector<Record> records_;
  Schema schema_;
  bool has_schema_ = false;
};

}  // namespace rheem

#endif  // RHEEM_DATA_DATASET_H_

#ifndef RHEEM_DATA_VALUE_H_
#define RHEEM_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace rheem {

/// Runtime type tags for Value. kDoubleList models "a row in a matrix", the
/// paper's second example of a data quantum (Section 3.1), and keeps ML
/// workloads from paying per-feature boxing costs.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kDoubleList = 5,
};

const char* ValueTypeToString(ValueType t);

/// \brief Dynamically-typed cell: the atom a data quantum (Record) is made of.
///
/// Values order and hash across numeric types coherently (int 2 == double
/// 2.0) so join/group keys behave like SQL. Null sorts first and equals only
/// null.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(std::vector<double> xs) : v_(std::move(xs)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Checked accessors: error when the runtime type does not match.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt64() const;
  Result<double> AsDouble() const;  // accepts int64 too (widening)
  Result<std::string> AsString() const;
  Result<std::vector<double>> AsDoubleList() const;

  /// Unchecked accessors for hot loops; caller has verified the type.
  bool bool_unchecked() const { return std::get<bool>(v_); }
  int64_t int64_unchecked() const { return std::get<int64_t>(v_); }
  double double_unchecked() const { return std::get<double>(v_); }
  const std::string& string_unchecked() const { return std::get<std::string>(v_); }
  const std::vector<double>& double_list_unchecked() const {
    return std::get<std::vector<double>>(v_);
  }
  std::vector<double>& mutable_double_list_unchecked() {
    return std::get<std::vector<double>>(v_);
  }

  /// Numeric widening without error plumbing: returns fallback on mismatch.
  double ToDoubleOr(double fallback) const;
  int64_t ToInt64Or(int64_t fallback) const;

  /// Total order across all values: null < bool < numeric < string < list.
  /// Within numerics, compares by double value. Returns -1/0/+1.
  int Compare(const Value& other) const;

  std::size_t Hash() const;

  /// Display rendering ("NULL", "3.14", "\"abc\"" is NOT quoted -> abc).
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes (used by cost models).
  int64_t EstimatedSize() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<double>>
      v_;
};

struct ValueHasher {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rheem

#endif  // RHEEM_DATA_VALUE_H_

#include "data/dataset.h"

#include <algorithm>

namespace rheem {

void Dataset::AppendAll(const Dataset& other) {
  records_.reserve(records_.size() + other.records_.size());
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

void Dataset::AppendAll(Dataset&& other) {
  if (records_.empty()) {
    records_ = std::move(other.records_);
    return;
  }
  records_.reserve(records_.size() + other.records_.size());
  records_.insert(records_.end(),
                  std::make_move_iterator(other.records_.begin()),
                  std::make_move_iterator(other.records_.end()));
  other.records_.clear();
}

Status Dataset::Validate() const {
  if (!has_schema_) return Status::OK();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    Status st = schema_.ValidateRecord(records_[i]);
    if (!st.ok()) {
      return st.WithContext("record " + std::to_string(i));
    }
  }
  return Status::OK();
}

std::vector<Dataset> Dataset::SplitInto(std::size_t n) const {
  if (n == 0) n = 1;
  std::vector<Dataset> out(n);
  const std::size_t total = records_.size();
  const std::size_t base = total / n;
  const std::size_t extra = total % n;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    std::vector<Record> chunk(records_.begin() + static_cast<std::ptrdiff_t>(pos),
                              records_.begin() + static_cast<std::ptrdiff_t>(pos + len));
    if (has_schema_) {
      out[i] = Dataset(std::move(chunk), schema_);
    } else {
      out[i] = Dataset(std::move(chunk));
    }
    pos += len;
  }
  return out;
}

void Dataset::Sort(
    const std::function<bool(const Record&, const Record&)>& less) {
  std::stable_sort(records_.begin(), records_.end(), less);
}

int64_t Dataset::EstimatedBytes() const {
  int64_t total = 0;
  for (const auto& r : records_) total += r.EstimatedSize();
  return total;
}

std::string Dataset::ToString(std::size_t max_rows) const {
  std::string out = "Dataset[" + std::to_string(records_.size()) + " rows]";
  if (has_schema_) out += " " + schema_.ToString();
  out += "\n";
  for (std::size_t i = 0; i < records_.size() && i < max_rows; ++i) {
    out += "  " + records_[i].ToString() + "\n";
  }
  if (records_.size() > max_rows) {
    out += "  ... (" + std::to_string(records_.size() - max_rows) + " more)\n";
  }
  return out;
}

}  // namespace rheem

#ifndef RHEEM_DATA_SCHEMA_H_
#define RHEEM_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/record.h"
#include "data/value.h"

namespace rheem {

/// \brief One named, typed column of a Schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// \brief Ordered list of named, typed columns describing a Dataset.
///
/// Schemas are advisory in RHEEM's UDF-first model (operators may emit
/// records of any shape), but the relational platform (relsim) and the
/// storage layer require them, and Validate() lets tests pin shapes down.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static Schema Of(std::initializer_list<Field> fields) {
    return Schema(std::vector<Field>(fields));
  }

  std::size_t num_fields() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Column index by name, or NotFound.
  Result<int> IndexOf(const std::string& name) const;

  /// Checks arity and per-field type (null cells always pass).
  Status ValidateRecord(const Record& r) const;

  /// Schema of `left JOIN right` output (left fields then right fields;
  /// duplicate names get a "_r" suffix).
  static Schema Concat(const Schema& left, const Schema& right);

  Schema Project(const std::vector<int>& columns) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Field> fields_;
};

}  // namespace rheem

#endif  // RHEEM_DATA_SCHEMA_H_

#ifndef RHEEM_DATA_RECORD_H_
#define RHEEM_DATA_RECORD_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "data/value.h"

namespace rheem {

/// \brief The data quantum: the smallest unit of data RHEEM operators see
/// (paper Section 3.1). A Record is a tuple of Values.
///
/// Logical operators consume/produce single Records; execution operators work
/// on Datasets (batches of Records) to amortize dispatch, mirroring the
/// paper's distinction between logical and execution operators.
class Record {
 public:
  Record() = default;
  explicit Record(std::vector<Value> fields) : fields_(std::move(fields)) {}
  Record(std::initializer_list<Value> fields) : fields_(fields) {}

  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const Value& at(std::size_t i) const { return fields_[i]; }
  Value& at(std::size_t i) { return fields_[i]; }
  const Value& operator[](std::size_t i) const { return fields_[i]; }
  Value& operator[](std::size_t i) { return fields_[i]; }

  const std::vector<Value>& fields() const { return fields_; }
  std::vector<Value>& mutable_fields() { return fields_; }

  void Append(Value v) { fields_.push_back(std::move(v)); }

  /// Concatenation of two records (used by join outputs).
  static Record Concat(const Record& left, const Record& right);

  /// Projection onto the given column indices (caller ensures bounds).
  Record Project(const std::vector<int>& columns) const;

  /// Lexicographic comparison over fields.
  int Compare(const Record& other) const;
  std::size_t Hash() const;

  /// "(f0, f1, ...)" rendering for logs and tests.
  std::string ToString() const;

  int64_t EstimatedSize() const;

  friend bool operator==(const Record& a, const Record& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Record& a, const Record& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Record& a, const Record& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::vector<Value> fields_;
};

struct RecordHasher {
  std::size_t operator()(const Record& r) const { return r.Hash(); }
};

}  // namespace rheem

#endif  // RHEEM_DATA_RECORD_H_

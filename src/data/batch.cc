#include "data/batch.h"

#include <algorithm>

#include "common/metrics.h"

namespace rheem {

namespace {

Counter* ConversionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("batch.conversions_total");
  return c;
}

constexpr std::size_t kMaxBatchRows = 0xFFFFFFFFu;  // selection ids are u32

/// Shared column-at-a-time conversion. `strict` additionally requires uniform
/// arity == num_columns; lenient treats a missing trailing cell as null.
Result<Batch> Convert(const Dataset& in, std::size_t num_columns, bool strict) {
  const std::size_t n = in.size();
  if (n > kMaxBatchRows) {
    return Status::Unsupported("dataset too large for a Batch");
  }
  if (strict) {
    for (std::size_t i = 0; i < n; ++i) {
      if (in.at(i).size() != num_columns) {
        return Status::Unsupported(
            "ragged dataset: record arity " + std::to_string(in.at(i).size()) +
            " != " + std::to_string(num_columns));
      }
    }
  }
  std::vector<ColumnData> cols(num_columns);
  for (std::size_t c = 0; c < num_columns; ++c) {
    ColumnData& col = cols[c];
    // Pass 1: the column's type is the type of its first non-null cell.
    for (std::size_t i = 0; i < n; ++i) {
      const Record& r = in.at(i);
      if (c >= r.size()) continue;  // lenient missing cell
      const ValueType t = r.at(c).type();
      if (t == ValueType::kNull) continue;
      if (t == ValueType::kDoubleList) {
        return Status::Unsupported(
            "double_list cells have no columnar representation");
      }
      col.type = t;
      break;
    }
    if (col.type == ValueType::kNull) {
      // All-null column: bitmap only.
      if (n > 0) {
        col.null_words.assign((n + 63) / 64, ~uint64_t{0});
        const std::size_t tail = n & 63;
        if (tail != 0) col.null_words.back() = (uint64_t{1} << tail) - 1;
      }
      continue;
    }
    // Pass 2: fill, rejecting any cell whose runtime type differs (a mixed
    // int64/double column cannot preserve per-cell types once widened).
    col.Reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Record& r = in.at(i);
      const bool missing = c >= r.size();
      const Value* v = missing ? nullptr : &r.at(c);
      if (missing || v->is_null()) {
        col.MarkNull(i, n);
        switch (col.type) {
          case ValueType::kInt64: col.i64.push_back(0); break;
          case ValueType::kDouble: col.f64.push_back(0.0); break;
          case ValueType::kBool: col.b8.push_back(0); break;
          case ValueType::kString:
            col.str_offsets.push_back(
                static_cast<uint32_t>(col.str_bytes.size()));
            break;
          default: break;
        }
        continue;
      }
      if (v->type() != col.type) {
        return Status::Unsupported(
            std::string("mixed column types: ") +
            ValueTypeToString(col.type) + " vs " +
            ValueTypeToString(v->type()) + " in column " + std::to_string(c));
      }
      switch (col.type) {
        case ValueType::kInt64:
          col.i64.push_back(v->int64_unchecked());
          break;
        case ValueType::kDouble:
          col.f64.push_back(v->double_unchecked());
          break;
        case ValueType::kBool:
          col.b8.push_back(v->bool_unchecked() ? 1 : 0);
          break;
        case ValueType::kString: {
          const std::string& s = v->string_unchecked();
          col.str_offsets.push_back(
              static_cast<uint32_t>(col.str_bytes.size()));
          col.str_bytes.append(s);
          break;
        }
        default:
          break;
      }
    }
    if (col.type == ValueType::kString) {
      col.str_offsets.push_back(static_cast<uint32_t>(col.str_bytes.size()));
    }
  }
  CountIfEnabled(ConversionsCounter(), 1);
  return Batch(std::move(cols), n);
}

}  // namespace

void ColumnData::SetNullsFromBytes(const std::vector<uint8_t>& mask) {
  bool any = false;
  for (uint8_t m : mask) {
    if (m != 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  null_words.assign((mask.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) null_words[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

Value ColumnData::ValueAt(std::size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type) {
    case ValueType::kInt64: return Value(i64[i]);
    case ValueType::kDouble: return Value(f64[i]);
    case ValueType::kBool: return Value(b8[i] != 0);
    case ValueType::kString: return Value(std::string(StringAt(i)));
    default: return Value::Null();
  }
}

void ColumnData::Reserve(std::size_t rows) {
  switch (type) {
    case ValueType::kInt64: i64.reserve(rows); break;
    case ValueType::kDouble: f64.reserve(rows); break;
    case ValueType::kBool: b8.reserve(rows); break;
    case ValueType::kString: str_offsets.reserve(rows + 1); break;
    default: break;
  }
}

int64_t ColumnData::EstimatedBytes() const {
  return static_cast<int64_t>(i64.size() * sizeof(int64_t) +
                              f64.size() * sizeof(double) + b8.size() +
                              str_bytes.size() +
                              str_offsets.size() * sizeof(uint32_t) +
                              null_words.size() * sizeof(uint64_t));
}

Result<Batch> Batch::FromDataset(const Dataset& in) {
  return Convert(in, in.empty() ? 0 : in.at(0).size(), /*strict=*/true);
}

Result<Batch> Batch::FromDatasetPrefix(const Dataset& in,
                                       std::size_t num_columns) {
  return Convert(in, num_columns, /*strict=*/false);
}

Dataset Batch::ToDataset() const {
  std::vector<Record> out;
  out.reserve(num_selected());
  for (std::size_t i = 0; i < num_selected(); ++i) {
    out.push_back(RecordAt(RowAt(i)));
  }
  CountIfEnabled(ConversionsCounter(), 1);
  return Dataset(std::move(out));
}

Record Batch::RecordAt(std::size_t physical_row) const {
  std::vector<Value> fields;
  fields.reserve(cols_.size());
  for (const ColumnData& c : cols_) fields.push_back(c.ValueAt(physical_row));
  return Record(std::move(fields));
}

BatchView Batch::View(std::vector<const ColumnData*>* ptrs) const {
  ptrs->clear();
  ptrs->reserve(cols_.size());
  for (const ColumnData& c : cols_) ptrs->push_back(&c);
  BatchView v;
  v.cols = ptrs->data();
  v.num_cols = ptrs->size();
  if (has_selection_) {
    v.sel = selection_.data();
    v.n = selection_.size();
  } else {
    v.base = 0;
    v.n = rows_;
  }
  return v;
}

Status Batch::ValidateAgainst(const Schema& schema) const {
  if (schema.num_fields() != cols_.size()) {
    return Status::InvalidArgument(
        "batch arity " + std::to_string(cols_.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_fields()));
  }
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    const ValueType want = schema.field(c).type;
    const ValueType got = cols_[c].type;
    // All-null columns pass any declared type, like null cells in
    // Schema::ValidateRecord; a kNull schema field accepts anything.
    if (got == ValueType::kNull || want == ValueType::kNull) continue;
    if (got != want) {
      return Status::InvalidArgument(
          "column " + std::to_string(c) + " (" + schema.field(c).name +
          ") is " + ValueTypeToString(got) + ", schema wants " +
          ValueTypeToString(want));
    }
  }
  return Status::OK();
}

int64_t Batch::EstimatedBytes() const {
  int64_t total = static_cast<int64_t>(selection_.size() * sizeof(uint32_t));
  for (const ColumnData& c : cols_) total += c.EstimatedBytes();
  return total;
}

}  // namespace rheem

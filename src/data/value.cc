#include "data/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace rheem {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kDoubleList: return "double_list";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

Result<bool> Value::AsBool() const {
  if (type() != ValueType::kBool) {
    return Status::InvalidArgument(std::string("value is not bool but ") +
                                   ValueTypeToString(type()));
  }
  return std::get<bool>(v_);
}

Result<int64_t> Value::AsInt64() const {
  if (type() != ValueType::kInt64) {
    return Status::InvalidArgument(std::string("value is not int64 but ") +
                                   ValueTypeToString(type()));
  }
  return std::get<int64_t>(v_);
}

Result<double> Value::AsDouble() const {
  if (type() == ValueType::kDouble) return std::get<double>(v_);
  if (type() == ValueType::kInt64) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return Status::InvalidArgument(std::string("value is not numeric but ") +
                                 ValueTypeToString(type()));
}

Result<std::string> Value::AsString() const {
  if (type() != ValueType::kString) {
    return Status::InvalidArgument(std::string("value is not string but ") +
                                   ValueTypeToString(type()));
  }
  return std::get<std::string>(v_);
}

Result<std::vector<double>> Value::AsDoubleList() const {
  if (type() != ValueType::kDoubleList) {
    return Status::InvalidArgument(std::string("value is not double_list but ") +
                                   ValueTypeToString(type()));
  }
  return std::get<std::vector<double>>(v_);
}

double Value::ToDoubleOr(double fallback) const {
  switch (type()) {
    case ValueType::kDouble: return std::get<double>(v_);
    case ValueType::kInt64: return static_cast<double>(std::get<int64_t>(v_));
    case ValueType::kBool: return std::get<bool>(v_) ? 1.0 : 0.0;
    default: return fallback;
  }
}

int64_t Value::ToInt64Or(int64_t fallback) const {
  switch (type()) {
    case ValueType::kInt64: return std::get<int64_t>(v_);
    case ValueType::kDouble: return static_cast<int64_t>(std::get<double>(v_));
    case ValueType::kBool: return std::get<bool>(v_) ? 1 : 0;
    default: return fallback;
  }
}

namespace {
// Cross-type rank so heterogeneous columns still have a total order.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull: return 0;
    case ValueType::kBool: return 1;
    case ValueType::kInt64: return 2;   // numerics share rank 2
    case ValueType::kDouble: return 2;
    case ValueType::kString: return 3;
    case ValueType::kDoubleList: return 4;
  }
  return 5;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const int ra = TypeRank(type());
  const int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp(std::get<bool>(v_), std::get<bool>(other.v_));
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Numeric tower: compare as doubles. Exact for the magnitudes used in
      // this codebase (keys fit in 53 bits).
      return Cmp(ToDoubleOr(0), other.ToDoubleOr(0));
    }
    case ValueType::kString:
      return Cmp(std::get<std::string>(v_), std::get<std::string>(other.v_));
    case ValueType::kDoubleList: {
      const auto& a = std::get<std::vector<double>>(v_);
      const auto& b = std::get<std::vector<double>>(other.v_);
      const std::size_t n = std::min(a.size(), b.size());
      for (std::size_t i = 0; i < n; ++i) {
        int c = Cmp(a[i], b[i]);
        if (c != 0) return c;
      }
      return Cmp(a.size(), b.size());
    }
  }
  return 0;
}

std::size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return std::get<bool>(v_) ? 0x1234567 : 0x7654321;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Numerics hash through their double representation so that
      // Value(2) and Value(2.0) land in the same bucket, matching Compare.
      const double d = ToDoubleOr(0);
      if (d == static_cast<int64_t>(d)) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(std::get<std::string>(v_));
    case ValueType::kDoubleList: {
      std::size_t h = 0x51ed270b;
      for (double d : std::get<std::vector<double>>(v_)) {
        h ^= std::hash<double>()(d) + 0x9e3779b9 + (h << 6) + (h >> 2);
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return std::get<bool>(v_) ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(v_);
    case ValueType::kDoubleList: {
      std::string out = "[";
      const auto& xs = std::get<std::vector<double>>(v_);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) out += ",";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", xs[i]);
        out += buf;
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

int64_t Value::EstimatedSize() const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kBool: return 1;
    case ValueType::kInt64: return 8;
    case ValueType::kDouble: return 8;
    case ValueType::kString:
      return static_cast<int64_t>(std::get<std::string>(v_).size()) + 8;
    case ValueType::kDoubleList:
      return static_cast<int64_t>(
                 std::get<std::vector<double>>(v_).size() * sizeof(double)) +
             8;
  }
  return 8;
}

}  // namespace rheem

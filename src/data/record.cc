#include "data/record.h"

namespace rheem {

Record Record::Concat(const Record& left, const Record& right) {
  std::vector<Value> fields;
  fields.reserve(left.size() + right.size());
  for (const auto& v : left.fields()) fields.push_back(v);
  for (const auto& v : right.fields()) fields.push_back(v);
  return Record(std::move(fields));
}

Record Record::Project(const std::vector<int>& columns) const {
  std::vector<Value> fields;
  fields.reserve(columns.size());
  for (int c : columns) fields.push_back(fields_[static_cast<std::size_t>(c)]);
  return Record(std::move(fields));
}

int Record::Compare(const Record& other) const {
  const std::size_t n = std::min(fields_.size(), other.fields_.size());
  for (std::size_t i = 0; i < n; ++i) {
    int c = fields_[i].Compare(other.fields_[i]);
    if (c != 0) return c;
  }
  if (fields_.size() < other.fields_.size()) return -1;
  if (fields_.size() > other.fields_.size()) return 1;
  return 0;
}

std::size_t Record::Hash() const {
  std::size_t h = 0x811c9dc5;
  for (const auto& v : fields_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Record::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

int64_t Record::EstimatedSize() const {
  int64_t total = 16;  // vector header amortized
  for (const auto& v : fields_) total += v.EstimatedSize();
  return total;
}

}  // namespace rheem

#ifndef RHEEM_COMMON_RESULT_H_
#define RHEEM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rheem {

/// \brief Value-or-error holder returned by fallible value-producing APIs.
///
/// Mirrors arrow::Result / absl::StatusOr. A Result is either OK and holds a
/// T, or holds a non-OK Status. Accessing the value of an errored Result
/// aborts in debug builds (assert) and is undefined otherwise; callers should
/// use `ok()` / RHEEM_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse
  /// (`return 42;` / `return Status::NotFound(...)`), matching Arrow.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {    // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the held value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;            // OK when value_ holds a T
  std::optional<T> value_;
};

}  // namespace rheem

#endif  // RHEEM_COMMON_RESULT_H_

#include "common/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/config.h"
#include "common/trace.h"

namespace rheem {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(int64_t value) {
  // First bound >= value; the last slot is the +Inf overflow bucket.
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int64_t Histogram::bucket_count(std::size_t i) const {
  int64_t total = 0;
  for (std::size_t b = 0; b <= i && b < bounds_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<int64_t>& DefaultLatencyBoundsMicros() {
  static const std::vector<int64_t> bounds = {
      10, 100, 1000, 10000, 100000, 1000000, 10000000};
  return bounds;
}

int64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    os << name << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    os << name << " " << v << " (gauge)\n";
  }
  for (const auto& [name, h] : histograms) {
    os << name << " count=" << h.count << " sum=" << h.sum;
    if (h.count > 0) os << " mean=" << (h.sum / h.count);
    os << "\n";
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Never destroyed: instrumentation sites may fire during static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<int64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy everything while holding the lock; formatting/serialization then
  // happens on the caller's copy, so concurrent counter creation (e.g. a
  // Submit racing a drain) can never invalidate what we iterate.
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.bounds = h->bounds();
    v.count = h->count();
    v.sum = h->sum();
    int64_t running = 0;
    for (std::size_t i = 0; i <= v.bounds.size(); ++i) {
      running += h->buckets_[i].load(std::memory_order_relaxed);
      v.cumulative.push_back(running);
    }
    snap.histograms[name] = std::move(v);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  // Zero in place rather than destroying: instrumentation sites cache the
  // pointers returned by counter()/gauge()/histogram() for the process
  // lifetime, so those must survive any number of Resets.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->value_.store(0);
  for (auto& [name, g] : gauges_) g->value_.store(0);
  for (auto& [name, h] : histograms_) {
    for (std::size_t i = 0; i <= h->bounds_.size(); ++i) h->buckets_[i].store(0);
    h->count_.store(0);
    h->sum_.store(0);
  }
}

std::string MetricsRegistry::ReportText() const { return Snapshot().ToString(); }

void ApplyObservabilityConfig(const Config& config) {
  if (config.Has("metrics.enabled")) {
    MetricsRegistry::Global().set_enabled(
        config.GetBool("metrics.enabled", false).ValueOr(false));
  }
  if (config.Has("trace.enabled")) {
    Tracer::Global().set_enabled(
        config.GetBool("trace.enabled", false).ValueOr(false));
  }
  if (config.Has("trace.path") &&
      !config.GetString("trace.path", "").ValueOr("").empty()) {
    Tracer::Global().set_enabled(true);
  }
}

}  // namespace rheem

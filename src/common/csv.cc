#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace rheem {

Result<std::vector<std::string>> CsvCodec::ParseLine(
    std::string_view line) const {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        cur += c;
        ++i;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::InvalidArgument("quote in the middle of a CSV field");
        }
        in_quotes = true;
        ++i;
      } else if (c == delim_) {
        fields.push_back(std::move(cur));
        cur.clear();
        ++i;
      } else {
        cur += c;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted CSV field");
  fields.push_back(std::move(cur));
  return fields;
}

Result<std::vector<std::vector<std::string>>> CsvCodec::ParseDocument(
    std::string_view text) const {
  std::vector<std::vector<std::string>> rows;
  std::string logical_line;
  bool in_quotes = false;
  auto flush = [&]() -> Status {
    if (logical_line.empty()) return Status::OK();
    auto parsed = ParseLine(logical_line);
    if (!parsed.ok()) return parsed.status();
    rows.push_back(std::move(parsed).ValueOrDie());
    logical_line.clear();
    return Status::OK();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') in_quotes = !in_quotes;
    if (c == '\n' && !in_quotes) {
      // Strip a trailing \r from CRLF documents.
      if (!logical_line.empty() && logical_line.back() == '\r') {
        logical_line.pop_back();
      }
      RHEEM_RETURN_IF_ERROR(flush());
    } else {
      logical_line += c;
    }
  }
  if (!logical_line.empty() && logical_line.back() == '\r') {
    logical_line.pop_back();
  }
  RHEEM_RETURN_IF_ERROR(flush());
  return rows;
}

std::string CsvCodec::FormatLine(const std::vector<std::string>& fields) const {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += delim_;
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find(delim_) != std::string::npos ||
        f.find('"') != std::string::npos || f.find('\n') != std::string::npos;
    if (needs_quotes) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("error while reading: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("error while writing: " + path);
  return Status::OK();
}

}  // namespace rheem

#ifndef RHEEM_COMMON_CSV_H_
#define RHEEM_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rheem {

/// \brief Minimal RFC-4180-ish CSV codec used by the CsvStore storage backend
/// and the example datasets.
///
/// Supports quoted fields containing commas, quotes (doubled) and newlines.
/// Does not support multi-character delimiters.
class CsvCodec {
 public:
  explicit CsvCodec(char delim = ',') : delim_(delim) {}

  /// Parses one logical CSV line (no embedded newlines) into fields.
  Result<std::vector<std::string>> ParseLine(std::string_view line) const;

  /// Parses a whole document, handling quoted embedded newlines.
  Result<std::vector<std::vector<std::string>>> ParseDocument(
      std::string_view text) const;

  /// Renders fields as one CSV line (no trailing newline), quoting as needed.
  std::string FormatLine(const std::vector<std::string>& fields) const;

 private:
  char delim_;
};

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncates) `content` to `path`.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace rheem

#endif  // RHEEM_COMMON_CSV_H_

#ifndef RHEEM_COMMON_CONFIG_H_
#define RHEEM_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace rheem {

/// \brief Flat string key/value configuration bag.
///
/// Carries tuning knobs through the system without hard-coding them: platform
/// overhead constants, optimizer toggles, partition counts. Keys are
/// dot-separated by convention ("sparksim.job_latency_us"). Typed getters
/// parse on access and fall back to the provided default when the key is
/// absent; they return an error only when the key is present but malformed.
class Config {
 public:
  Config() = default;

  void Set(const std::string& key, std::string value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  Result<std::string> GetString(const std::string& key,
                                const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// Merge `other` into this config; keys in `other` win.
  void MergeFrom(const Config& other);

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace rheem

#endif  // RHEEM_COMMON_CONFIG_H_

#include "common/fault.h"

#include <cstdio>
#include <cstdlib>

#include "common/config.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace rheem {

namespace {

/// SplitMix64 finalizer: uncorrelated 64-bit hash of the mixed inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultTrigger FaultTrigger::Nth(int64_t n, int64_t max_fires) {
  FaultTrigger t;
  t.kind = Kind::kNth;
  t.n = n;
  t.max_fires = max_fires;
  return t;
}

FaultTrigger FaultTrigger::EveryK(int64_t k, int64_t max_fires) {
  FaultTrigger t;
  t.kind = Kind::kEveryK;
  t.n = k;
  t.max_fires = max_fires;
  return t;
}

FaultTrigger FaultTrigger::Probability(double p, int64_t max_fires) {
  FaultTrigger t;
  t.kind = Kind::kProbability;
  t.probability = p;
  t.max_fires = max_fires;
  return t;
}

std::string FaultTrigger::ToString() const {
  char buf[64];
  switch (kind) {
    case Kind::kNth:
      std::snprintf(buf, sizeof(buf), "nth=%lld", static_cast<long long>(n));
      break;
    case Kind::kEveryK:
      std::snprintf(buf, sizeof(buf), "every=%lld", static_cast<long long>(n));
      break;
    case Kind::kProbability:
      std::snprintf(buf, sizeof(buf), "p=%g", probability);
      break;
  }
  std::string out = buf;
  if (max_fires >= 0) out += ":limit=" + std::to_string(max_fires);
  return out;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();  // never destroyed
  return *injector;
}

void FaultInjector::Seed(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    site->hits.store(0, std::memory_order_relaxed);
    site->fired.store(0, std::memory_order_relaxed);
    for (auto& spec : site->specs) {
      spec->seen.store(0, std::memory_order_relaxed);
      spec->fires.store(0, std::memory_order_relaxed);
    }
  }
  total_fired_.store(0, std::memory_order_relaxed);
}

uint64_t FaultInjector::seed() const {
  return seed_.load(std::memory_order_relaxed);
}

FaultInjector::Site* FaultInjector::GetOrCreateSite(const std::string& site) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it != sites_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = sites_[site];
  if (slot == nullptr) slot = std::make_unique<Site>();
  return slot.get();
}

Status FaultInjector::AddSpec(const std::string& site, FaultTrigger trigger,
                              std::string match) {
  if (site.empty()) return Status::InvalidArgument("fault site name is empty");
  switch (trigger.kind) {
    case FaultTrigger::Kind::kNth:
    case FaultTrigger::Kind::kEveryK:
      if (trigger.n <= 0) {
        return Status::InvalidArgument("fault trigger count must be positive");
      }
      break;
    case FaultTrigger::Kind::kProbability:
      if (trigger.probability < 0.0 || trigger.probability > 1.0) {
        return Status::InvalidArgument("fault probability must be in [0, 1]");
      }
      break;
  }
  auto spec = std::make_unique<Spec>();
  spec->trigger = trigger;
  spec->match = std::move(match);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = sites_[site];
  if (slot == nullptr) slot = std::make_unique<Site>();
  slot->specs.push_back(std::move(spec));
  return Status::OK();
}

Status FaultInjector::ParseSpec(const std::string& spec) {
  for (const std::string& raw : SplitString(spec, ';')) {
    const std::string entry(TrimWhitespace(raw));
    if (entry.empty()) continue;
    std::vector<std::string> parts = SplitString(entry, ':');
    if (parts.size() < 2) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "' is missing a trigger (site:trigger)");
    }
    std::string site(TrimWhitespace(parts[0]));
    std::string match;
    if (auto at = site.find('@'); at != std::string::npos) {
      match = site.substr(at + 1);
      site = site.substr(0, at);
    }
    FaultTrigger trigger;
    bool have_trigger = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string field(TrimWhitespace(parts[i]));
      const auto eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault spec field '" + field +
                                       "' is not key=value");
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "nth") {
        trigger.kind = FaultTrigger::Kind::kNth;
        trigger.n = std::strtoll(value.c_str(), nullptr, 10);
        if (trigger.max_fires < 0) trigger.max_fires = 1;
        have_trigger = true;
      } else if (key == "every") {
        trigger.kind = FaultTrigger::Kind::kEveryK;
        trigger.n = std::strtoll(value.c_str(), nullptr, 10);
        have_trigger = true;
      } else if (key == "p") {
        trigger.kind = FaultTrigger::Kind::kProbability;
        trigger.probability = std::strtod(value.c_str(), nullptr);
        have_trigger = true;
      } else if (key == "limit") {
        trigger.max_fires = std::strtoll(value.c_str(), nullptr, 10);
      } else {
        return Status::InvalidArgument("unknown fault spec field '" + key +
                                       "' in '" + entry + "'");
      }
    }
    if (!have_trigger) {
      return Status::InvalidArgument("fault spec '" + entry +
                                     "' has no nth=/every=/p= trigger");
    }
    RHEEM_RETURN_IF_ERROR(AddSpec(site, trigger, std::move(match)));
  }
  return Status::OK();
}

void FaultInjector::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    site->hits.store(0, std::memory_order_relaxed);
    site->fired.store(0, std::memory_order_relaxed);
    site->specs.clear();
  }
  total_fired_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::Hit(const char* site, const std::string& detail) {
  if (!enabled()) return Status::OK();
  Site* s = GetOrCreateSite(site);

  std::shared_lock<std::shared_mutex> lock(mu_);
  const int64_t index = s->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  auto& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.counter(std::string("fault.") + site + ".hits")->Increment();
  }
  for (const auto& spec : s->specs) {
    if (!spec->match.empty() && detail.find(spec->match) == std::string::npos) {
      continue;
    }
    // Triggers index the spec's *matched* hits, so "the 3rd sparksim
    // attempt" means exactly that even when other platforms interleave.
    const int64_t matched = spec->seen.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fires = false;
    switch (spec->trigger.kind) {
      case FaultTrigger::Kind::kNth:
        fires = matched == spec->trigger.n;
        break;
      case FaultTrigger::Kind::kEveryK:
        fires = matched % spec->trigger.n == 0;
        break;
      case FaultTrigger::Kind::kProbability: {
        const uint64_t h = Mix64(seed_.load(std::memory_order_relaxed) ^
                                 Fnv1a(site) ^ Fnv1a(spec->match) ^
                                 static_cast<uint64_t>(matched));
        fires = static_cast<double>(h >> 11) * 0x1.0p-53 <
                spec->trigger.probability;
        break;
      }
    }
    if (!fires) continue;
    if (spec->trigger.max_fires >= 0) {
      // Serialize the budget check: a limit of L must mean exactly <= L
      // fires, even when hits race. Fires are rare; the lock is cold.
      std::lock_guard<std::mutex> fire_lock(fire_mu_);
      if (spec->fires.load(std::memory_order_relaxed) >=
          spec->trigger.max_fires) {
        continue;
      }
      spec->fires.fetch_add(1, std::memory_order_relaxed);
    } else {
      spec->fires.fetch_add(1, std::memory_order_relaxed);
    }
    s->fired.fetch_add(1, std::memory_order_relaxed);
    total_fired_.fetch_add(1, std::memory_order_relaxed);
    if (registry.enabled()) {
      registry.counter(std::string("fault.") + site + ".fired")->Increment();
    }
    std::string message = std::string("injected fault at ") + site;
    if (!detail.empty()) message += " [" + detail + "]";
    message += " (hit " + std::to_string(index) +
               ", seed " + std::to_string(seed()) + ")";
    return Status::ExecutionError(std::move(message));
  }
  return Status::OK();
}

int64_t FaultInjector::hits(const std::string& site) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0
                            : it->second->hits.load(std::memory_order_relaxed);
}

int64_t FaultInjector::fired(const std::string& site) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0
                            : it->second->fired.load(std::memory_order_relaxed);
}

int64_t FaultInjector::total_fired() const {
  return total_fired_.load(std::memory_order_relaxed);
}

void ApplyFaultConfig(const Config& config) {
  auto& injector = FaultInjector::Global();
  if (config.Has("fault.seed")) {
    injector.Seed(static_cast<uint64_t>(
        config.GetInt("fault.seed", 0).ValueOr(0)));
  }
  // Replay workflow: the environment seed wins over config so a CI failure
  // can be reproduced without editing the job's config.
  if (const char* env = std::getenv("RHEEM_FAULT_SEED"); env != nullptr) {
    injector.Seed(std::strtoull(env, nullptr, 10));
  }
  if (config.Has("fault.spec")) {
    const std::string spec = config.GetString("fault.spec", "").ValueOr("");
    if (!spec.empty()) {
      if (Status st = injector.ParseSpec(spec); !st.ok()) {
        // Configuration problems must not silently disable chaos coverage.
        injector.set_enabled(false);
        return;
      }
      injector.set_enabled(true);
    }
  }
  if (config.Has("fault.enabled")) {
    injector.set_enabled(config.GetBool("fault.enabled", false).ValueOr(false));
  }
}

}  // namespace rheem

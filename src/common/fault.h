#ifndef RHEEM_COMMON_FAULT_H_
#define RHEEM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace rheem {

class Config;

/// \brief When a registered fault spec fires, relative to the site's
/// process-wide hit counter (1-based hit indices).
struct FaultTrigger {
  enum class Kind {
    kNth,          // fire exactly on hit number `n`
    kEveryK,       // fire on every hit whose index is a multiple of `n`
    kProbability,  // fire when hash(seed, site, hit index) < p
  };

  Kind kind = Kind::kNth;
  int64_t n = 1;            // kNth: the hit index; kEveryK: the period
  double probability = 0.0; // kProbability only
  /// Upper bound on fires of this spec (-1 = unlimited). Lets a chaos
  /// schedule guarantee the fault is survivable within a retry budget.
  int64_t max_fires = -1;

  static FaultTrigger Nth(int64_t n, int64_t max_fires = 1);
  static FaultTrigger EveryK(int64_t k, int64_t max_fires = -1);
  static FaultTrigger Probability(double p, int64_t max_fires = -1);

  std::string ToString() const;
};

/// \brief Process-wide deterministic fault-injection registry — the one
/// mechanism every layer that can fail is instrumented with (paper §4.2: the
/// Executor "copes with failures"; this is how tests make it prove that).
///
/// Call sites name a *site* ("executor.stage_attempt", "storage.read", ...)
/// and pass a free-form detail string ("stage=3,platform=sparksim,attempt=0").
/// Registered specs match a site (plus an optional detail substring) and a
/// FaultTrigger; when one fires, Hit() returns an ExecutionError the call
/// site treats exactly like a real failure of that operation.
///
/// Determinism: every decision is a pure function of the injector seed, the
/// site name and the site's hit index, so a chaos run is replayable from a
/// single seed (`RHEEM_FAULT_SEED` / `fault.seed`). Under concurrency the
/// assignment of hit indices to logical operations can vary with thread
/// interleaving, but the *number* of nth/every-k fires (with limits) does
/// not — which is what recovery guarantees are stated against.
///
/// Observability: each site exports `fault.<site>.hits` and
/// `fault.<site>.fired` counters through the MetricsRegistry, and call sites
/// tag fired faults on their trace spans (see docs/fault_tolerance.md).
///
/// Disabled (the default), Hit() costs one relaxed atomic load and nothing
/// is registered or counted.
class FaultInjector {
 public:
  static FaultInjector& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Seed shared by every probabilistic trigger. Setting it also zeroes all
  /// hit/fire state so a run is replayable from the seed alone.
  void Seed(uint64_t seed);
  uint64_t seed() const;

  /// Registers a spec against `site`. `match` is a substring filter applied
  /// to the Hit() detail (empty = match every hit). Matching hits still
  /// advance the site hit counter whether or not the spec fires.
  Status AddSpec(const std::string& site, FaultTrigger trigger,
                 std::string match = std::string());

  /// Parses a ';'-separated spec list:
  ///   site[@match]:nth=N | every=K | p=0.5 [:limit=M]
  /// e.g. "executor.stage_attempt@platform=sparksim,:every=3:limit=2".
  Status ParseSpec(const std::string& spec);

  /// Drops every spec and zeroes all hit/fire state (seed and enabled flag
  /// are kept). Sites stay registered so cached counters remain meaningful.
  void Clear();

  /// The instrumented probe. Returns OK, or an ExecutionError carrying the
  /// site, the hit index and the seed when a registered spec fires.
  Status Hit(const char* site, const std::string& detail = std::string());

  /// Hit/fire totals for one site (0 when the site was never hit).
  int64_t hits(const std::string& site) const;
  int64_t fired(const std::string& site) const;

  /// Total fires across all sites since the last Clear()/Seed().
  int64_t total_fired() const;

 private:
  struct Spec {
    FaultTrigger trigger;
    std::string match;
    std::atomic<int64_t> seen{0};   // hits matching this spec's filter
    std::atomic<int64_t> fires{0};
  };
  struct Site {
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> fired{0};
    std::vector<std::unique_ptr<Spec>> specs;
  };

  FaultInjector() = default;

  Site* GetOrCreateSite(const std::string& site);

  mutable std::shared_mutex mu_;  // guards sites_ map shape + spec lists
  std::map<std::string, std::unique_ptr<Site>> sites_;
  std::mutex fire_mu_;  // serializes the (rare) fire decision for max_fires
  std::atomic<uint64_t> seed_{0};
  std::atomic<int64_t> total_fired_{0};
  std::atomic<bool> enabled_{false};
};

/// Applies the fault keys of `config` to the process-wide injector. Only
/// keys that are present take effect. The `RHEEM_FAULT_SEED` environment
/// variable overrides `fault.seed` (replay workflow).
///
/// Keys:
///   fault.enabled (bool)   turn the injector on/off
///   fault.seed    (int)    deterministic seed (also clears hit state)
///   fault.spec    (string) ';'-separated spec list, see ParseSpec; a
///                          non-empty spec implies fault.enabled=true
void ApplyFaultConfig(const Config& config);

}  // namespace rheem

#endif  // RHEEM_COMMON_FAULT_H_

#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace rheem {

namespace {

int64_t NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

uint64_t ThisThreadOrdinal() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t ordinal = next.fetch_add(1);
  return ordinal;
}

/// Innermost TraceSpan opened by this thread; TraceSpan's RAII guarantees
/// LIFO push/pop per thread, so a plain vector works.
std::vector<uint64_t>& ThreadSpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Global() {
  // Never destroyed: spans may close during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_max_spans(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  max_spans_ = cap;
}

int64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t Tracer::BeginSpan(const std::string& name, const std::string& category,
                           uint64_t parent_id) {
  if (!enabled()) return 0;
  if (parent_id == 0) parent_id = CurrentSpanId();
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  SpanRecord rec;
  rec.id = static_cast<uint64_t>(spans_.size()) + 1;
  rec.parent_id = parent_id;
  rec.name = name;
  rec.category = category;
  rec.start_micros = now;
  rec.thread_id = ThisThreadOrdinal();
  spans_.push_back(std::move(rec));
  ++open_count_;
  return spans_.back().id;
}

void Tracer::AddTag(uint64_t span_id, const std::string& key,
                    const std::string& value) {
  if (span_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (span_id > spans_.size()) return;
  SpanRecord& rec = spans_[span_id - 1];
  if (!rec.closed()) rec.tags.emplace_back(key, value);
}

void Tracer::EndSpan(uint64_t span_id) {
  if (span_id == 0) return;
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (span_id > spans_.size()) return;
  SpanRecord& rec = spans_[span_id - 1];
  if (rec.closed()) return;
  rec.end_micros = now;
  --open_count_;
}

uint64_t Tracer::CurrentSpanId() {
  const auto& stack = ThreadSpanStack();
  return stack.empty() ? 0 : stack.back();
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t Tracer::OpenSpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_count_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_count_ = 0;
  dropped_ = 0;
}

std::string Tracer::ExportChromeTrace() const {
  // Snapshot first (Spans() copies under the lock), format outside: a
  // concurrent job finishing spans mid-export can never corrupt the JSON.
  const std::vector<SpanRecord> spans = Spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!s.closed()) continue;  // incomplete spans are dropped from exports
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, s.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, s.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(s.thread_id);
    out += ",\"ts\":" + std::to_string(s.start_micros);
    out += ",\"dur\":" + std::to_string(s.end_micros - s.start_micros);
    out += ",\"args\":{\"span_id\":\"" + std::to_string(s.id) + "\"";
    if (s.parent_id != 0) {
      out += ",\"parent_id\":\"" + std::to_string(s.parent_id) + "\"";
    }
    for (const auto& [key, value] : s.tags) {
      out += ",\"";
      AppendJsonEscaped(&out, key);
      out += "\":\"";
      AppendJsonEscaped(&out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ExportChromeTrace();
  std::ofstream file(path, std::ios::trunc | std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  file << json;
  if (!file.good()) {
    return Status::IoError("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

TraceSpan::TraceSpan(const std::string& name, const std::string& category)
    : TraceSpan(name, category, 0) {}

TraceSpan::TraceSpan(const std::string& name, const std::string& category,
                     uint64_t parent_id) {
  id_ = Tracer::Global().BeginSpan(name, category, parent_id);
  if (id_ != 0) ThreadSpanStack().push_back(id_);
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  auto& stack = ThreadSpanStack();
  // RAII scoping makes this LIFO; tolerate an unbalanced stack anyway.
  if (!stack.empty() && stack.back() == id_) stack.pop_back();
  Tracer::Global().EndSpan(id_);
}

void TraceSpan::AddTag(const std::string& key, const std::string& value) {
  Tracer::Global().AddTag(id_, key, value);
}

void TraceSpan::AddTag(const std::string& key, int64_t value) {
  Tracer::Global().AddTag(id_, key, std::to_string(value));
}

}  // namespace rheem

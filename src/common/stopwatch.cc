#include "common/stopwatch.h"

#include <ctime>

namespace rheem {

int64_t ThreadCpuTimer::NowMicros() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000;
}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedMicros()) * 1e-6;
}

int64_t Stopwatch::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Stopwatch::ElapsedMillis() const {
  return static_cast<double>(ElapsedMicros()) * 1e-3;
}

}  // namespace rheem

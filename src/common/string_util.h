#ifndef RHEEM_COMMON_STRING_UTIL_H_
#define RHEEM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rheem {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

std::string ToLower(std::string_view s);

/// Renders n with thousands separators ("1,234,567") for benchmark tables.
std::string FormatCount(int64_t n);

/// Renders seconds with adaptive precision ("1.23 s", "45.6 ms", "789 us").
std::string FormatDuration(double seconds);

/// Renders bytes in binary units ("1.5 MiB").
std::string FormatBytes(int64_t bytes);

/// Renders `s` as a SQL single-quoted string literal with embedded quotes
/// doubled ("O'Brien" -> 'O''Brien'). Bytes outside ASCII pass through
/// untouched, so UTF-8 (or arbitrary binary) payloads round-trip through the
/// SQL frontends byte-for-byte. Shared by the core SQL dialect and relsim's
/// SQL generation so the two never drift on quoting.
std::string SqlQuoteString(std::string_view s);

}  // namespace rheem

#endif  // RHEEM_COMMON_STRING_UTIL_H_

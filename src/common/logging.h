#ifndef RHEEM_COMMON_LOGGING_H_
#define RHEEM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rheem {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink. Emits on destruction; used via the RHEEM_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rheem

#define RHEEM_LOG(level)                                              \
  ::rheem::internal_logging::LogMessage(::rheem::LogLevel::k##level, \
                                        __FILE__, __LINE__)

#endif  // RHEEM_COMMON_LOGGING_H_

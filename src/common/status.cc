#include "common/status.h"

namespace rheem {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInvalidPlan: return "InvalidPlan";
    case StatusCode::kExecutionError: return "ExecutionError";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_) state_ = std::make_unique<State>(*other.state_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
Status Status::InvalidPlan(std::string msg) {
  return Status(StatusCode::kInvalidPlan, std::move(msg));
}
Status Status::ExecutionError(std::string msg) {
  return Status(StatusCode::kExecutionError, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

const std::string& Status::message() const {
  return state_ ? state_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace rheem

#ifndef RHEEM_COMMON_STOPWATCH_H_
#define RHEEM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rheem {

/// \brief Wall-clock stopwatch used by the executor's monitoring and the
/// benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const;
  int64_t ElapsedMicros() const;
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Measures CPU time consumed by the *calling thread* — immune to
/// interleaving with other threads, which wall clocks are not. Used by the
/// sparksim virtual cluster clock to price each task's true work.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }

  void Restart() { start_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_; }

  /// Current thread-CPU clock reading in microseconds.
  static int64_t NowMicros();

 private:
  int64_t start_ = 0;
};

/// \brief Virtual clock that accumulates *simulated* time.
///
/// The sparksim platform charges cluster overheads (job submission, task
/// launch) to a SimClock instead of sleeping, so benchmarks report the
/// modelled distributed cost while still running at native speed. Combining
/// real elapsed compute time with simulated overhead time is the executor's
/// job (see ExecutionMetrics).
class SimClock {
 public:
  SimClock() = default;

  void AdvanceMicros(int64_t micros) { micros_ += micros; }
  void Reset() { micros_ = 0; }
  int64_t Micros() const { return micros_; }
  double Seconds() const { return static_cast<double>(micros_) * 1e-6; }

 private:
  int64_t micros_ = 0;
};

}  // namespace rheem

#endif  // RHEEM_COMMON_STOPWATCH_H_

#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace rheem {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatCount(int64_t n) {
  const bool neg = n < 0;
  uint64_t v = neg ? static_cast<uint64_t>(-(n + 1)) + 1 : static_cast<uint64_t>(n);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string FormatBytes(int64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string SqlQuoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  for (char c : s) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

}  // namespace rheem

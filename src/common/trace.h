#ifndef RHEEM_COMMON_TRACE_H_
#define RHEEM_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rheem {

/// \brief Span-based execution tracer connecting the three layers.
///
/// A span is one timed region with a name, a category, string tags and a
/// parent: job admission -> optimization (enumeration, costing, fusion
/// planning) -> per-stage execution -> per-kernel invocations all open spans,
/// so one submitted job renders as a single nested tree. Spans nest two
/// ways:
///  - implicitly: a span opened on a thread becomes the parent of the next
///    span opened on that same thread (thread-local span stack);
///  - explicitly: work handed to a pool worker passes the parent span id it
///    captured on the scheduling thread (TraceSpan's parent_id constructor),
///    which is how stage tasks stay children of their job and sparksim
///    partition tasks stay children of their stage.
///
/// Disabled (the default), every instrumentation site pays a single relaxed
/// atomic load and constructs nothing. Enabled, finished spans accumulate in
/// a bounded in-memory buffer that ExportChromeTrace() serializes in the
/// Chrome trace_event JSON format (open with chrome://tracing or Perfetto).
/// Export takes a consistent snapshot under the buffer lock and formats
/// outside it, so tracing jobs may keep finishing spans mid-export.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::string category;
  int64_t start_micros = 0;  // relative to the tracer epoch
  int64_t end_micros = -1;   // -1 while still open
  uint64_t thread_id = 0;    // stable per-thread ordinal, not the OS id
  std::vector<std::pair<std::string, std::string>> tags;

  bool closed() const { return end_micros >= 0; }
};

class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Spans retained before new ones are dropped (counted in
  /// dropped_spans()); keeps a pathological job from growing unbounded.
  void set_max_spans(std::size_t cap);
  int64_t dropped_spans() const;

  /// Opens a span. parent_id 0 means "parent = current span of this thread"
  /// (the top of the thread-local stack; 0 if none). Returns the span id, or
  /// 0 when tracing is disabled or the buffer is full.
  uint64_t BeginSpan(const std::string& name, const std::string& category,
                     uint64_t parent_id = 0);

  /// Attaches a key/value tag to an *open* span. No-op on id 0.
  void AddTag(uint64_t span_id, const std::string& key,
              const std::string& value);

  /// Closes the span. No-op on id 0 or an already-closed span.
  void EndSpan(uint64_t span_id);

  /// The innermost open span started by this thread (0 when none). Capture
  /// this before handing work to another thread to keep the tree connected.
  static uint64_t CurrentSpanId();

  /// Consistent snapshot of every recorded span (open and closed).
  std::vector<SpanRecord> Spans() const;

  /// Number of spans begun and not yet ended ("every span closes" checks).
  std::size_t OpenSpanCount() const;

  /// Drops all recorded spans (the per-thread stacks of *other* threads are
  /// untouched; call between jobs, not mid-span).
  void Clear();

  /// Chrome trace_event JSON ("traceEvents" complete events). Snapshot
  /// taken under the lock, serialization outside it.
  std::string ExportChromeTrace() const;

  /// ExportChromeTrace() to a file.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;     // index = id - 1
  std::size_t open_count_ = 0;
  std::size_t max_spans_ = 1 << 20;
  int64_t dropped_ = 0;
  std::atomic<bool> enabled_{false};
};

/// \brief RAII span: opens in the constructor (when tracing is enabled),
/// closes in the destructor, and maintains the thread-local nesting stack.
/// Move-only value semantics are intentionally absent — bind one to a scope.
class TraceSpan {
 public:
  /// Child of the current thread's innermost span.
  TraceSpan(const std::string& name, const std::string& category);
  /// Child of an explicit parent (cross-thread edges). parent_id 0 falls
  /// back to the thread-local parent.
  TraceSpan(const std::string& name, const std::string& category,
            uint64_t parent_id);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return id_; }
  bool active() const { return id_ != 0; }

  void AddTag(const std::string& key, const std::string& value);
  void AddTag(const std::string& key, int64_t value);

 private:
  uint64_t id_ = 0;
};

}  // namespace rheem

#endif  // RHEEM_COMMON_TRACE_H_

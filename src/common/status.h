#ifndef RHEEM_COMMON_STATUS_H_
#define RHEEM_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace rheem {

/// \brief Error categories used across the library.
///
/// The set intentionally mirrors the failure modes a cross-platform task can
/// hit: invalid plans, unsupported operator/platform combinations, runtime
/// execution failures, and I/O problems at the storage layer.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kUnsupported = 4,
  kInvalidPlan = 5,
  kExecutionError = 6,
  kIoError = 7,
  kOutOfRange = 8,
  kInternal = 9,
  kResourceExhausted = 10,
  kCancelled = 11,
  kDeadlineExceeded = 12,
};

/// \brief Returns a human-readable name for a status code ("InvalidPlan", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style status object carried by all fallible APIs.
///
/// An OK status is represented by a null state pointer, so returning OK is
/// free of allocation. Statuses are cheap to move and copyable.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status Unsupported(std::string msg);
  static Status InvalidPlan(std::string msg);
  static Status ExecutionError(std::string msg);
  static Status IoError(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Internal(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Cancelled(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  /// \brief Full "Code: message" rendering for logs and test failures.
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsInvalidPlan() const { return code() == StatusCode::kInvalidPlan; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// \brief Prepends context to the message, keeping the code.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null == OK
};

bool operator==(const Status& a, const Status& b);

}  // namespace rheem

/// Propagates a non-OK Status from the current function.
#define RHEEM_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::rheem::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define RHEEM_CONCAT_IMPL(x, y) x##y
#define RHEEM_CONCAT(x, y) RHEEM_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define RHEEM_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto RHEEM_CONCAT(_result_, __LINE__) = (rexpr);                    \
  if (!RHEEM_CONCAT(_result_, __LINE__).ok())                         \
    return RHEEM_CONCAT(_result_, __LINE__).status();                 \
  lhs = std::move(RHEEM_CONCAT(_result_, __LINE__)).ValueOrDie()

#endif  // RHEEM_COMMON_STATUS_H_

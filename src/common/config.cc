#include "common/config.h"

#include <cstdlib>

#include "common/string_util.h"

namespace rheem {

void Config::Set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

void Config::SetInt(const std::string& key, int64_t value) {
  entries_[key] = std::to_string(value);
}

void Config::SetDouble(const std::string& key, double value) {
  entries_[key] = std::to_string(value);
}

void Config::SetBool(const std::string& key, bool value) {
  entries_[key] = value ? "true" : "false";
}

bool Config::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

Result<std::string> Config::GetString(const std::string& key,
                                      const std::string& fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  return it->second;
}

Result<int64_t> Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not an integer: " + it->second);
  }
  return static_cast<int64_t>(v);
}

Result<double> Config::GetDouble(const std::string& key,
                                 double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not a double: " + it->second);
  }
  return v;
}

Result<bool> Config::GetBool(const std::string& key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("config key '" + key +
                                 "' is not a bool: " + it->second);
}

void Config::MergeFrom(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_[k] = v;
}

}  // namespace rheem

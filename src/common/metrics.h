#ifndef RHEEM_COMMON_METRICS_H_
#define RHEEM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rheem {

class Config;

/// \brief Process-wide metrics for the three execution layers (service,
/// optimizer/executor, platform kernels).
///
/// The paper's Executor "monitors the execution of tasks" (§4.2); the
/// per-job ExecutionMetrics struct reports one job's totals, while this
/// registry is the *process* view a serving deployment scrapes: counters,
/// gauges and fixed-bucket histograms keyed by dotted names
/// ("executor.stages_total", "kernels.morsels_executed").
///
/// Concurrency contract:
///  - Instrument sites pay one relaxed atomic load when disabled (the
///    `enabled` flag) and one relaxed fetch_add when enabled.
///  - Metric objects are created once and never destroyed until Reset();
///    pointers returned by counter()/gauge()/histogram() stay valid across
///    Snapshot() calls.
///  - Snapshot() copies every value under the registry lock into a plain
///    struct — it never exposes the live map, so exporters may format and
///    write while jobs keep executing (snapshot-during-Submit safe).
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Histogram with fixed bucket upper bounds (le semantics) set at creation.
/// Observe() is lock-free; buckets never resize.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i].
  int64_t bucket_count(std::size_t i) const;

 private:
  friend class MetricsRegistry;
  std::vector<int64_t> bounds_;                       // ascending, fixed
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;   // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Default exponential microsecond bounds shared by the latency histograms.
const std::vector<int64_t>& DefaultLatencyBoundsMicros();

/// One consistent copy of the registry, safe to format/serialize while
/// execution continues.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<int64_t> bounds;
    std::vector<int64_t> cumulative;  // per bound, plus +Inf as last element
    int64_t count = 0;
    int64_t sum = 0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramValue> histograms;

  /// Value of a counter (0 when absent) — test/report convenience.
  int64_t counter(const std::string& name) const;
  std::string ToString() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& Global();

  /// Cheap relaxed-atomic gate checked by every instrumentation site.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Get-or-create. Thread-safe; the returned pointer stays valid for the
  /// process lifetime (Reset() zeroes values in place, it never destroys
  /// metric objects). Histogram bounds are fixed by the first creation;
  /// later callers get the existing instance regardless of `bounds`.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       const std::vector<int64_t>& bounds);

  /// Consistent point-in-time copy (never iterates a live map outside the
  /// lock; see class comment).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place. Previously returned pointers remain
  /// valid (they observe the zeroed values) — safe for test setup even while
  /// instrumented code holds cached pointers.
  void Reset();

  /// Human-readable dump of Snapshot().
  std::string ReportText() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<bool> enabled_{false};
};

/// Convenience used by hot paths: counter lookup amortized by the caller
/// (static-local pointer), addition gated on the registry's enabled flag.
inline void CountIfEnabled(Counter* c, int64_t delta) {
  if (MetricsRegistry::Global().enabled()) c->Add(delta);
}

/// Applies the observability keys of `config` to the process-wide registry
/// and tracer. Only keys that are *present* take effect, so contexts without
/// an opinion never disable what another context enabled.
///
/// Keys:
///   metrics.enabled  (bool)   turn the metrics registry on/off
///   trace.enabled    (bool)   turn the span tracer on/off
///   trace.path       (string) non-empty implies trace.enabled=true; the
///                             serving/execution layers write a Chrome
///                             trace_event JSON file here after each job.
void ApplyObservabilityConfig(const Config& config);

}  // namespace rheem

#endif  // RHEEM_COMMON_METRICS_H_

#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace rheem {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

bool ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  struct SharedState {
    std::atomic<std::size_t> remaining;
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<SharedState>();
  state->remaining.store(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto task = [state, &fn, i]() {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    };
    // A shut-down pool cannot run the task; do it inline so the barrier
    // below still completes.
    if (!Schedule(task)) task();
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&]() { return state->remaining.load() == 0; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace rheem

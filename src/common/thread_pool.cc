#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace rheem {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

bool ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Work-claiming: helpers and the caller pull indices off a shared counter.
  // The caller always participates, so the loop completes even when every
  // pool worker is blocked in a nested ParallelFor — a real situation now
  // that morsel-parallel kernels run inside stages that themselves execute
  // on pool workers.
  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<SharedState>();
  state->n = n;
  state->fn = &fn;  // valid until done == n; the caller blocks below
  auto drain = [](const std::shared_ptr<SharedState>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1);
      if (i >= s->n) return;
      try {
        (*s->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (!s->first_error) s->first_error = std::current_exception();
      }
      if (s->done.fetch_add(1) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->done_cv.notify_all();
      }
    }
  };
  const std::size_t helpers = std::min(num_threads(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    // A shut-down pool cannot carry helpers; the caller drains alone.
    if (!Schedule([state, drain]() { drain(state); })) break;
  }
  drain(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&]() { return state->done.load() == n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace rheem

#ifndef RHEEM_COMMON_THREAD_POOL_H_
#define RHEEM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rheem {

/// \brief Fixed-size worker pool backing the sparksim platform's "cluster".
///
/// Each worker thread models one executor slot. Tasks are plain
/// std::function<void()>; callers needing results use Submit(), which wraps
/// the callable in a packaged_task and returns its future.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Number of tasks waiting in the queue (excludes tasks already running).
  std::size_t pending() const;

  /// Enqueues a fire-and-forget task. Returns false (dropping the task)
  /// when the pool has been shut down — no worker would ever run it.
  bool Schedule(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. If the pool is
  /// already shut down the returned future reports std::broken_promise.
  template <typename F>
  auto Submit(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Schedule([task]() { (*task)(); });
    return fut;
  }

  /// Drains queued tasks and joins the workers. Idempotent; called by the
  /// destructor. After shutdown Schedule() rejects new tasks.
  void Shutdown();

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all finish.
  /// Exceptions escaping fn are rethrown on the calling thread (first one).
  /// The calling thread claims work itself, so nesting is safe: a pool
  /// worker may call ParallelFor on its own pool without deadlocking even
  /// when every other worker is blocked the same way.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// \brief Process-wide default pool sized to the hardware concurrency.
/// Lives for the whole process (never destroyed), per static-lifetime rules.
ThreadPool& DefaultThreadPool();

}  // namespace rheem

#endif  // RHEEM_COMMON_THREAD_POOL_H_

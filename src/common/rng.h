#ifndef RHEEM_COMMON_RNG_H_
#define RHEEM_COMMON_RNG_H_

#include <cstdint>

namespace rheem {

/// \brief Deterministic, seedable PRNG (xoshiro256** core) used by every
/// generator in the repository so experiments are reproducible bit-for-bit.
///
/// std::mt19937 would also do, but its state is large and its distributions
/// are implementation-defined; this class fixes both the engine and the
/// distribution algorithms so results match across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic pairing).
  double NextGaussian();

  /// Bernoulli trial with probability p of true.
  bool NextBool(double p = 0.5);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace rheem

#endif  // RHEEM_COMMON_RNG_H_

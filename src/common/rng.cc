#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace rheem {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands a single seed into the full xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  has_spare_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace rheem

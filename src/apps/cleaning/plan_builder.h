#ifndef RHEEM_APPS_CLEANING_PLAN_BUILDER_H_
#define RHEEM_APPS_CLEANING_PLAN_BUILDER_H_

#include <string>

#include "apps/cleaning/rule.h"
#include "apps/cleaning/violation.h"
#include "common/result.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace cleaning {

/// How to compile a rule's detection into a RHEEM physical pipeline. The
/// three strategies are the contenders of the paper's Figure 3:
enum class DetectStrategy {
  /// One black-box Detect UDF over the whole pair space: the table is
  /// cross-producted and the UDF filters pairs (Figure 3-left baseline and
  /// the "state of the art on Spark" shape of Figure 3-right).
  kMonolithicUdf,
  /// The BigDansing operator pipeline: Scope -> Block -> Iterate -> Detect
  /// for blockable rules (FDs), Scope -> theta-join Detect otherwise —
  /// finer operator granularity the platform can distribute.
  kOperatorPipeline,
  /// The pipeline with the IEJoin physical operator for inequality rules —
  /// the extensibility showcase (paper §5.1).
  kOperatorPipelineIEJoin,
  /// Detect as a typed expression (Rule::PairPredicateExpr) on a declarative
  /// theta join: the optimizer sees the predicate — per-expression
  /// selectivity, pretty EXPLAIN/span output and constant-sound plan
  /// fingerprints — instead of a closure. Rules without a declarative form
  /// (UDF rules) reject this strategy.
  kDeclarativeExpr,
};

const char* DetectStrategyToString(DetectStrategy strategy);

struct DetectOptions {
  DetectStrategy strategy = DetectStrategy::kOperatorPipeline;
  /// Forwarded to the optimizer; empty = RHEEM chooses the platform.
  std::string force_platform;
};

/// \brief BigDansing's application optimizer: compiles `rule` into a
/// detection pipeline over `table`, runs it, and decodes the violations.
///
/// `table` rows are plain records; tuple ids are assigned positionally by a
/// ZipWithId at the head of every pipeline, so tids equal row indices.
Result<ViolationReport> DetectViolations(RheemContext* ctx,
                                         const Dataset& table,
                                         const Rule& rule,
                                         const DetectOptions& options = {});

/// Reference brute-force detector (nested loop over raw records); ground
/// truth for tests and the time-capped baseline of Figure 3-right.
Result<std::vector<Violation>> DetectViolationsBruteForce(const Dataset& table,
                                                          const Rule& rule);

}  // namespace cleaning
}  // namespace rheem

#endif  // RHEEM_APPS_CLEANING_PLAN_BUILDER_H_

#include "apps/cleaning/violation.h"

namespace rheem {
namespace cleaning {

std::string ViolationReport::ToString(std::size_t max_rows) const {
  std::string out = std::to_string(violations.size()) + " violation(s)\n";
  for (std::size_t i = 0; i < violations.size() && i < max_rows; ++i) {
    const Violation& v = violations[i];
    out += "  [" + v.rule_id + "] t" + std::to_string(v.tid1) + " x t" +
           std::to_string(v.tid2) + "\n";
  }
  if (violations.size() > max_rows) {
    out += "  ... (" + std::to_string(violations.size() - max_rows) +
           " more)\n";
  }
  return out;
}

Record ViolationToRecord(const Violation& v) {
  return Record({Value(v.rule_id), Value(v.tid1), Value(v.tid2)});
}

Result<Violation> ViolationFromRecord(const Record& r) {
  if (r.size() != 3 || r[0].type() != ValueType::kString) {
    return Status::InvalidArgument("not a violation record: " + r.ToString());
  }
  Violation v;
  v.rule_id = r[0].string_unchecked();
  v.tid1 = r[1].ToInt64Or(-1);
  v.tid2 = r[2].ToInt64Or(-1);
  return v;
}

}  // namespace cleaning
}  // namespace rheem

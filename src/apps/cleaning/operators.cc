#include "apps/cleaning/operators.h"

namespace rheem {
namespace cleaning {

Result<Record> ScopeOperator::ScopeRecord(const Rule& rule,
                                          const Record& with_tid) {
  if (with_tid.empty()) {
    return Status::InvalidArgument("record has no tid field");
  }
  std::vector<Value> fields;
  const std::vector<int> scope = rule.ScopeColumns();
  fields.reserve(scope.size() + 1);
  fields.push_back(with_tid[with_tid.size() - 1]);  // tid appended last
  for (int c : scope) {
    if (c < 0 || static_cast<std::size_t>(c) + 1 >= with_tid.size()) {
      return Status::OutOfRange("scope column " + std::to_string(c) +
                                " out of range");
    }
    fields.push_back(with_tid[static_cast<std::size_t>(c)]);
  }
  return Record(std::move(fields));
}

Status ScopeOperator::ApplyOp(const Record& in, std::vector<Record>* out) {
  RHEEM_ASSIGN_OR_RETURN(Record scoped, ScopeRecord(*rule_, in));
  out->push_back(std::move(scoped));
  return Status::OK();
}

Status BlockOperator::ApplyOp(const Record& in, std::vector<Record>* out) {
  KeyUdf key = rule_->BlockKey();
  if (!key.fn) {
    return Status::Unsupported("rule '" + rule_->id() +
                               "' has no blocking key");
  }
  std::vector<Value> fields;
  fields.reserve(in.size() + 1);
  fields.push_back(key.fn(in));
  for (const Value& v : in.fields()) fields.push_back(v);
  out->push_back(Record(std::move(fields)));
  return Status::OK();
}

Status IterateOperator::ApplyOp(const Record&, std::vector<Record>*) {
  return Status::Unsupported("Clean:Iterate enumerates pairs per block; use "
                             "CandidatePairs");
}

std::vector<std::pair<std::size_t, std::size_t>> IterateOperator::CandidatePairs(
    std::size_t block_size, bool symmetric) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  if (symmetric) {
    pairs.reserve(block_size * (block_size - 1) / 2);
    for (std::size_t i = 0; i < block_size; ++i) {
      for (std::size_t j = i + 1; j < block_size; ++j) {
        pairs.emplace_back(i, j);
      }
    }
  } else {
    pairs.reserve(block_size * block_size);
    for (std::size_t i = 0; i < block_size; ++i) {
      for (std::size_t j = 0; j < block_size; ++j) {
        if (i != j) pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

Status DetectOperator::ApplyOp(const Record&, std::vector<Record>*) {
  return Status::Unsupported("Clean:Detect is pairwise; use DetectPair");
}

void DetectOperator::DetectPair(const Rule& rule, const Record& t1,
                                const Record& t2, std::vector<Record>* out) {
  if (!rule.Detect(t1, t2)) return;
  Violation v;
  v.rule_id = rule.id();
  v.tid1 = t1[0].ToInt64Or(-1);
  v.tid2 = t2[0].ToInt64Or(-1);
  if (rule.symmetric() && v.tid2 < v.tid1) std::swap(v.tid1, v.tid2);
  out->push_back(ViolationToRecord(v));
}

Status GenFixOperator::ApplyOp(const Record& in, std::vector<Record>* out) {
  // Violation quanta in, fix quanta out: (tid, column, suggestion).
  RHEEM_ASSIGN_OR_RETURN(Violation v, ViolationFromRecord(in));
  // Without the scoped tuples at hand, propose oracle fixes on both sides.
  out->push_back(Record({Value(v.tid1), Value(int64_t{-1}), Value::Null()}));
  out->push_back(Record({Value(v.tid2), Value(int64_t{-1}), Value::Null()}));
  return Status::OK();
}

std::vector<Fix> GenFixOperator::FixesFor(const Rule& rule, const Violation& v,
                                          const Record& t1_scoped,
                                          const Record& t2_scoped) {
  std::vector<Fix> fixes;
  if (rule.kind() == RuleKind::kFunctionalDependency) {
    const auto& fd = static_cast<const FdRule&>(rule);
    for (std::size_t i = 0; i < fd.rhs().size(); ++i) {
      const std::size_t pos = 1 + fd.lhs().size() + i;
      if (t1_scoped[pos] == t2_scoped[pos]) continue;
      // Two candidate fixes: align either side with the other.
      fixes.push_back(Fix{v.tid1, fd.rhs()[i], t2_scoped[pos]});
      fixes.push_back(Fix{v.tid2, fd.rhs()[i], t1_scoped[pos]});
    }
  } else {
    // Inequality/UDF rules: flag the offending cells for an oracle.
    const std::vector<int> scope = rule.ScopeColumns();
    for (int col : scope) {
      fixes.push_back(Fix{v.tid1, col, Value::Null()});
      fixes.push_back(Fix{v.tid2, col, Value::Null()});
    }
  }
  return fixes;
}

}  // namespace cleaning
}  // namespace rheem

#ifndef RHEEM_APPS_CLEANING_REPAIR_H_
#define RHEEM_APPS_CLEANING_REPAIR_H_

#include <vector>

#include "apps/cleaning/rule.h"
#include "apps/cleaning/violation.h"
#include "common/result.h"
#include "data/dataset.h"

namespace rheem {
namespace cleaning {

/// \brief Equivalence-class repair for functional dependencies: tuples
/// connected by violations of the same FD form classes; within a class each
/// rhs column is set to the class's most frequent value (ties broken by
/// value order). This is the "possible repairs generation" half of the
/// BigDansing application (paper §5.1: GenFix).
///
/// `table` rows are addressed by tid = row index (matching DetectViolations).
Result<std::vector<Fix>> GenerateFdFixes(const Dataset& table,
                                         const FdRule& rule,
                                         const std::vector<Violation>& violations);

/// Applies fixes in order (later fixes win on conflicts). Fixes with a null
/// suggestion are skipped (they need an oracle).
Result<Dataset> ApplyFixes(const Dataset& table, const std::vector<Fix>& fixes);

/// Number of tuples any fix touches (reporting convenience).
std::size_t CountFixedTuples(const std::vector<Fix>& fixes);

}  // namespace cleaning
}  // namespace rheem

#endif  // RHEEM_APPS_CLEANING_REPAIR_H_

#include "apps/cleaning/rule.h"

namespace rheem {
namespace cleaning {

const char* RuleKindToString(RuleKind kind) {
  switch (kind) {
    case RuleKind::kFunctionalDependency: return "FD";
    case RuleKind::kInequalityDenialConstraint: return "IneqDC";
    case RuleKind::kUdf: return "UDF";
  }
  return "?";
}

std::vector<int> FdRule::ScopeColumns() const {
  std::vector<int> cols = lhs_;
  cols.insert(cols.end(), rhs_.begin(), rhs_.end());
  return cols;
}

KeyUdf FdRule::BlockKey() const {
  // Scoped layout: (tid, lhs..., rhs...). The block key concatenates the
  // lhs values (rendered) so tuples sharing the determinant land together.
  const std::size_t nlhs = lhs_.size();
  KeyUdf key;
  key.fn = [nlhs](const Record& scoped) {
    std::string k;
    for (std::size_t i = 0; i < nlhs; ++i) {
      k += scoped[1 + i].ToString();
      k += '\x1f';  // unit separator avoids ("a","bc") == ("ab","c")
    }
    return Value(std::move(k));
  };
  key.meta.selectivity = 0.05;  // distinct-block ratio hint
  return key;
}

bool FdRule::Detect(const Record& t1, const Record& t2) const {
  // Positions in the scoped layout.
  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    if (t1[1 + i] != t2[1 + i]) return false;
  }
  for (std::size_t i = 0; i < rhs_.size(); ++i) {
    const std::size_t pos = 1 + lhs_.size() + i;
    if (t1[pos] != t2[pos]) return true;
  }
  return false;
}

bool IneqRule::Detect(const Record& t1, const Record& t2) const {
  return EvalCompare(op1_, t1[1], t2[1]) && EvalCompare(op2_, t1[2], t2[2]);
}

IEJoinSpec IneqRule::ScopedIEJoinSpec() const {
  IEJoinSpec spec;
  spec.left_col1 = 1;
  spec.right_col1 = 1;
  spec.op1 = op1_;
  spec.left_col2 = 2;
  spec.right_col2 = 2;
  spec.op2 = op2_;
  return spec;
}

KeyUdf UdfRule::BlockKey() const {
  if (!block_key_) return KeyUdf{};
  KeyUdf key;
  key.fn = block_key_;
  key.meta.selectivity = 0.05;
  return key;
}

}  // namespace cleaning
}  // namespace rheem

#include "apps/cleaning/rule.h"

namespace rheem {
namespace cleaning {

const char* RuleKindToString(RuleKind kind) {
  switch (kind) {
    case RuleKind::kFunctionalDependency: return "FD";
    case RuleKind::kInequalityDenialConstraint: return "IneqDC";
    case RuleKind::kUdf: return "UDF";
  }
  return "?";
}

std::vector<int> FdRule::ScopeColumns() const {
  std::vector<int> cols = lhs_;
  cols.insert(cols.end(), rhs_.begin(), rhs_.end());
  return cols;
}

KeyUdf FdRule::BlockKey() const {
  // Scoped layout: (tid, lhs..., rhs...). The block key concatenates the
  // lhs values (rendered) so tuples sharing the determinant land together.
  const std::size_t nlhs = lhs_.size();
  KeyUdf key;
  key.fn = [nlhs](const Record& scoped) {
    std::string k;
    for (std::size_t i = 0; i < nlhs; ++i) {
      k += scoped[1 + i].ToString();
      k += '\x1f';  // unit separator avoids ("a","bc") == ("ab","c")
    }
    return Value(std::move(k));
  };
  key.meta.selectivity = 0.05;  // distinct-block ratio hint
  return key;
}

bool FdRule::Detect(const Record& t1, const Record& t2) const {
  // Positions in the scoped layout.
  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    if (t1[1 + i] != t2[1 + i]) return false;
  }
  for (std::size_t i = 0; i < rhs_.size(); ++i) {
    const std::size_t pos = 1 + lhs_.size() + i;
    if (t1[pos] != t2[pos]) return true;
  }
  return false;
}

expr::ExprPtr FdRule::PairPredicateExpr(
    const std::vector<ValueType>& scope_types) const {
  // Scoped layout per side: (tid, lhs..., rhs...). The BigDansing φ1-style
  // rule reads: agree on every determinant column AND differ somewhere on
  // the dependent side.
  if (rhs_.empty() || scope_types.size() != lhs_.size() + rhs_.size()) {
    return nullptr;
  }
  const int w = 1 + static_cast<int>(scope_types.size());
  auto side_field = [&](int side, std::size_t scoped_pos, int table_col) {
    const int base = side == 0 ? 0 : w;
    const std::string name =
        "t" + std::to_string(side + 1) + ".c" + std::to_string(table_col);
    return expr::Field(base + 1 + static_cast<int>(scoped_pos),
                       scope_types[scoped_pos], name);
  };
  std::vector<expr::ExprPtr> agree;
  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    agree.push_back(expr::Eq(side_field(0, i, lhs_[i]), side_field(1, i, lhs_[i])));
  }
  expr::ExprPtr differ;
  for (std::size_t i = 0; i < rhs_.size(); ++i) {
    const std::size_t pos = lhs_.size() + i;
    auto ne = expr::Ne(side_field(0, pos, rhs_[i]), side_field(1, pos, rhs_[i]));
    differ = differ == nullptr ? ne : expr::Or(differ, ne);
  }
  if (agree.empty()) return differ;
  agree.push_back(differ);
  return expr::AndAll(agree);
}

bool IneqRule::Detect(const Record& t1, const Record& t2) const {
  return EvalCompare(op1_, t1[1], t2[1]) && EvalCompare(op2_, t1[2], t2[2]);
}

expr::ExprPtr IneqRule::PairPredicateExpr(
    const std::vector<ValueType>& scope_types) const {
  if (scope_types.size() != 2) return nullptr;
  const int w = 3;  // (tid, col1, col2) per side
  auto cmp = [](CompareOp op, expr::ExprPtr a, expr::ExprPtr b) {
    switch (op) {
      case CompareOp::kLess: return expr::Lt(std::move(a), std::move(b));
      case CompareOp::kLessEqual: return expr::Le(std::move(a), std::move(b));
      case CompareOp::kGreater: return expr::Gt(std::move(a), std::move(b));
      case CompareOp::kGreaterEqual: return expr::Ge(std::move(a), std::move(b));
    }
    return expr::ExprPtr();
  };
  return expr::And(
      cmp(op1_, expr::Field(1, scope_types[0], "t1.c" + std::to_string(col1_)),
          expr::Field(w + 1, scope_types[0], "t2.c" + std::to_string(col1_))),
      cmp(op2_, expr::Field(2, scope_types[1], "t1.c" + std::to_string(col2_)),
          expr::Field(w + 2, scope_types[1], "t2.c" + std::to_string(col2_))));
}

IEJoinSpec IneqRule::ScopedIEJoinSpec() const {
  IEJoinSpec spec;
  spec.left_col1 = 1;
  spec.right_col1 = 1;
  spec.op1 = op1_;
  spec.left_col2 = 2;
  spec.right_col2 = 2;
  spec.op2 = op2_;
  return spec;
}

KeyUdf UdfRule::BlockKey() const {
  if (!block_key_) return KeyUdf{};
  KeyUdf key;
  key.fn = block_key_;
  key.meta.selectivity = 0.05;
  return key;
}

}  // namespace cleaning
}  // namespace rheem

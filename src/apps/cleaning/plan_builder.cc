#include "apps/cleaning/plan_builder.h"

#include <algorithm>

#include "apps/cleaning/operators.h"

namespace rheem {
namespace cleaning {

const char* DetectStrategyToString(DetectStrategy strategy) {
  switch (strategy) {
    case DetectStrategy::kMonolithicUdf: return "monolithic-udf";
    case DetectStrategy::kOperatorPipeline: return "operator-pipeline";
    case DetectStrategy::kOperatorPipelineIEJoin: return "pipeline+iejoin";
    case DetectStrategy::kDeclarativeExpr: return "declarative-expr";
  }
  return "?";
}

namespace {

/// ZipWithId + Scope: every strategy starts by attaching tids and projecting
/// onto the rule's scoped layout.
DataQuanta ScopedInput(RheemJob* job, const Dataset& table, const Rule& rule) {
  return job->LoadCollection(table).ZipWithId().FlatMap(
      [&rule](const Record& with_tid) -> std::vector<Record> {
        auto scoped = ScopeOperator::ScopeRecord(rule, with_tid);
        if (!scoped.ok()) return {};
        std::vector<Record> out;
        out.push_back(std::move(scoped).ValueOrDie());
        return out;
      },
      UdfMeta{1.0, 1.0});
}

/// Group members -> violation records, via Iterate + Detect.
std::vector<Record> DetectWithinGroup(const Rule& rule,
                                      const std::vector<Record>& members) {
  std::vector<Record> out;
  for (const auto& [i, j] :
       IterateOperator::CandidatePairs(members.size(), rule.symmetric())) {
    DetectOperator::DetectPair(rule, members[i], members[j], &out);
  }
  return out;
}

/// Joined-pair record (concat of two scoped records of width `w`) ->
/// violation record.
Record JoinedPairToViolation(const Rule& rule, std::size_t w, const Record& pair) {
  Violation v;
  v.rule_id = rule.id();
  v.tid1 = pair[0].ToInt64Or(-1);
  v.tid2 = pair[w].ToInt64Or(-1);
  if (rule.symmetric() && v.tid2 < v.tid1) std::swap(v.tid1, v.tid2);
  return ViolationToRecord(v);
}

/// Value types of the rule's scope columns — from the table schema when
/// present, otherwise sampled from the first row. The declarative strategy
/// needs static types to build a well-typed pair predicate.
Result<std::vector<ValueType>> ScopeColumnTypes(const Dataset& table,
                                                const Rule& rule) {
  std::vector<ValueType> types;
  for (int col : rule.ScopeColumns()) {
    if (col < 0) return Status::InvalidArgument("negative scope column");
    const auto c = static_cast<std::size_t>(col);
    if (table.has_schema() && c < table.schema().num_fields()) {
      types.push_back(table.schema().field(c).type);
    } else if (!table.empty() && c < table.at(0).size()) {
      types.push_back(table.at(0).at(c).type());
    } else {
      return Status::InvalidArgument("cannot infer type of scope column " +
                                     std::to_string(col));
    }
  }
  return types;
}

}  // namespace

Result<ViolationReport> DetectViolations(RheemContext* ctx,
                                         const Dataset& table,
                                         const Rule& rule,
                                         const DetectOptions& options) {
  RheemJob job(ctx);
  job.options().force_platform = options.force_platform;

  DataQuanta scoped = ScopedInput(&job, table, rule);
  const std::size_t w = 1 + rule.ScopeColumns().size();
  DataQuanta violations;

  switch (options.strategy) {
    case DetectStrategy::kMonolithicUdf: {
      // One opaque Detect UDF sees the whole dataset: everything is grouped
      // under a constant key and a single group call runs the quadratic
      // detection — no operator-level parallelism for the platform to
      // exploit (the left baseline of Figure 3).
      violations = scoped.GroupByKey(
          [](const Record&) { return Value(int64_t{0}); },
          [&rule](const Value&, const std::vector<Record>& members) {
            return DetectWithinGroup(rule, members);
          },
          /*key_distinct_ratio=*/0.0001);
      break;
    }
    case DetectStrategy::kOperatorPipeline: {
      KeyUdf block = rule.BlockKey();
      if (block.fn) {
        // Scope -> Block -> Iterate -> Detect: candidate pairs only meet
        // inside their block, and blocks parallelize.
        auto block_fn = block.fn;
        violations = scoped.GroupByKey(
            [block_fn](const Record& r) { return block_fn(r); },
            [&rule](const Value&, const std::vector<Record>& members) {
              return DetectWithinGroup(rule, members);
            },
            block.meta.selectivity);
      } else {
        // Unblockable rule: pairwise Detect as a theta join (still finer
        // grained than the monolithic UDF — partitions run in parallel).
        DataQuanta joined = scoped.ThetaJoin(
            scoped,
            [&rule](const Record& t1, const Record& t2) {
              if (rule.symmetric() &&
                  t1[0].ToInt64Or(-1) >= t2[0].ToInt64Or(-1)) {
                return false;
              }
              return rule.Detect(t1, t2);
            },
            /*selectivity=*/0.01);
        violations = joined.Map([&rule, w](const Record& pair) {
          return JoinedPairToViolation(rule, w, pair);
        });
      }
      break;
    }
    case DetectStrategy::kOperatorPipelineIEJoin: {
      if (rule.kind() != RuleKind::kInequalityDenialConstraint) {
        return Status::InvalidArgument(
            "IEJoin strategy applies to inequality denial constraints only");
      }
      const auto& ineq = static_cast<const IneqRule&>(rule);
      DataQuanta joined = scoped.IEJoin(scoped, ineq.ScopedIEJoinSpec());
      violations = joined.Map([&rule, w](const Record& pair) {
        return JoinedPairToViolation(rule, w, pair);
      });
      break;
    }
    case DetectStrategy::kDeclarativeExpr: {
      RHEEM_ASSIGN_OR_RETURN(std::vector<ValueType> types,
                             ScopeColumnTypes(table, rule));
      expr::ExprPtr pred = rule.PairPredicateExpr(types);
      if (pred == nullptr) {
        return Status::InvalidArgument(
            "rule '" + rule.id() + "' has no declarative pair predicate");
      }
      if (rule.symmetric()) {
        // Same dedup as the closure path: each unordered pair emits once.
        pred = expr::And(expr::Lt(expr::Field(0, ValueType::kInt64, "tid1"),
                                  expr::Field(static_cast<int>(w),
                                              ValueType::kInt64, "tid2")),
                         std::move(pred));
      }
      DataQuanta joined = scoped.ThetaJoin(scoped, std::move(pred));
      violations = joined.Map([&rule, w](const Record& pair) {
        return JoinedPairToViolation(rule, w, pair);
      });
      break;
    }
  }

  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result,
                         violations.CollectWithMetrics());
  ViolationReport report;
  report.metrics = result.metrics;
  report.violations.reserve(result.output.size());
  for (const Record& r : result.output.records()) {
    RHEEM_ASSIGN_OR_RETURN(Violation v, ViolationFromRecord(r));
    report.violations.push_back(std::move(v));
  }
  std::sort(report.violations.begin(), report.violations.end());
  return report;
}

Result<std::vector<Violation>> DetectViolationsBruteForce(const Dataset& table,
                                                          const Rule& rule) {
  // Scope every record with tid = row index.
  std::vector<Record> scoped;
  scoped.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    Record with_tid = table.at(i);
    with_tid.Append(Value(static_cast<int64_t>(i)));
    RHEEM_ASSIGN_OR_RETURN(Record s, ScopeOperator::ScopeRecord(rule, with_tid));
    scoped.push_back(std::move(s));
  }
  std::vector<Record> found;
  for (const auto& [i, j] :
       IterateOperator::CandidatePairs(scoped.size(), rule.symmetric())) {
    DetectOperator::DetectPair(rule, scoped[i], scoped[j], &found);
  }
  std::vector<Violation> out;
  out.reserve(found.size());
  for (const Record& r : found) {
    RHEEM_ASSIGN_OR_RETURN(Violation v, ViolationFromRecord(r));
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cleaning
}  // namespace rheem

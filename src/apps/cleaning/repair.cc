#include "apps/cleaning/repair.h"

#include <map>
#include <set>

namespace rheem {
namespace cleaning {

namespace {

/// Union-find over tuple ids.
class TidUnionFind {
 public:
  int64_t Find(int64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    while (it->second != x) {
      x = it->second;
      it = parent_.find(x);
    }
    return x;
  }
  void Merge(int64_t a, int64_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::map<int64_t, int64_t> parent_;
};

}  // namespace

Result<std::vector<Fix>> GenerateFdFixes(
    const Dataset& table, const FdRule& rule,
    const std::vector<Violation>& violations) {
  // 1. Build equivalence classes of tuples connected by violations.
  TidUnionFind uf;
  for (const Violation& v : violations) {
    if (v.rule_id != rule.id()) continue;
    if (v.tid1 < 0 || v.tid2 < 0 ||
        static_cast<std::size_t>(v.tid1) >= table.size() ||
        static_cast<std::size_t>(v.tid2) >= table.size()) {
      return Status::OutOfRange("violation references tuple outside table");
    }
    uf.Merge(v.tid1, v.tid2);
  }
  std::map<int64_t, std::vector<int64_t>> classes;
  for (const Violation& v : violations) {
    if (v.rule_id != rule.id()) continue;
    classes[uf.Find(v.tid1)];  // ensure the class exists
  }
  // Collect members (each tid once).
  std::set<int64_t> seen;
  for (const Violation& v : violations) {
    if (v.rule_id != rule.id()) continue;
    for (int64_t tid : {v.tid1, v.tid2}) {
      if (seen.insert(tid).second) {
        classes[uf.Find(tid)].push_back(tid);
      }
    }
  }

  // 2. Majority vote per class and rhs column.
  std::vector<Fix> fixes;
  for (auto& [root, members] : classes) {
    for (int rhs_col : rule.rhs()) {
      std::map<Value, int> counts;
      for (int64_t tid : members) {
        const Record& row = table.at(static_cast<std::size_t>(tid));
        if (rhs_col < 0 || static_cast<std::size_t>(rhs_col) >= row.size()) {
          return Status::OutOfRange("rhs column out of range");
        }
        counts[row[static_cast<std::size_t>(rhs_col)]] += 1;
      }
      // Most frequent value; ties resolved by Value order (first in map wins
      // only if strictly greater count, so order is deterministic).
      const Value* winner = nullptr;
      int best = -1;
      for (const auto& [value, count] : counts) {
        if (count > best) {
          best = count;
          winner = &value;
        }
      }
      if (winner == nullptr) continue;
      for (int64_t tid : members) {
        const Record& row = table.at(static_cast<std::size_t>(tid));
        if (row[static_cast<std::size_t>(rhs_col)] != *winner) {
          fixes.push_back(Fix{tid, rhs_col, *winner});
        }
      }
    }
  }
  return fixes;
}

Result<Dataset> ApplyFixes(const Dataset& table, const std::vector<Fix>& fixes) {
  Dataset repaired = table;
  for (const Fix& fix : fixes) {
    if (fix.suggestion.is_null()) continue;
    if (fix.tid < 0 || static_cast<std::size_t>(fix.tid) >= repaired.size()) {
      return Status::OutOfRange("fix references tuple outside table");
    }
    Record& row = repaired.at(static_cast<std::size_t>(fix.tid));
    if (fix.column < 0 || static_cast<std::size_t>(fix.column) >= row.size()) {
      return Status::OutOfRange("fix references column outside record");
    }
    row[static_cast<std::size_t>(fix.column)] = fix.suggestion;
  }
  return repaired;
}

std::size_t CountFixedTuples(const std::vector<Fix>& fixes) {
  std::set<int64_t> tids;
  for (const Fix& f : fixes) tids.insert(f.tid);
  return tids.size();
}

}  // namespace cleaning
}  // namespace rheem

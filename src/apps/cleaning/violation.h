#ifndef RHEEM_APPS_CLEANING_VIOLATION_H_
#define RHEEM_APPS_CLEANING_VIOLATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/mapping/platform.h"
#include "data/dataset.h"

namespace rheem {
namespace cleaning {

/// \brief One detected violation: a pair of tuples that jointly break a rule.
struct Violation {
  std::string rule_id;
  int64_t tid1 = -1;
  int64_t tid2 = -1;

  friend bool operator==(const Violation& a, const Violation& b) {
    return a.rule_id == b.rule_id && a.tid1 == b.tid1 && a.tid2 == b.tid2;
  }
  friend bool operator<(const Violation& a, const Violation& b) {
    if (a.rule_id != b.rule_id) return a.rule_id < b.rule_id;
    if (a.tid1 != b.tid1) return a.tid1 < b.tid1;
    return a.tid2 < b.tid2;
  }
};

/// \brief One candidate repair: set `column` of tuple `tid` to `suggestion`
/// (a null suggestion means "unknown, ask an oracle").
struct Fix {
  int64_t tid = -1;
  int column = -1;
  Value suggestion;
};

/// \brief Output of a violation-detection run.
struct ViolationReport {
  std::vector<Violation> violations;
  ExecutionMetrics metrics;

  std::string ToString(std::size_t max_rows = 10) const;
};

/// Encoding of violations as data quanta flowing through detection plans:
/// (rule_id: string, tid1: int64, tid2: int64).
Record ViolationToRecord(const Violation& v);
Result<Violation> ViolationFromRecord(const Record& r);

}  // namespace cleaning
}  // namespace rheem

#endif  // RHEEM_APPS_CLEANING_VIOLATION_H_

#include "apps/cleaning/data_gen.h"

#include "common/rng.h"

namespace rheem {
namespace cleaning {

namespace {

const char* kStates[] = {"QA", "NY", "CA", "TX", "WA", "MA", "IL", "FL"};

std::string CityForZip(int64_t zip) { return "city_" + std::to_string(zip); }

}  // namespace

Schema TaxTableSchema() {
  return Schema::Of({Field{"name", ValueType::kString},
                     Field{"zip", ValueType::kInt64},
                     Field{"city", ValueType::kString},
                     Field{"salary", ValueType::kDouble},
                     Field{"tax", ValueType::kDouble},
                     Field{"state", ValueType::kString}});
}

Dataset GenerateTaxTable(const TaxTableOptions& options) {
  Rng rng(options.seed);
  const int64_t distinct_zips =
      std::max<int64_t>(1, options.rows / std::max<int64_t>(1, options.zip_density));
  std::vector<Record> rows;
  rows.reserve(static_cast<std::size_t>(options.rows));
  for (int64_t i = 0; i < options.rows; ++i) {
    const int64_t zip = 10000 + rng.NextInt(0, distinct_zips - 1);
    std::string city = CityForZip(zip);
    if (rng.NextBool(options.fd_noise_rate)) {
      // FD violation: a wrong city for this zip.
      city = "bad_city_" + std::to_string(rng.NextInt(0, 9));
    }
    // Salary grows with a random rank; tax is a monotone 20% of salary.
    const double salary = 20000.0 + rng.NextDouble() * 180000.0;
    double tax = salary * 0.2;
    if (rng.NextBool(options.ineq_noise_rate)) {
      // Inequality violation: tax far below what the salary implies, so
      // someone poorer pays more (salary' < salary with tax' > tax exists).
      tax = salary * 0.2 * rng.NextDouble(0.05, 0.4) - 5000.0;
    }
    rows.push_back(Record(
        {Value("emp_" + std::to_string(i)), Value(zip), Value(std::move(city)),
         Value(salary), Value(tax),
         Value(std::string(
             kStates[rng.NextBounded(sizeof(kStates) / sizeof(kStates[0]))]))}));
  }
  return Dataset(std::move(rows), TaxTableSchema());
}

FdRule ZipCityRule() {
  // phi1: zip (column 1) determines city (column 2).
  return FdRule("phi1_zip_city", /*lhs=*/{1}, /*rhs=*/{2});
}

IneqRule SalaryTaxRule() {
  // phi2: no pair may have t1.salary (3) > t2.salary AND t1.tax (4) < t2.tax.
  return IneqRule("phi2_salary_tax", /*col1=*/3, CompareOp::kGreater,
                  /*col2=*/4, CompareOp::kLess);
}

}  // namespace cleaning
}  // namespace rheem

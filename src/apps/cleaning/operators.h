#ifndef RHEEM_APPS_CLEANING_OPERATORS_H_
#define RHEEM_APPS_CLEANING_OPERATORS_H_

#include <utility>
#include <vector>

#include "apps/cleaning/rule.h"
#include "apps/cleaning/violation.h"
#include "core/plan/operator.h"
#include "data/dataset.h"

namespace rheem {
namespace cleaning {

/// \brief The five BigDansing logical operators (paper §5.1): Scope, Block,
/// Iterate, Detect, GenFix. Each is a genuine LogicalOperator template whose
/// per-quantum/pairwise logic the detection plan builder composes into
/// RHEEM physical pipelines.

/// `Scope`: removes irrelevant data units — projects a full-width table
/// record (with its tid appended as the last field by ZipWithId) onto the
/// rule's scoped layout (tid, scope columns...).
class ScopeOperator : public LogicalOperator {
 public:
  /// `rule` must outlive the operator.
  explicit ScopeOperator(const Rule* rule) : rule_(rule) {
    set_name("Scope(" + rule->id() + ")");
  }
  std::string kind_name() const override { return "Clean:Scope"; }
  int arity() const override { return 1; }
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

  /// The pure projection, exposed for plan builders.
  static Result<Record> ScopeRecord(const Rule& rule, const Record& with_tid);

 private:
  const Rule* rule_;
};

/// `Block`: computes the unit grouping key under which candidate tuples
/// meet (e.g. the FD's lhs). Emits (key, scoped...) per quantum.
class BlockOperator : public LogicalOperator {
 public:
  explicit BlockOperator(const Rule* rule) : rule_(rule) {
    set_name("Block(" + rule->id() + ")");
  }
  std::string kind_name() const override { return "Clean:Block"; }
  int arity() const override { return 1; }
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

 private:
  const Rule* rule_;
};

/// `Iterate`: enumerates the candidate tuple pairs of one block. For
/// symmetric rules each unordered pair appears once; otherwise both orders.
class IterateOperator : public LogicalOperator {
 public:
  explicit IterateOperator(const Rule* rule) : rule_(rule) {
    set_name("Iterate(" + rule->id() + ")");
  }
  std::string kind_name() const override { return "Clean:Iterate"; }
  int arity() const override { return 1; }
  /// Iterate is set-oriented; ApplyOp reports Unsupported.
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

  static std::vector<std::pair<std::size_t, std::size_t>> CandidatePairs(
      std::size_t block_size, bool symmetric);

 private:
  const Rule* rule_;
};

/// `Detect`: decides whether a candidate pair violates the rule and emits
/// the violation quanta.
class DetectOperator : public LogicalOperator {
 public:
  explicit DetectOperator(const Rule* rule) : rule_(rule) {
    set_name("Detect(" + rule->id() + ")");
  }
  std::string kind_name() const override { return "Clean:Detect"; }
  int arity() const override { return 1; }
  /// Pairwise; ApplyOp reports Unsupported.
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

  /// Evaluates the pair and, on violation, appends the violation record.
  static void DetectPair(const Rule& rule, const Record& t1, const Record& t2,
                         std::vector<Record>* out);

 private:
  const Rule* rule_;
};

/// `GenFix`: proposes candidate fixes for a violation. For FDs the fix sets
/// one side's rhs column to the other's value (the repair module then
/// resolves classes by majority); other rule kinds emit "unknown" fixes.
class GenFixOperator : public LogicalOperator {
 public:
  explicit GenFixOperator(const Rule* rule) : rule_(rule) {
    set_name("GenFix(" + rule->id() + ")");
  }
  std::string kind_name() const override { return "Clean:GenFix"; }
  int arity() const override { return 1; }
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

  static std::vector<Fix> FixesFor(const Rule& rule, const Violation& v,
                                   const Record& t1_scoped,
                                   const Record& t2_scoped);

 private:
  const Rule* rule_;
};

}  // namespace cleaning
}  // namespace rheem

#endif  // RHEEM_APPS_CLEANING_OPERATORS_H_

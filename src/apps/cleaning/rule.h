#ifndef RHEEM_APPS_CLEANING_RULE_H_
#define RHEEM_APPS_CLEANING_RULE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/expr/expr.h"
#include "core/operators/descriptors.h"
#include "data/record.h"
#include "data/value.h"

namespace rheem {
namespace cleaning {

enum class RuleKind {
  kFunctionalDependency,
  kInequalityDenialConstraint,
  kUdf,
};

const char* RuleKindToString(RuleKind kind);

/// \brief A data quality rule in BigDansing's model (paper §5.1 / [19]):
/// its semantics decompose into the five logical operators Scope, Block,
/// Iterate, Detect, GenFix.
///
/// Detection plans work on *scoped* records shaped
///   (tid: int64, scope_column_0, scope_column_1, ...)
/// i.e. a tuple id followed by the rule's ScopeColumns() in order; the
/// rule's BlockKey/Detect read positions in that layout (column i of the
/// scope is field i+1).
class Rule {
 public:
  explicit Rule(std::string id) : id_(std::move(id)) {}
  virtual ~Rule() = default;

  const std::string& id() const { return id_; }
  virtual RuleKind kind() const = 0;

  /// Scope: the table columns this rule reads, in scoped-record order.
  virtual std::vector<int> ScopeColumns() const = 0;

  /// Block: key grouping tuples into candidate units; a default-constructed
  /// (empty fn) KeyUdf means the rule cannot be blocked and all pairs are
  /// candidates.
  virtual KeyUdf BlockKey() const { return KeyUdf{}; }

  /// Detect: does the ordered pair (t1, t2) of scoped records violate the
  /// rule?
  virtual bool Detect(const Record& t1, const Record& t2) const = 0;

  /// True when Detect(a,b) == Detect(b,a); detection plans then emit each
  /// unordered pair once (tid1 < tid2).
  virtual bool symmetric() const { return false; }

  /// Detect as a typed expression (core/expr) over the concatenation of two
  /// scoped records: left fields [0, w), right fields [w, 2w) where
  /// w = 1 + #scope columns. `scope_types[i]` is the value type of scope
  /// column i. Returns nullptr when the rule cannot be expressed
  /// declaratively (e.g. UDF rules) — callers then fall back to the closure
  /// Detect.
  virtual expr::ExprPtr PairPredicateExpr(
      const std::vector<ValueType>& scope_types) const {
    (void)scope_types;
    return nullptr;
  }

 private:
  std::string id_;
};

/// \brief Functional dependency lhs -> rhs: tuples agreeing on every lhs
/// column must agree on every rhs column (e.g. zip -> city).
class FdRule : public Rule {
 public:
  FdRule(std::string id, std::vector<int> lhs, std::vector<int> rhs)
      : Rule(std::move(id)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  RuleKind kind() const override { return RuleKind::kFunctionalDependency; }
  std::vector<int> ScopeColumns() const override;
  KeyUdf BlockKey() const override;
  bool Detect(const Record& t1, const Record& t2) const override;
  bool symmetric() const override { return true; }
  expr::ExprPtr PairPredicateExpr(
      const std::vector<ValueType>& scope_types) const override;

  const std::vector<int>& lhs() const { return lhs_; }
  const std::vector<int>& rhs() const { return rhs_; }

 private:
  std::vector<int> lhs_;  // table columns
  std::vector<int> rhs_;
};

/// \brief Inequality denial constraint on one table, e.g. the classical tax
/// rule  ¬∃ t1,t2 : t1.salary > t2.salary AND t1.tax < t2.tax.
/// A pair (t1,t2) with  t1[col1] op1 t2[col1] AND t1[col2] op2 t2[col2]
/// is a violation. This is the rule shape IEJoin accelerates (§5.1).
class IneqRule : public Rule {
 public:
  IneqRule(std::string id, int col1, CompareOp op1, int col2, CompareOp op2)
      : Rule(std::move(id)), col1_(col1), op1_(op1), col2_(col2), op2_(op2) {}

  RuleKind kind() const override {
    return RuleKind::kInequalityDenialConstraint;
  }
  std::vector<int> ScopeColumns() const override { return {col1_, col2_}; }
  bool Detect(const Record& t1, const Record& t2) const override;
  expr::ExprPtr PairPredicateExpr(
      const std::vector<ValueType>& scope_types) const override;

  /// The equivalent IEJoin specification over scoped records (both columns
  /// shifted by one for the tid field).
  IEJoinSpec ScopedIEJoinSpec() const;

  int col1() const { return col1_; }
  CompareOp op1() const { return op1_; }
  int col2() const { return col2_; }
  CompareOp op2() const { return op2_; }

 private:
  int col1_;
  CompareOp op1_;
  int col2_;
  CompareOp op2_;
};

/// \brief Arbitrary pairwise rule supplied as a UDF, with optional scope and
/// blocking hints — the fully general BigDansing input.
class UdfRule : public Rule {
 public:
  UdfRule(std::string id, std::vector<int> scope_columns,
          std::function<bool(const Record&, const Record&)> detect,
          std::function<Value(const Record&)> block_key = nullptr,
          bool symmetric = false)
      : Rule(std::move(id)), scope_columns_(std::move(scope_columns)),
        detect_(std::move(detect)), block_key_(std::move(block_key)),
        symmetric_(symmetric) {}

  RuleKind kind() const override { return RuleKind::kUdf; }
  std::vector<int> ScopeColumns() const override { return scope_columns_; }
  KeyUdf BlockKey() const override;
  bool Detect(const Record& t1, const Record& t2) const override {
    return detect_(t1, t2);
  }
  bool symmetric() const override { return symmetric_; }

 private:
  std::vector<int> scope_columns_;
  std::function<bool(const Record&, const Record&)> detect_;
  std::function<Value(const Record&)> block_key_;
  bool symmetric_;
};

}  // namespace cleaning
}  // namespace rheem

#endif  // RHEEM_APPS_CLEANING_RULE_H_

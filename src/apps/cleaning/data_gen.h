#ifndef RHEEM_APPS_CLEANING_DATA_GEN_H_
#define RHEEM_APPS_CLEANING_DATA_GEN_H_

#include <cstdint>

#include "apps/cleaning/rule.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace rheem {
namespace cleaning {

/// \brief Synthetic employee/tax table with planted data-quality errors —
/// the stand-in for the TAX-style datasets the BigDansing evaluation uses
/// (see DESIGN.md §3, substitutions).
///
/// Columns:
///   0 name (string)   unique-ish person name
///   1 zip (int64)     determinant of city
///   2 city (string)   functionally dependent on zip... when clean
///   3 salary (double) monotone in rank
///   4 tax (double)    monotone in salary... when clean
///   5 state (string)
///
/// `fd_noise_rate` corrupts that fraction of city cells (violating the FD
/// zip -> city); `ineq_noise_rate` corrupts that fraction of tax cells
/// downward (creating pairs with salary > salary' AND tax < tax').
struct TaxTableOptions {
  int64_t rows = 1000;
  uint64_t seed = 42;
  double fd_noise_rate = 0.02;
  double ineq_noise_rate = 0.01;
  /// Distinct zips ~ rows / zip_density (controls FD block sizes).
  int64_t zip_density = 20;
};

Dataset GenerateTaxTable(const TaxTableOptions& options);

/// The table's schema (for relsim/storage consumers).
Schema TaxTableSchema();

/// The paper-style rules over this table.
FdRule ZipCityRule();                 // phi1: zip -> city
IneqRule SalaryTaxRule();             // phi2: salary > salary' AND tax < tax'

}  // namespace cleaning
}  // namespace rheem

#endif  // RHEEM_APPS_CLEANING_DATA_GEN_H_

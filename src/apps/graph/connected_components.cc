#include "apps/graph/connected_components.h"

#include <algorithm>

namespace rheem {
namespace graph {

Result<ConnectedComponentsResult> ComputeConnectedComponents(
    RheemContext* ctx, const EdgeList& graph,
    const ConnectedComponentsOptions& options) {
  if (graph.edges.empty()) return Status::InvalidArgument("empty edge list");
  const std::vector<int64_t> nodes = graph.Nodes();

  std::vector<Record> init;
  init.reserve(nodes.size());
  for (int64_t node : nodes) {
    init.push_back(Record({Value(node), Value(node)}));  // label = own id
  }

  RheemJob job(ctx);
  job.options().force_platform = options.force_platform;
  DataQuanta state = job.LoadCollection(Dataset(std::move(init)));
  DataQuanta edges = job.LoadCollection(graph.edges);

  DataQuanta labeled = state.Repeat(
      options.iterations, edges,
      [&](DataQuanta st, DataQuanta dt) {
        // Push each node's current label along its out-edges...
        DataQuanta pushed =
            st.Join(dt, [](const Record& r) { return r[0]; },  // state.node
                    [](const Record& e) { return e[0]; })      // edge.src
                .Map([](const Record& joined) {
                  // joined = (node, label, src, dst)
                  return Record({joined[3], joined[1]});
                });
        // ...take the minimum incoming label per destination...
        DataQuanta mins = pushed.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              return a[1].ToInt64Or(0) <= b[1].ToInt64Or(0) ? a : b;
            },
            /*key_distinct_ratio=*/0.5);
        // ...and fold into the state (own label also competes).
        return st.BroadcastMap(
            mins,
            [](const Record& node_label, const Dataset& incoming) {
              const int64_t node = node_label[0].ToInt64Or(-1);
              int64_t label = node_label[1].ToInt64Or(node);
              for (const Record& s : incoming.records()) {
                if (s[0].ToInt64Or(-2) == node) {
                  label = std::min(label, s[1].ToInt64Or(label));
                  break;
                }
              }
              return Record({node_label[0], Value(label)});
            },
            UdfMeta::Expensive(4.0));
      });

  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, labeled.CollectWithMetrics());
  ConnectedComponentsResult out;
  out.metrics = result.metrics;
  for (const Record& r : result.output.records()) {
    out.components[r[0].ToInt64Or(-1)] = r[1].ToInt64Or(-1);
  }
  return out;
}

Result<ConnectedComponentsResult> ComputeConnectedComponentsConverging(
    RheemContext* ctx, const EdgeList& graph,
    const ConnectedComponentsOptions& options) {
  if (graph.edges.empty()) return Status::InvalidArgument("empty edge list");
  const std::vector<int64_t> nodes = graph.Nodes();

  // State records: (node, label, previous_label). previous starts as -1 so
  // the first round always runs.
  std::vector<Record> init;
  init.reserve(nodes.size());
  for (int64_t node : nodes) {
    init.push_back(Record({Value(node), Value(node), Value(int64_t{-1})}));
  }

  RheemJob job(ctx);
  job.options().force_platform = options.force_platform;
  DataQuanta state = job.LoadCollection(Dataset(std::move(init)));
  DataQuanta edges = job.LoadCollection(graph.edges);

  DataQuanta labeled = state.DoWhile(
      [](const Dataset& s, int) {
        // Continue while any node's label changed in the last round.
        for (const Record& r : s.records()) {
          if (r[1].ToInt64Or(0) != r[2].ToInt64Or(-1)) return true;
        }
        return false;
      },
      /*max_iterations=*/options.iterations, edges,
      [&](DataQuanta st, DataQuanta dt) {
        DataQuanta pushed =
            st.Join(dt, [](const Record& r) { return r[0]; },
                    [](const Record& e) { return e[0]; })
                .Map([](const Record& joined) {
                  // joined = (node, label, prev, src, dst)
                  return Record({joined[4], joined[1]});
                });
        DataQuanta mins = pushed.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              return a[1].ToInt64Or(0) <= b[1].ToInt64Or(0) ? a : b;
            },
            /*key_distinct_ratio=*/0.5);
        return st.BroadcastMap(
            mins,
            [](const Record& node_label, const Dataset& incoming) {
              const int64_t node = node_label[0].ToInt64Or(-1);
              const int64_t old_label = node_label[1].ToInt64Or(node);
              int64_t label = old_label;
              for (const Record& s : incoming.records()) {
                if (s[0].ToInt64Or(-2) == node) {
                  label = std::min(label, s[1].ToInt64Or(label));
                  break;
                }
              }
              return Record({node_label[0], Value(label), Value(old_label)});
            },
            UdfMeta::Expensive(4.0));
      });

  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, labeled.CollectWithMetrics());
  ConnectedComponentsResult out;
  out.metrics = result.metrics;
  for (const Record& r : result.output.records()) {
    out.components[r[0].ToInt64Or(-1)] = r[1].ToInt64Or(-1);
  }
  return out;
}

std::map<int64_t, int64_t> ConnectedComponentsReference(const EdgeList& graph) {
  std::map<int64_t, int64_t> parent;
  std::function<int64_t(int64_t)> find = [&](int64_t x) {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    while (it->second != x) {
      x = it->second;
      it = parent.find(x);
    }
    return x;
  };
  for (const Record& e : graph.edges.records()) {
    const int64_t a = find(e[0].ToInt64Or(-1));
    const int64_t b = find(e[1].ToInt64Or(-1));
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::map<int64_t, int64_t> out;
  for (int64_t node : graph.Nodes()) out[node] = find(node);
  return out;
}

}  // namespace graph
}  // namespace rheem

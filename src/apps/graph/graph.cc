#include "apps/graph/graph.h"

#include <set>

#include "common/rng.h"

namespace rheem {
namespace graph {

std::map<int64_t, int64_t> EdgeList::OutDegrees() const {
  std::map<int64_t, int64_t> degrees;
  for (const Record& e : edges.records()) {
    degrees[e[0].ToInt64Or(-1)] += 1;
  }
  return degrees;
}

std::vector<int64_t> EdgeList::Nodes() const {
  std::set<int64_t> nodes;
  for (const Record& e : edges.records()) {
    nodes.insert(e[0].ToInt64Or(-1));
    nodes.insert(e[1].ToInt64Or(-1));
  }
  return std::vector<int64_t>(nodes.begin(), nodes.end());
}

EdgeList GenerateRandomGraph(int64_t nodes, double avg_out_degree,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> edges;
  for (int64_t src = 0; src < nodes; ++src) {
    // At least one out-edge per node keeps PageRank mass from pooling in
    // dangling nodes (the usual generator convenience).
    int64_t degree = 1;
    while (rng.NextBool(std::min(0.95, avg_out_degree / (avg_out_degree + 1.0))) &&
           degree < nodes - 1) {
      ++degree;
      if (static_cast<double>(degree) > 4 * avg_out_degree) break;
    }
    std::set<int64_t> targets;
    while (static_cast<int64_t>(targets.size()) < degree) {
      const int64_t dst = rng.NextInt(0, nodes - 1);
      if (dst != src) targets.insert(dst);
      if (static_cast<int64_t>(targets.size()) >= nodes - 1) break;
    }
    for (int64_t dst : targets) {
      edges.push_back(Record({Value(src), Value(dst)}));
    }
  }
  EdgeList out;
  out.edges = Dataset(std::move(edges));
  out.num_nodes = nodes;
  return out;
}

EdgeList GenerateCliques(int64_t k, int64_t clique_size) {
  std::vector<Record> edges;
  for (int64_t c = 0; c < k; ++c) {
    const int64_t base = c * clique_size;
    for (int64_t i = 0; i < clique_size; ++i) {
      for (int64_t j = 0; j < clique_size; ++j) {
        if (i == j) continue;
        edges.push_back(Record({Value(base + i), Value(base + j)}));
      }
    }
  }
  EdgeList out;
  out.edges = Dataset(std::move(edges));
  out.num_nodes = k * clique_size;
  return out;
}

}  // namespace graph
}  // namespace rheem

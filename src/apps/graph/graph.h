#ifndef RHEEM_APPS_GRAPH_GRAPH_H_
#define RHEEM_APPS_GRAPH_GRAPH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rheem {
namespace graph {

/// \brief Directed edge list: the graph application's input model. Edge
/// records are (src: int64, dst: int64); nodes are the ids appearing in any
/// edge.
struct EdgeList {
  Dataset edges;
  int64_t num_nodes = 0;

  /// Out-degree per node (nodes with no out-edges are absent).
  std::map<int64_t, int64_t> OutDegrees() const;
  /// Distinct node ids in ascending order.
  std::vector<int64_t> Nodes() const;
};

/// Deterministic random digraph: `nodes` vertices, each with out-degree
/// ~`avg_out_degree` to uniformly random targets (no self loops).
EdgeList GenerateRandomGraph(int64_t nodes, double avg_out_degree,
                             uint64_t seed = 42);

/// A graph of `k` disjoint cliques of `clique_size` nodes (undirected:
/// both edge directions present) — convenient ground truth for connected
/// components.
EdgeList GenerateCliques(int64_t k, int64_t clique_size);

}  // namespace graph
}  // namespace rheem

#endif  // RHEEM_APPS_GRAPH_GRAPH_H_

#ifndef RHEEM_APPS_GRAPH_PAGERANK_H_
#define RHEEM_APPS_GRAPH_PAGERANK_H_

#include <map>
#include <string>

#include "apps/graph/graph.h"
#include "common/result.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace graph {

struct PageRankOptions {
  int iterations = 20;
  double damping = 0.85;
  std::string force_platform;
};

struct PageRankResult {
  /// node id -> rank (ranks over all nodes sum to ~1).
  std::map<int64_t, double> ranks;
  ExecutionMetrics metrics;
};

/// PageRank on RHEEM's loop operators: per iteration, ranks join the edge
/// list to scatter contributions, a keyed reduction gathers them, and a
/// broadcast map applies damping — the third application the paper says the
/// authors are building (§5: "a graph processing application").
Result<PageRankResult> ComputePageRank(RheemContext* ctx, const EdgeList& graph,
                                       const PageRankOptions& options);

/// Single-threaded reference implementation for tests.
std::map<int64_t, double> PageRankReference(const EdgeList& graph,
                                            int iterations, double damping);

}  // namespace graph
}  // namespace rheem

#endif  // RHEEM_APPS_GRAPH_PAGERANK_H_

#include "apps/graph/pagerank.h"

namespace rheem {
namespace graph {

Result<PageRankResult> ComputePageRank(RheemContext* ctx, const EdgeList& graph,
                                       const PageRankOptions& options) {
  if (graph.edges.empty()) return Status::InvalidArgument("empty edge list");
  const std::vector<int64_t> nodes = graph.Nodes();
  const double n = static_cast<double>(nodes.size());
  const double damping = options.damping;

  // State: (node, rank). Data: edges decorated with the source out-degree
  // (src, dst, out_degree).
  std::vector<Record> init;
  init.reserve(nodes.size());
  for (int64_t node : nodes) {
    init.push_back(Record({Value(node), Value(1.0 / n)}));
  }
  const auto degrees = graph.OutDegrees();
  std::vector<Record> decorated;
  decorated.reserve(graph.edges.size());
  for (const Record& e : graph.edges.records()) {
    const int64_t src = e[0].ToInt64Or(-1);
    decorated.push_back(
        Record({e[0], e[1], Value(degrees.at(src))}));
  }

  RheemJob job(ctx);
  job.options().force_platform = options.force_platform;
  DataQuanta state = job.LoadCollection(Dataset(std::move(init)));
  DataQuanta edges = job.LoadCollection(Dataset(std::move(decorated)));

  DataQuanta ranks = state.Repeat(
      options.iterations, edges,
      [&](DataQuanta st, DataQuanta dt) {
        // Scatter: rank(src)/outdeg along each edge.
        DataQuanta scattered =
            st.Join(dt, [](const Record& r) { return r[0]; },   // state.node
                    [](const Record& e) { return e[0]; })       // edge.src
                .Map([](const Record& joined) {
                  // joined = (node, rank, src, dst, outdeg)
                  const double rank = joined[1].ToDoubleOr(0.0);
                  const double deg =
                      static_cast<double>(joined[4].ToInt64Or(1));
                  return Record({joined[3], Value(rank / deg)});
                });
        // Gather: sum of contributions per destination.
        DataQuanta gathered = scattered.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              return Record(
                  {a[0], Value(a[1].ToDoubleOr(0) + b[1].ToDoubleOr(0))});
            },
            /*key_distinct_ratio=*/0.5);
        // Damping + base mass, applied per node with the gathered sums
        // broadcast (nodes without in-links get the base mass only).
        return st.BroadcastMap(
            gathered,
            [n, damping](const Record& node_rank, const Dataset& sums) {
              const int64_t node = node_rank[0].ToInt64Or(-1);
              double contrib = 0.0;
              for (const Record& s : sums.records()) {
                if (s[0].ToInt64Or(-2) == node) {
                  contrib = s[1].ToDoubleOr(0.0);
                  break;
                }
              }
              return Record(
                  {node_rank[0],
                   Value((1.0 - damping) / n + damping * contrib)});
            },
            UdfMeta::Expensive(4.0));
      });

  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, ranks.CollectWithMetrics());
  PageRankResult out;
  out.metrics = result.metrics;
  for (const Record& r : result.output.records()) {
    out.ranks[r[0].ToInt64Or(-1)] = r[1].ToDoubleOr(0.0);
  }
  return out;
}

std::map<int64_t, double> PageRankReference(const EdgeList& graph,
                                            int iterations, double damping) {
  const std::vector<int64_t> nodes = graph.Nodes();
  const double n = static_cast<double>(nodes.size());
  const auto degrees = graph.OutDegrees();
  std::map<int64_t, double> ranks;
  for (int64_t node : nodes) ranks[node] = 1.0 / n;
  for (int iter = 0; iter < iterations; ++iter) {
    std::map<int64_t, double> contribs;
    for (const Record& e : graph.edges.records()) {
      const int64_t src = e[0].ToInt64Or(-1);
      const int64_t dst = e[1].ToInt64Or(-1);
      contribs[dst] +=
          ranks.at(src) / static_cast<double>(degrees.at(src));
    }
    std::map<int64_t, double> next;
    for (int64_t node : nodes) {
      const auto it = contribs.find(node);
      next[node] = (1.0 - damping) / n +
                   damping * (it != contribs.end() ? it->second : 0.0);
    }
    ranks = std::move(next);
  }
  return ranks;
}

}  // namespace graph
}  // namespace rheem

#ifndef RHEEM_APPS_GRAPH_CONNECTED_COMPONENTS_H_
#define RHEEM_APPS_GRAPH_CONNECTED_COMPONENTS_H_

#include <map>
#include <string>

#include "apps/graph/graph.h"
#include "common/result.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace graph {

struct ConnectedComponentsOptions {
  /// Label-propagation rounds; must be at least the graph diameter for an
  /// exact result.
  int iterations = 20;
  std::string force_platform;
};

struct ConnectedComponentsResult {
  /// node id -> component label (the smallest node id in its component,
  /// given enough iterations).
  std::map<int64_t, int64_t> components;
  ExecutionMetrics metrics;
};

/// Min-label propagation over RHEEM loop operators: each round, every node
/// adopts the minimum label among itself and its in-neighbors. Edges are
/// treated as directed; pass a symmetrized edge list for undirected
/// semantics (GenerateCliques already does).
Result<ConnectedComponentsResult> ComputeConnectedComponents(
    RheemContext* ctx, const EdgeList& graph,
    const ConnectedComponentsOptions& options);

/// Union-find reference for tests (undirected interpretation).
std::map<int64_t, int64_t> ConnectedComponentsReference(const EdgeList& graph);

/// Convergence-driven variant on the DoWhile operator: the loop stops as
/// soon as a round changes no label (the state carries each node's previous
/// label so the continuation test can detect quiescence), instead of running
/// a fixed round budget. `options.iterations` becomes the safety bound.
Result<ConnectedComponentsResult> ComputeConnectedComponentsConverging(
    RheemContext* ctx, const EdgeList& graph,
    const ConnectedComponentsOptions& options);

}  // namespace graph
}  // namespace rheem

#endif  // RHEEM_APPS_GRAPH_CONNECTED_COMPONENTS_H_

#include "apps/ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace rheem {
namespace ml {

std::size_t NearestCentroid(const std::vector<std::vector<double>>& centroids,
                            const std::vector<double>& x) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    double dist = 0.0;
    const auto& m = centroids[c];
    const std::size_t n = std::min(m.size(), x.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double d = m[i] - x[i];
      dist += d * d;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

namespace {

std::vector<std::vector<double>> CentroidsFromState(const Dataset& state) {
  std::vector<std::vector<double>> out;
  // State records are (id, centroid); ids are dense 0..k-1.
  out.resize(state.size());
  for (const Record& r : state.records()) {
    const auto id = static_cast<std::size_t>(r[0].ToInt64Or(0));
    if (id < out.size()) out[id] = r[1].double_list_unchecked();
  }
  return out;
}

}  // namespace

Result<KMeansResult> TrainKMeans(RheemContext* ctx, const Dataset& data,
                                 const KMeansOptions& options) {
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  if (data.size() < static_cast<std::size_t>(options.k)) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  if (data.at(0).size() < 2 ||
      data.at(0)[1].type() != ValueType::kDoubleList) {
    return Status::InvalidArgument(
        "training records must be (label, features double_list)");
  }

  // Initialize centroids from k distinct random points (Forgy).
  Rng rng(options.seed);
  std::vector<Record> init_state;
  std::vector<bool> taken(data.size(), false);
  for (int c = 0; c < options.k; ++c) {
    std::size_t idx;
    do {
      idx = static_cast<std::size_t>(rng.NextBounded(data.size()));
    } while (taken[idx]);
    taken[idx] = true;
    init_state.push_back(
        Record({Value(static_cast<int64_t>(c)),
                Value(data.at(idx)[1].double_list_unchecked())}));
  }

  RheemJob job(ctx);
  job.options().force_platform = options.force_platform;
  DataQuanta state = job.LoadCollection(Dataset(std::move(init_state)));
  DataQuanta points = job.LoadCollection(data);

  const double key_ratio =
      std::min(1.0, static_cast<double>(options.k) /
                        std::max<double>(1.0, static_cast<double>(data.size())));

  DataQuanta trained = state.Repeat(
      options.iterations, points,
      [&](DataQuanta st, DataQuanta dt) {
        // GetCentroid: tag each point with its nearest centroid.
        DataQuanta assigned = dt.BroadcastMap(
            st,
            [](const Record& point, const Dataset& centroids_ds) {
              const auto centroids = CentroidsFromState(centroids_ds);
              const auto& x = point[1].double_list_unchecked();
              const std::size_t c = NearestCentroid(centroids, x);
              return Record({Value(static_cast<int64_t>(c)), point[1],
                             Value(1.0)});
            },
            UdfMeta::Expensive(8.0));
        // The GroupBy enhancer between GetCentroid and SetCentroids
        // (paper §3.2): keyed aggregation of per-cluster sums.
        DataQuanta sums = assigned.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              std::vector<double> sum = a[1].double_list_unchecked();
              const auto& other = b[1].double_list_unchecked();
              for (std::size_t i = 0; i < sum.size() && i < other.size(); ++i) {
                sum[i] += other[i];
              }
              return Record({a[0], Value(std::move(sum)),
                             Value(a[2].ToDoubleOr(0) + b[2].ToDoubleOr(0))});
            },
            key_ratio);
        // SetCentroids: move each centroid to its cluster mean.
        return st.BroadcastMap(
            sums,
            [](const Record& centroid, const Dataset& aggregates) {
              const int64_t id = centroid[0].ToInt64Or(-1);
              for (const Record& agg : aggregates.records()) {
                if (agg[0].ToInt64Or(-2) != id) continue;
                const double count = agg[2].ToDoubleOr(0.0);
                if (count <= 0.0) break;
                std::vector<double> mean = agg[1].double_list_unchecked();
                for (double& m : mean) m /= count;
                return Record({centroid[0], Value(std::move(mean))});
              }
              return centroid;  // empty cluster keeps its position
            },
            UdfMeta::Expensive(4.0));
      });

  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, trained.CollectWithMetrics());
  KMeansResult out;
  out.centroids = CentroidsFromState(result.output);
  out.metrics = result.metrics;
  return out;
}

Result<double> KMeansCost(const std::vector<std::vector<double>>& centroids,
                          const Dataset& data) {
  if (centroids.empty()) return Status::InvalidArgument("no centroids");
  double total = 0.0;
  for (const Record& r : data.records()) {
    const auto& x = r[1].double_list_unchecked();
    const std::size_t c = NearestCentroid(centroids, x);
    const auto& m = centroids[c];
    const std::size_t n = std::min(m.size(), x.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double d = m[i] - x[i];
      total += d * d;
    }
  }
  return total;
}

}  // namespace ml
}  // namespace rheem

#ifndef RHEEM_APPS_ML_REGRESSION_H_
#define RHEEM_APPS_ML_REGRESSION_H_

#include <vector>

#include "apps/ml/ml_operators.h"
#include "common/result.h"

namespace rheem {
namespace ml {

/// \brief Linear and logistic regression on the same Initialize/Process/Loop
/// templates as SVM (paper Example 1 names exactly these algorithms).
struct LinearModel {
  std::vector<double> weights;
  double bias = 0.0;

  double Predict(const std::vector<double>& x) const;
};

struct RegressionOptions {
  int iterations = 100;
  double learning_rate = 0.1;
  std::string force_platform;
};

struct RegressionResult {
  LinearModel model;
  ExecutionMetrics metrics;
};

/// Least-squares gradient descent on (y: double, x: double_list) records.
Result<RegressionResult> TrainLinearRegression(RheemContext* ctx,
                                               const Dataset& data,
                                               const RegressionOptions& options);

/// Logistic regression (labels ±1) by gradient descent.
Result<RegressionResult> TrainLogisticRegression(
    RheemContext* ctx, const Dataset& data, const RegressionOptions& options);

/// Mean squared prediction error of a linear model.
Result<double> MeanSquaredError(const LinearModel& model, const Dataset& data);

/// Classification accuracy of a logistic model (threshold 0).
Result<double> LogisticAccuracy(const LinearModel& model, const Dataset& data);

}  // namespace ml
}  // namespace rheem

#endif  // RHEEM_APPS_ML_REGRESSION_H_

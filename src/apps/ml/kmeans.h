#ifndef RHEEM_APPS_ML_KMEANS_H_
#define RHEEM_APPS_ML_KMEANS_H_

#include <vector>

#include "apps/ml/ml_operators.h"
#include "common/result.h"

namespace rheem {
namespace ml {

/// \brief K-means clustering expressed on the ML operator templates: the
/// paper's §3.2 running example (GetCentroid + SetCentroids with a GroupBy
/// enhancer between them maps here to BroadcastMap + keyed aggregation).
struct KMeansOptions {
  int k = 3;
  int iterations = 20;
  uint64_t seed = 42;
  std::string force_platform;
};

struct KMeansResult {
  /// centroids[c] is the position of cluster c.
  std::vector<std::vector<double>> centroids;
  ExecutionMetrics metrics;
};

/// Trains on records shaped (ignored label, features: double_list).
Result<KMeansResult> TrainKMeans(RheemContext* ctx, const Dataset& data,
                                 const KMeansOptions& options);

/// Index of the closest centroid to `x`.
std::size_t NearestCentroid(const std::vector<std::vector<double>>& centroids,
                            const std::vector<double>& x);

/// Sum of squared distances of every point to its nearest centroid.
Result<double> KMeansCost(const std::vector<std::vector<double>>& centroids,
                          const Dataset& data);

}  // namespace ml
}  // namespace rheem

#endif  // RHEEM_APPS_ML_KMEANS_H_

#ifndef RHEEM_APPS_ML_DATASET_GEN_H_
#define RHEEM_APPS_ML_DATASET_GEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace rheem {
namespace ml {

/// \brief Synthetic stand-ins for the LIBSVM datasets of the paper's
/// Figure 2 (see DESIGN.md §3, substitutions). All generators are
/// deterministic in their seed.
///
/// Records have the shape (label: double, features: double_list).

/// Two Gaussian classes with labels ±1, separated by `separation` along a
/// random unit direction — linearly separable-ish, i.e. learnable by SVM.
Dataset GenerateClassification(int64_t rows, int dims, uint64_t seed = 42,
                               double separation = 2.0);

/// Linear data y = w*x + noise for regression; labels are continuous.
Dataset GenerateRegression(int64_t rows, int dims, uint64_t seed = 42,
                           double noise = 0.1);

/// `k` Gaussian blobs for clustering (labels hold the true cluster id, which
/// k-means does not see but tests can check against).
Dataset GenerateClusters(int64_t rows, int k, int dims, uint64_t seed = 42,
                         double spread = 0.5);

/// Renders a dataset in LIBSVM text format ("label idx:val idx:val ...",
/// 1-based sparse indices; zero features are dropped).
std::string ToLibSvmFormat(const Dataset& data);

/// Parses LIBSVM text into (label, features) records; `dims` fixes the dense
/// feature width (indices beyond it are an error).
Result<Dataset> ParseLibSvmFormat(const std::string& text, int dims);

}  // namespace ml
}  // namespace rheem

#endif  // RHEEM_APPS_ML_DATASET_GEN_H_

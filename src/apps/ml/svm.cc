#include "apps/ml/svm.h"

#include <cmath>

namespace rheem {
namespace ml {

double SvmModel::Decision(const std::vector<double>& x) const {
  double s = bias;
  const std::size_t n = std::min(weights.size(), x.size());
  for (std::size_t i = 0; i < n; ++i) s += weights[i] * x[i];
  return s;
}

double SvmModel::Predict(const std::vector<double>& x) const {
  return Decision(x) >= 0.0 ? 1.0 : -1.0;
}

Result<SvmResult> TrainSvm(RheemContext* ctx, const Dataset& data,
                           const SvmOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (data.at(0).size() < 2 ||
      data.at(0)[1].type() != ValueType::kDoubleList) {
    return Status::InvalidArgument(
        "training records must be (label, features double_list)");
  }
  const int dims = static_cast<int>(data.at(0)[1].double_list_unchecked().size());
  const double lr = options.learning_rate;
  const double reg = options.regularization;
  const double n = static_cast<double>(data.size());

  MlProgram program;
  // State: one record (weights double_list, bias double).
  program.init = [dims]() {
    return Dataset(std::vector<Record>{Record(
        {Value(std::vector<double>(static_cast<std::size_t>(dims), 0.0)),
         Value(0.0)})});
  };
  // Process: hinge subgradient contribution of one point.
  program.process = [](const Record& point, const Dataset& state) {
    const auto& w = state.at(0)[0].double_list_unchecked();
    const double b = state.at(0)[1].ToDoubleOr(0.0);
    const double y = point[0].ToDoubleOr(0.0);
    const auto& x = point[1].double_list_unchecked();
    double margin = b;
    for (std::size_t i = 0; i < w.size() && i < x.size(); ++i) {
      margin += w[i] * x[i];
    }
    margin *= y;
    std::vector<double> grad_w(w.size(), 0.0);
    double grad_b = 0.0;
    if (margin < 1.0) {
      for (std::size_t i = 0; i < grad_w.size() && i < x.size(); ++i) {
        grad_w[i] = -y * x[i];
      }
      grad_b = -y;
    }
    return Record({Value(std::move(grad_w)), Value(grad_b)});
  };
  // Combine: elementwise sum of contributions.
  program.combine = [](const Record& a, const Record& b) {
    std::vector<double> gw = a[0].double_list_unchecked();
    const auto& gw2 = b[0].double_list_unchecked();
    for (std::size_t i = 0; i < gw.size() && i < gw2.size(); ++i) {
      gw[i] += gw2[i];
    }
    return Record(
        {Value(std::move(gw)), Value(a[1].ToDoubleOr(0) + b[1].ToDoubleOr(0))});
  };
  // Update: gradient step with L2 regularization.
  program.update = [lr, reg, n](const Record& state, const Dataset& agg) {
    std::vector<double> w = state[0].double_list_unchecked();
    double b = state[1].ToDoubleOr(0.0);
    if (!agg.empty()) {
      const auto& gw = agg.at(0)[0].double_list_unchecked();
      const double gb = agg.at(0)[1].ToDoubleOr(0.0);
      for (std::size_t i = 0; i < w.size() && i < gw.size(); ++i) {
        w[i] -= lr * (reg * w[i] + gw[i] / n);
      }
      b -= lr * gb / n;
    }
    return Record({Value(std::move(w)), Value(b)});
  };
  program.process_cost = 2.0 + 0.2 * dims;

  MlRunOptions run;
  run.iterations = options.iterations;
  run.force_platform = options.force_platform;
  RHEEM_ASSIGN_OR_RETURN(MlRunResult result, RunMlProgram(ctx, program, data, run));
  if (result.final_state.empty()) {
    return Status::ExecutionError("SVM training produced no state");
  }
  SvmResult out;
  out.model.weights = result.final_state.at(0)[0].double_list_unchecked();
  out.model.bias = result.final_state.at(0)[1].ToDoubleOr(0.0);
  out.metrics = result.metrics;
  return out;
}

Result<double> SvmAccuracy(const SvmModel& model, const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty evaluation set");
  int64_t correct = 0;
  for (const Record& r : data.records()) {
    if (r.size() < 2 || r[1].type() != ValueType::kDoubleList) {
      return Status::InvalidArgument("bad evaluation record " + r.ToString());
    }
    const double y = r[0].ToDoubleOr(0.0);
    if (model.Predict(r[1].double_list_unchecked()) == (y >= 0 ? 1.0 : -1.0)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace ml
}  // namespace rheem

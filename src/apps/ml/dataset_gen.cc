#include "apps/ml/dataset_gen.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/string_util.h"

namespace rheem {
namespace ml {

namespace {

std::vector<double> RandomUnitVector(int dims, Rng* rng) {
  std::vector<double> v(static_cast<std::size_t>(dims));
  double norm = 0.0;
  for (auto& x : v) {
    x = rng->NextGaussian();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  if (norm < 1e-12) norm = 1.0;
  for (auto& x : v) x /= norm;
  return v;
}

}  // namespace

Dataset GenerateClassification(int64_t rows, int dims, uint64_t seed,
                               double separation) {
  Rng rng(seed);
  const std::vector<double> direction = RandomUnitVector(dims, &rng);
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const double label = rng.NextBool() ? 1.0 : -1.0;
    std::vector<double> x(static_cast<std::size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      x[static_cast<std::size_t>(d)] =
          rng.NextGaussian() +
          label * separation * direction[static_cast<std::size_t>(d)];
    }
    records.push_back(Record({Value(label), Value(std::move(x))}));
  }
  return Dataset(std::move(records));
}

Dataset GenerateRegression(int64_t rows, int dims, uint64_t seed,
                           double noise) {
  Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(dims));
  for (auto& wi : w) wi = rng.NextDouble(-2.0, 2.0);
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<double> x(static_cast<std::size_t>(dims));
    double y = 0.0;
    for (int d = 0; d < dims; ++d) {
      x[static_cast<std::size_t>(d)] = rng.NextGaussian();
      y += w[static_cast<std::size_t>(d)] * x[static_cast<std::size_t>(d)];
    }
    y += noise * rng.NextGaussian();
    records.push_back(Record({Value(y), Value(std::move(x))}));
  }
  return Dataset(std::move(records));
}

Dataset GenerateClusters(int64_t rows, int k, int dims, uint64_t seed,
                         double spread) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    std::vector<double> center(static_cast<std::size_t>(dims));
    for (auto& x : center) x = rng.NextDouble(-10.0, 10.0);
    centers.push_back(std::move(center));
  }
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const int c = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k)));
    std::vector<double> x(static_cast<std::size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      x[static_cast<std::size_t>(d)] =
          centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)] +
          spread * rng.NextGaussian();
    }
    records.push_back(
        Record({Value(static_cast<double>(c)), Value(std::move(x))}));
  }
  return Dataset(std::move(records));
}

std::string ToLibSvmFormat(const Dataset& data) {
  std::string out;
  char buf[48];
  for (const Record& r : data.records()) {
    if (r.size() < 2 || r[1].type() != ValueType::kDoubleList) continue;
    std::snprintf(buf, sizeof(buf), "%g", r[0].ToDoubleOr(0.0));
    out += buf;
    const auto& xs = r[1].double_list_unchecked();
    for (std::size_t d = 0; d < xs.size(); ++d) {
      if (xs[d] == 0.0) continue;  // sparse format omits zeros
      std::snprintf(buf, sizeof(buf), " %zu:%.9g", d + 1, xs[d]);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Result<Dataset> ParseLibSvmFormat(const std::string& text, int dims) {
  if (dims <= 0) return Status::InvalidArgument("dims must be positive");
  std::vector<Record> records;
  for (const std::string& raw : SplitString(text, '\n')) {
    const std::string line(TrimWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const std::string& t : SplitString(line, ' ')) {
      if (!t.empty()) tokens.push_back(t);
    }
    if (tokens.empty()) continue;
    char* end = nullptr;
    const double label = std::strtod(tokens[0].c_str(), &end);
    if (end == tokens[0].c_str()) {
      return Status::InvalidArgument("bad LIBSVM label: " + tokens[0]);
    }
    std::vector<double> x(static_cast<std::size_t>(dims), 0.0);
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const auto parts = SplitString(tokens[t], ':');
      if (parts.size() != 2) {
        return Status::InvalidArgument("bad LIBSVM pair: " + tokens[t]);
      }
      const long idx = std::strtol(parts[0].c_str(), nullptr, 10);
      if (idx < 1 || idx > dims) {
        return Status::OutOfRange("LIBSVM index " + parts[0] +
                                  " outside [1," + std::to_string(dims) + "]");
      }
      x[static_cast<std::size_t>(idx - 1)] = std::strtod(parts[1].c_str(), nullptr);
    }
    records.push_back(Record({Value(label), Value(std::move(x))}));
  }
  return Dataset(std::move(records));
}

}  // namespace ml
}  // namespace rheem

#ifndef RHEEM_APPS_ML_ML_OPERATORS_H_
#define RHEEM_APPS_ML_ML_OPERATORS_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "core/api/data_quanta.h"
#include "core/plan/operator.h"
#include "data/dataset.h"

namespace rheem {
namespace ml {

/// \brief The ML application's operator template set — the paper's Example 1:
/// a developer offers end users three abstract logical operators,
/// `Initialize`, `Process`, and `Loop`, and users express SVM, k-means and
/// regressions by filling in the UDFs.
///
/// MlProgram is the filled-in template:
///   state_0    = init()
///   repeat iterations (or until converged):
///     contribs = { process(point, state) : point in data }   (Process)
///     agg      = fold(contribs, combine)
///     state    = update(state_record, agg)
/// The program compiles onto RHEEM's generic operators as
/// BroadcastMap -> GlobalReduce -> BroadcastMap inside a Repeat loop, so the
/// multi-platform optimizer is free to place the whole loop on any platform.
struct MlProgram {
  /// Produces the initial state dataset (e.g. zero weights, k centroids).
  std::function<Dataset()> init;
  /// Per-point contribution given the broadcast state (Process).
  std::function<Record(const Record& point, const Dataset& state)> process;
  /// Associative+commutative combination of two contributions.
  std::function<Record(const Record&, const Record&)> combine;
  /// Next state record from (current state record, aggregated contribution).
  std::function<Record(const Record& state, const Dataset& aggregate)> update;
  /// Relative CPU weight of one process() call (optimizer hint).
  double process_cost = 4.0;
};

/// Options shared by the ML trainers.
struct MlRunOptions {
  int iterations = 100;
  /// Forwarded to the optimizer; empty = let RHEEM choose the platform.
  std::string force_platform;
  bool collect_metrics = false;
};

/// Result of one training run.
struct MlRunResult {
  Dataset final_state;
  ExecutionMetrics metrics;
};

/// Compiles and runs an MlProgram over `points` on a RheemContext.
Result<MlRunResult> RunMlProgram(RheemContext* ctx, const MlProgram& program,
                                 const Dataset& points,
                                 const MlRunOptions& options);

// ---------------------------------------------------------------------------
// The abstract logical operators themselves, as LogicalOperator subclasses.
// These exist to exercise the application-layer contract (ApplyOp wrappers,
// paper §3.2); the trainers above use the equivalent fluent pipeline.
// ---------------------------------------------------------------------------

/// `Initialize`: emits algorithm parameters for each input quantum.
class InitializeOperator : public LogicalOperator {
 public:
  explicit InitializeOperator(std::function<Record(const Record&)> init_fn)
      : init_fn_(std::move(init_fn)) {
    set_name("Initialize");
  }
  std::string kind_name() const override { return "ML:Initialize"; }
  int arity() const override { return 1; }
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

 private:
  std::function<Record(const Record&)> init_fn_;
};

/// `Process`: the per-quantum computation of the algorithm (e.g. find the
/// nearest centroid of a point).
class ProcessOperator : public LogicalOperator {
 public:
  ProcessOperator(std::function<Record(const Record&)> process_fn,
                  double cost_hint)
      : process_fn_(std::move(process_fn)), cost_hint_(cost_hint) {
    set_name("Process");
  }
  std::string kind_name() const override { return "ML:Process"; }
  int arity() const override { return 1; }
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;
  double CostHint() const override { return cost_hint_; }

 private:
  std::function<Record(const Record&)> process_fn_;
  double cost_hint_;
};

/// `Loop`: the stopping condition over the evolving state.
class LoopOperator : public LogicalOperator {
 public:
  explicit LoopOperator(std::function<bool(const Dataset&, int)> condition)
      : condition_(std::move(condition)) {
    set_name("Loop");
  }
  std::string kind_name() const override { return "ML:Loop"; }
  int arity() const override { return 1; }
  /// Loop is a control-flow template, not a per-quantum transformation.
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;
  bool ShouldContinue(const Dataset& state, int iteration) const {
    return condition_(state, iteration);
  }

 private:
  std::function<bool(const Dataset&, int)> condition_;
};

}  // namespace ml
}  // namespace rheem

#endif  // RHEEM_APPS_ML_ML_OPERATORS_H_

#include "apps/ml/ml_operators.h"

namespace rheem {
namespace ml {

Result<MlRunResult> RunMlProgram(RheemContext* ctx, const MlProgram& program,
                                 const Dataset& points,
                                 const MlRunOptions& options) {
  if (!program.init || !program.process || !program.combine ||
      !program.update) {
    return Status::InvalidArgument("MlProgram has unset UDFs");
  }
  RheemJob job(ctx);
  job.options().force_platform = options.force_platform;

  DataQuanta state = job.LoadCollection(program.init());
  DataQuanta data = job.LoadCollection(points);

  // Copy the program's UDFs into the closures: the MlProgram may go out of
  // scope before Collect() runs the plan.
  auto process = program.process;
  auto combine = program.combine;
  auto update = program.update;
  const double process_cost = program.process_cost;

  DataQuanta trained = state.Repeat(
      options.iterations, data,
      [&](DataQuanta st, DataQuanta dt) {
        DataQuanta contribs = dt.BroadcastMap(
            st,
            [process](const Record& point, const Dataset& broadcast_state) {
              return process(point, broadcast_state);
            },
            UdfMeta::Expensive(process_cost));
        DataQuanta aggregate = contribs.GlobalReduce(combine);
        return st.BroadcastMap(
            aggregate,
            [update](const Record& state_record, const Dataset& agg) {
              return update(state_record, agg);
            },
            UdfMeta::Expensive(2.0));
      });

  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, trained.CollectWithMetrics());
  MlRunResult out;
  out.final_state = std::move(result.output);
  out.metrics = result.metrics;
  return out;
}

Status InitializeOperator::ApplyOp(const Record& in, std::vector<Record>* out) {
  if (!init_fn_) return Status::InvalidArgument("Initialize UDF not set");
  out->push_back(init_fn_(in));
  return Status::OK();
}

Status ProcessOperator::ApplyOp(const Record& in, std::vector<Record>* out) {
  if (!process_fn_) return Status::InvalidArgument("Process UDF not set");
  out->push_back(process_fn_(in));
  return Status::OK();
}

Status LoopOperator::ApplyOp(const Record& in, std::vector<Record>* out) {
  (void)in;
  (void)out;
  return Status::Unsupported(
      "ML:Loop is a control-flow template; use ShouldContinue");
}

}  // namespace ml
}  // namespace rheem

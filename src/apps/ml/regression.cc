#include "apps/ml/regression.h"

#include <cmath>

namespace rheem {
namespace ml {

double LinearModel::Predict(const std::vector<double>& x) const {
  double s = bias;
  const std::size_t n = std::min(weights.size(), x.size());
  for (std::size_t i = 0; i < n; ++i) s += weights[i] * x[i];
  return s;
}

namespace {

Status CheckShape(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (data.at(0).size() < 2 ||
      data.at(0)[1].type() != ValueType::kDoubleList) {
    return Status::InvalidArgument(
        "training records must be (label, features double_list)");
  }
  return Status::OK();
}

/// Shared driver: gradient-descent programs differ only in the per-point
/// residual term fed into the gradient.
Result<RegressionResult> TrainGradientModel(
    RheemContext* ctx, const Dataset& data, const RegressionOptions& options,
    std::function<double(double label, double prediction)> residual) {
  RHEEM_RETURN_IF_ERROR(CheckShape(data));
  const int dims = static_cast<int>(data.at(0)[1].double_list_unchecked().size());
  const double lr = options.learning_rate;
  const double n = static_cast<double>(data.size());

  MlProgram program;
  program.init = [dims]() {
    return Dataset(std::vector<Record>{Record(
        {Value(std::vector<double>(static_cast<std::size_t>(dims), 0.0)),
         Value(0.0)})});
  };
  program.process = [residual](const Record& point, const Dataset& state) {
    const auto& w = state.at(0)[0].double_list_unchecked();
    const double b = state.at(0)[1].ToDoubleOr(0.0);
    const double y = point[0].ToDoubleOr(0.0);
    const auto& x = point[1].double_list_unchecked();
    double pred = b;
    for (std::size_t i = 0; i < w.size() && i < x.size(); ++i) {
      pred += w[i] * x[i];
    }
    const double r = residual(y, pred);
    std::vector<double> grad_w(w.size(), 0.0);
    for (std::size_t i = 0; i < grad_w.size() && i < x.size(); ++i) {
      grad_w[i] = r * x[i];
    }
    return Record({Value(std::move(grad_w)), Value(r)});
  };
  program.combine = [](const Record& a, const Record& b) {
    std::vector<double> gw = a[0].double_list_unchecked();
    const auto& gw2 = b[0].double_list_unchecked();
    for (std::size_t i = 0; i < gw.size() && i < gw2.size(); ++i) {
      gw[i] += gw2[i];
    }
    return Record(
        {Value(std::move(gw)), Value(a[1].ToDoubleOr(0) + b[1].ToDoubleOr(0))});
  };
  program.update = [lr, n](const Record& state, const Dataset& agg) {
    std::vector<double> w = state[0].double_list_unchecked();
    double b = state[1].ToDoubleOr(0.0);
    if (!agg.empty()) {
      const auto& gw = agg.at(0)[0].double_list_unchecked();
      const double gb = agg.at(0)[1].ToDoubleOr(0.0);
      for (std::size_t i = 0; i < w.size() && i < gw.size(); ++i) {
        w[i] -= lr * gw[i] / n;
      }
      b -= lr * gb / n;
    }
    return Record({Value(std::move(w)), Value(b)});
  };
  program.process_cost = 2.0 + 0.2 * dims;

  MlRunOptions run;
  run.iterations = options.iterations;
  run.force_platform = options.force_platform;
  RHEEM_ASSIGN_OR_RETURN(MlRunResult result, RunMlProgram(ctx, program, data, run));
  if (result.final_state.empty()) {
    return Status::ExecutionError("training produced no state");
  }
  RegressionResult out;
  out.model.weights = result.final_state.at(0)[0].double_list_unchecked();
  out.model.bias = result.final_state.at(0)[1].ToDoubleOr(0.0);
  out.metrics = result.metrics;
  return out;
}

}  // namespace

Result<RegressionResult> TrainLinearRegression(
    RheemContext* ctx, const Dataset& data, const RegressionOptions& options) {
  // d/dw (pred - y)^2 / 2 = (pred - y) * x
  return TrainGradientModel(ctx, data, options,
                            [](double y, double pred) { return pred - y; });
}

Result<RegressionResult> TrainLogisticRegression(
    RheemContext* ctx, const Dataset& data, const RegressionOptions& options) {
  // Labels y in {-1, +1}: gradient of log(1 + exp(-y * pred)).
  return TrainGradientModel(ctx, data, options, [](double y, double pred) {
    return -y / (1.0 + std::exp(y * pred));
  });
}

Result<double> MeanSquaredError(const LinearModel& model, const Dataset& data) {
  RHEEM_RETURN_IF_ERROR(CheckShape(data));
  double total = 0.0;
  for (const Record& r : data.records()) {
    const double err =
        model.Predict(r[1].double_list_unchecked()) - r[0].ToDoubleOr(0.0);
    total += err * err;
  }
  return total / static_cast<double>(data.size());
}

Result<double> LogisticAccuracy(const LinearModel& model, const Dataset& data) {
  RHEEM_RETURN_IF_ERROR(CheckShape(data));
  int64_t correct = 0;
  for (const Record& r : data.records()) {
    const double y = r[0].ToDoubleOr(0.0);
    const double pred = model.Predict(r[1].double_list_unchecked());
    if ((pred >= 0.0) == (y >= 0.0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace ml
}  // namespace rheem

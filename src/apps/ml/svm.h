#ifndef RHEEM_APPS_ML_SVM_H_
#define RHEEM_APPS_ML_SVM_H_

#include <vector>

#include "apps/ml/ml_operators.h"
#include "common/result.h"

namespace rheem {
namespace ml {

/// \brief Linear SVM trained by full-batch subgradient descent on the
/// L2-regularized hinge loss — the workload of the paper's Figure 2
/// (SVM over LIBSVM datasets, 100 iterations, Spark vs. plain Java).
struct SvmModel {
  std::vector<double> weights;
  double bias = 0.0;

  /// Signed margin w.x + b.
  double Decision(const std::vector<double>& x) const;
  /// Predicted label in {-1, +1}.
  double Predict(const std::vector<double>& x) const;
};

struct SvmOptions {
  int iterations = 100;
  double learning_rate = 0.1;
  double regularization = 0.001;
  std::string force_platform;
};

struct SvmResult {
  SvmModel model;
  ExecutionMetrics metrics;
};

/// Trains on records shaped (label: ±1 double, features: double_list).
Result<SvmResult> TrainSvm(RheemContext* ctx, const Dataset& data,
                           const SvmOptions& options);

/// Fraction of records whose label the model predicts correctly.
Result<double> SvmAccuracy(const SvmModel& model, const Dataset& data);

}  // namespace ml
}  // namespace rheem

#endif  // RHEEM_APPS_ML_SVM_H_

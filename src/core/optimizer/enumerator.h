#ifndef RHEEM_CORE_OPTIMIZER_ENUMERATOR_H_
#define RHEEM_CORE_OPTIMIZER_ENUMERATOR_H_

#include <map>
#include <set>
#include <string>

#include "common/result.h"
#include "core/mapping/platform.h"
#include "core/optimizer/cardinality.h"
#include "core/optimizer/channel.h"
#include "core/plan/plan.h"

namespace rheem {

class StatisticsCatalog;  // core/optimizer/stats_catalog.h

/// Knobs steering the multi-platform enumeration.
struct EnumeratorOptions {
  /// Non-empty: assign every operator to this platform (used by the
  /// forced-platform baselines in the Figure 2 benchmark).
  std::string force_platform;
  /// Per-operator pins (op id -> platform name); the fluent API's
  /// DataQuanta::OnPlatform ends up here.
  std::map<int, std::string> pinned_platforms;
  /// Platforms excluded for every non-pinned operator (the executor's
  /// failover path bans blacked-out platforms here). Pins win: an operator
  /// pinned to a banned platform keeps it — by construction that operator
  /// already executed there and will not run again.
  std::set<std::string> banned_platforms;
  /// Let the optimizer flip algorithmic variants (HashGroupBy vs SortGroupBy,
  /// HashJoin vs SortMergeJoin) after platform assignment.
  bool choose_algorithms = true;
  /// Account for inter-platform movement costs. Disabling reproduces the
  /// Musketeer-style optimizer the paper contrasts with (ablation A2).
  bool movement_aware = true;
  /// Learned statistics (borrowed, may be null): every operator's modelled
  /// cost is multiplied by the catalog's calibrated per-(operator kind,
  /// platform) factor, so platforms whose cost models ran hot or cold on
  /// this machine are priced with observed constants.
  const StatisticsCatalog* stats = nullptr;
};

/// \brief The outcome of enumeration: every operator bound to a platform.
struct PlatformAssignment {
  std::map<int, Platform*> by_op;
  double estimated_cost_micros = 0.0;

  std::string ToString() const;
};

/// \brief The multi-platform task optimizer's core search (paper §4.2).
///
/// Runs a dynamic program over the plan DAG in topological order:
///   dp[op][p] = cost(op on p) + sum over inputs i of
///               min over q ( dp[i][q] + move(q -> p, card_i) )
/// then backtracks from the sink's cheapest platform. For tree-shaped plans
/// this is exact; operators feeding multiple consumers are costed once per
/// consumer (a standard over-count that is conservative about movement).
///
/// Loop operators (Repeat/DoWhile) are costed as
///   iterations x (body cost on p + per-job overhead of p)
/// with the body estimated recursively — the term that penalizes
/// cluster-style platforms for small iterative jobs (Figure 2).
class Enumerator {
 public:
  Enumerator(const PlatformRegistry* registry,
             const MovementCostModel* movement)
      : registry_(registry), movement_(movement) {}

  Result<PlatformAssignment> Run(const Plan& plan, const EstimateMap& estimates,
                                 const EnumeratorOptions& options = {}) const;

  /// Total cost of running every operator of `plan` on `platform`
  /// (no movement). Used for loop bodies and exposed for tests.
  Result<double> PlanCostOnPlatform(const Plan& plan,
                                    const EstimateMap& estimates,
                                    Platform* platform) const;

  /// True when `platform` can execute `op` (recursing into loop bodies).
  static bool SupportsDeep(const Platform& platform, const Operator& op);

 private:
  const PlatformRegistry* registry_;
  const MovementCostModel* movement_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_ENUMERATOR_H_

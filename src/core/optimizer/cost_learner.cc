#include "core/optimizer/cost_learner.h"

#include <cmath>
#include <cstdio>

#include "core/api/context.h"
#include "core/executor/monitor.h"
#include "core/operators/physical_ops.h"

namespace rheem {

void CostCalibrator::Observe(const std::string& platform,
                             double estimated_micros, double actual_micros) {
  if (estimated_micros <= 0.0 || actual_micros <= 0.0) return;
  PlatformStats& s = stats_[platform];
  s.log_ratio_sum += std::log(actual_micros / estimated_micros);
  s.count += 1;
}

double CostCalibrator::FactorFor(const std::string& platform) const {
  auto it = stats_.find(platform);
  if (it == stats_.end() || it->second.count == 0) return 1.0;
  return std::exp(it->second.log_ratio_sum /
                  static_cast<double>(it->second.count));
}

int64_t CostCalibrator::observations(const std::string& platform) const {
  auto it = stats_.find(platform);
  return it == stats_.end() ? 0 : it->second.count;
}

Config CostCalibrator::SuggestConfig(
    const std::map<std::string, double>& base) const {
  Config config;
  for (const auto& [platform, per_quantum] : base) {
    config.SetDouble(platform + ".per_quantum_us",
                     per_quantum * FactorFor(platform));
  }
  return config;
}

Result<double> CostCalibrator::EstimateStageCost(const Stage& stage,
                                                 const EstimateMap& estimates) {
  const PlatformCostModel& model = stage.platform()->cost_model();
  double total = model.StageOverheadMicros();
  for (Operator* base : stage.ops()) {
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) {
      return Status::InvalidPlan("stage contains a non-physical operator");
    }
    auto self = estimates.find(op->id());
    if (self == estimates.end()) {
      return Status::InvalidArgument("missing estimate for operator " +
                                     op->name());
    }
    std::vector<double> in_cards;
    for (Operator* in : op->inputs()) {
      auto it = estimates.find(in->id());
      in_cards.push_back(it != estimates.end() ? it->second.cardinality : 0.0);
    }
    const auto* mapping = stage.platform()->mappings().Find(*op);
    const double weight = mapping != nullptr ? mapping->cost_weight : 1.0;
    total += weight *
             model.OperatorCostMicros(*op, in_cards, self->second.cardinality);
  }
  return total;
}

Status ObserveJob(const CompiledJob& job, const ExecutionMonitor& monitor,
                  CostCalibrator* calibrator) {
  if (calibrator == nullptr) {
    return Status::InvalidArgument("null calibrator");
  }
  for (const auto& record : monitor.records()) {
    if (!record.succeeded || !record.error.empty()) continue;
    const Stage* stage = nullptr;
    for (const Stage& s : job.eplan.stages) {
      if (s.id() == record.stage_id) {
        stage = &s;
        break;
      }
    }
    if (stage == nullptr) continue;
    RHEEM_ASSIGN_OR_RETURN(double estimated,
                           CostCalibrator::EstimateStageCost(*stage,
                                                             job.estimates));
    const double actual = static_cast<double>(record.wall_micros +
                                              record.sim_overhead_micros);
    calibrator->Observe(stage->platform()->name(), estimated, actual);
  }
  return Status::OK();
}

std::string CostCalibrator::Report() const {
  std::string out = "cost calibration (" + std::to_string(stats_.size()) +
                    " platform(s))\n";
  char buf[128];
  for (const auto& [platform, s] : stats_) {
    std::snprintf(buf, sizeof(buf), "  %-10s factor=%.3f from %lld run(s)\n",
                  platform.c_str(), FactorFor(platform),
                  static_cast<long long>(s.count));
    out += buf;
  }
  return out;
}

}  // namespace rheem

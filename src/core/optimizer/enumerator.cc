#include "core/optimizer/enumerator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/metrics.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/stats_catalog.h"

namespace rheem {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Finds loop-body marker operators and binds them to the loop's inputs.
Result<EstimateMap> BodyExternalEstimates(const Plan& body,
                                          const Estimate& state,
                                          const Estimate& data) {
  EstimateMap external;
  for (std::size_t i = 0; i < body.size(); ++i) {
    auto* op = dynamic_cast<PhysicalOperator*>(body.op(i));
    if (op == nullptr) continue;
    if (op->kind() == OpKind::kLoopState) external[op->id()] = state;
    if (op->kind() == OpKind::kLoopData) external[op->id()] = data;
  }
  return external;
}

struct LoopInfo {
  const Plan* body = nullptr;
  double iterations = 1.0;
};

LoopInfo GetLoopInfo(const PhysicalOperator& op) {
  if (op.kind() == OpKind::kRepeat) {
    const auto& rep = static_cast<const RepeatOp&>(op);
    return {&rep.body(), static_cast<double>(rep.num_iterations())};
  }
  if (op.kind() == OpKind::kDoWhile) {
    const auto& dw = static_cast<const DoWhileOp&>(op);
    return {&dw.body(), static_cast<double>(dw.max_iterations())};
  }
  return {};
}

}  // namespace

std::string PlatformAssignment::ToString() const {
  std::string out;
  for (const auto& [id, platform] : by_op) {
    out += "#" + std::to_string(id) + " -> " +
           (platform != nullptr ? platform->name() : std::string("<none>")) + "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "estimated cost: %.1f us\n",
                estimated_cost_micros);
  out += buf;
  return out;
}

bool Enumerator::SupportsDeep(const Platform& platform, const Operator& op) {
  const auto* pop = dynamic_cast<const PhysicalOperator*>(&op);
  if (pop == nullptr) return false;
  // Placeholder operators are bound by the runtime, not executed; every
  // platform "supports" them.
  const bool is_marker = pop->kind() == OpKind::kLoopState ||
                         pop->kind() == OpKind::kLoopData ||
                         pop->kind() == OpKind::kStageInput;
  if (!is_marker && !platform.Supports(*pop)) return false;
  const LoopInfo loop = GetLoopInfo(*pop);
  if (loop.body != nullptr) {
    for (std::size_t i = 0; i < loop.body->size(); ++i) {
      if (!SupportsDeep(platform, *loop.body->op(i))) return false;
    }
  }
  return true;
}

Result<double> Enumerator::PlanCostOnPlatform(const Plan& plan,
                                              const EstimateMap& estimates,
                                              Platform* platform) const {
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> topo, plan.TopologicalOrder());
  double total = 0.0;
  for (Operator* base : topo) {
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) return Status::InvalidPlan("expected a physical plan");
    if (!SupportsDeep(*platform, *op)) {
      return Status::Unsupported("platform '" + platform->name() +
                                 "' cannot run operator " + op->name());
    }
    auto self = estimates.find(op->id());
    if (self == estimates.end()) {
      return Status::Internal("missing estimate for op " + op->name());
    }
    std::vector<double> in_cards;
    for (Operator* in : op->inputs()) {
      auto it = estimates.find(in->id());
      in_cards.push_back(it != estimates.end() ? it->second.cardinality : 0.0);
    }
    const LoopInfo loop = GetLoopInfo(*op);
    if (loop.body != nullptr) {
      const Estimate state = op->inputs().empty()
                                 ? Estimate{}
                                 : estimates.at(op->inputs()[0]->id());
      const Estimate data = op->inputs().size() > 1
                                ? estimates.at(op->inputs()[1]->id())
                                : Estimate{};
      RHEEM_ASSIGN_OR_RETURN(EstimateMap body_external,
                             BodyExternalEstimates(*loop.body, state, data));
      RHEEM_ASSIGN_OR_RETURN(
          EstimateMap body_estimates,
          CardinalityEstimator::Estimate(*loop.body, body_external));
      RHEEM_ASSIGN_OR_RETURN(
          double body_cost,
          PlanCostOnPlatform(*loop.body, body_estimates, platform));
      total += loop.iterations *
               (body_cost + platform->cost_model().JobOverheadMicros());
    } else {
      const auto& mapping = platform->mappings().Find(*op);
      const double weight = mapping != nullptr ? mapping->cost_weight : 1.0;
      total += weight * platform->cost_model().OperatorCostMicros(
                            *op, in_cards, self->second.cardinality);
    }
  }
  total += platform->cost_model().StageOverheadMicros();
  return total;
}

Result<PlatformAssignment> Enumerator::Run(const Plan& plan,
                                           const EstimateMap& estimates,
                                           const EnumeratorOptions& options) const {
  RHEEM_RETURN_IF_ERROR(plan.Validate());
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> topo, plan.TopologicalOrder());
  CountIfEnabled(
      MetricsRegistry::Global().counter("optimizer.enumerations_total"), 1);
  int64_t candidates_costed = 0;

  std::vector<Platform*> platforms = registry_->All();
  if (platforms.empty()) {
    return Status::InvalidArgument("no platforms registered");
  }
  if (!options.force_platform.empty()) {
    RHEEM_ASSIGN_OR_RETURN(Platform * forced,
                           registry_->Get(options.force_platform));
    platforms = {forced};
  }
  const std::size_t np = platforms.size();
  auto platform_index = [&](Platform* p) -> std::size_t {
    for (std::size_t i = 0; i < np; ++i) {
      if (platforms[i] == p) return i;
    }
    return np;
  };

  // dp[op id][platform index]; choice[op id][platform index][input slot].
  std::map<int, std::vector<double>> dp;
  std::map<int, std::vector<std::vector<std::size_t>>> choice;

  for (Operator* base : topo) {
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) return Status::InvalidPlan("expected a physical plan");

    // Candidate platforms for this operator.
    std::vector<bool> allowed(np, true);
    auto pin = options.pinned_platforms.find(op->id());
    if (pin != options.pinned_platforms.end()) {
      RHEEM_ASSIGN_OR_RETURN(Platform * pinned, registry_->Get(pin->second));
      const std::size_t pi = platform_index(pinned);
      if (pi == np) {
        return Status::InvalidArgument(
            "operator " + op->name() + " pinned to platform '" + pin->second +
            "' which is excluded by force_platform");
      }
      for (std::size_t i = 0; i < np; ++i) allowed[i] = (i == pi);
    } else if (!options.banned_platforms.empty()) {
      for (std::size_t i = 0; i < np; ++i) {
        if (options.banned_platforms.count(platforms[i]->name()) > 0) {
          allowed[i] = false;
        }
      }
    }

    auto self_est = estimates.find(op->id());
    if (self_est == estimates.end()) {
      return Status::Internal("missing estimate for op " + op->name());
    }
    std::vector<double> in_cards;
    for (Operator* in : op->inputs()) {
      auto it = estimates.find(in->id());
      in_cards.push_back(it != estimates.end() ? it->second.cardinality : 0.0);
    }

    std::vector<double> costs(np, kInf);
    std::vector<std::vector<std::size_t>> picks(
        np, std::vector<std::size_t>(op->inputs().size(), 0));

    for (std::size_t pi = 0; pi < np; ++pi) {
      if (!allowed[pi]) continue;
      Platform* p = platforms[pi];
      if (!SupportsDeep(*p, *op)) continue;

      double self_cost = 0.0;
      const LoopInfo loop = GetLoopInfo(*op);
      if (loop.body != nullptr) {
        const Estimate state = op->inputs().empty()
                                   ? Estimate{}
                                   : estimates.at(op->inputs()[0]->id());
        const Estimate data = op->inputs().size() > 1
                                  ? estimates.at(op->inputs()[1]->id())
                                  : Estimate{};
        auto body_external = BodyExternalEstimates(*loop.body, state, data);
        if (!body_external.ok()) continue;
        auto body_estimates = CardinalityEstimator::Estimate(
            *loop.body, body_external.ValueOrDie());
        if (!body_estimates.ok()) continue;
        auto body_cost =
            PlanCostOnPlatform(*loop.body, body_estimates.ValueOrDie(), p);
        if (!body_cost.ok()) continue;
        self_cost = loop.iterations * (body_cost.ValueOrDie() +
                                       p->cost_model().JobOverheadMicros());
      } else {
        const auto* mapping = p->mappings().Find(*op);
        const double weight = mapping != nullptr ? mapping->cost_weight : 1.0;
        self_cost = weight * p->cost_model().OperatorCostMicros(
                                 *op, in_cards, self_est->second.cardinality);
        if (options.stats != nullptr) {
          self_cost *= options.stats->CostFactor(op->kind_name(), p->name());
        }
      }
      // A source operator opens a task atom on its platform; charge the
      // platform's fixed stage overhead there (platform switches below
      // charge it on every cross-platform edge). This is what makes small
      // jobs stay off cluster-style platforms (Figure 2's left end).
      if (op->inputs().empty()) {
        self_cost += p->cost_model().StageOverheadMicros();
      }

      double total = self_cost;
      bool feasible = true;
      for (std::size_t s = 0; s < op->inputs().size(); ++s) {
        Operator* in = op->inputs()[s];
        const auto& in_dp = dp.at(in->id());
        const Estimate in_est = estimates.at(in->id());
        double best = kInf;
        std::size_t best_q = 0;
        for (std::size_t qi = 0; qi < np; ++qi) {
          if (in_dp[qi] == kInf) continue;
          double move = 0.0;
          if (platforms[qi] != p) {
            move += p->cost_model().StageOverheadMicros();
          }
          if (options.movement_aware) {
            move += movement_->MoveCostMicros(*platforms[qi], *p,
                                              in_est.cardinality,
                                              in_est.avg_bytes);
          }
          const double cand = in_dp[qi] + move;
          if (cand < best) {
            best = cand;
            best_q = qi;
          }
        }
        if (best == kInf) {
          feasible = false;
          break;
        }
        total += best;
        picks[pi][s] = best_q;
      }
      if (feasible) costs[pi] = total;
      ++candidates_costed;
    }

    bool any = false;
    for (double c : costs) any = any || (c != kInf);
    if (!any) {
      return Status::Unsupported("no registered platform can execute operator " +
                                 op->name());
    }
    dp[op->id()] = std::move(costs);
    choice[op->id()] = std::move(picks);
  }

  // Pick the cheapest platform for the sink, then backtrack.
  Operator* sink = plan.sink();
  const auto& sink_dp = dp.at(sink->id());
  std::size_t best_pi = 0;
  double best_cost = kInf;
  for (std::size_t pi = 0; pi < np; ++pi) {
    if (sink_dp[pi] < best_cost) {
      best_cost = sink_dp[pi];
      best_pi = pi;
    }
  }

  CountIfEnabled(
      MetricsRegistry::Global().counter("optimizer.dp_candidates_total"),
      candidates_costed);

  PlatformAssignment assignment;
  assignment.estimated_cost_micros = best_cost;
  // DFS backtrack; first visit of a shared operator wins (deterministic).
  std::vector<std::pair<Operator*, std::size_t>> work{{sink, best_pi}};
  while (!work.empty()) {
    auto [op, pi] = work.back();
    work.pop_back();
    auto [it, inserted] = assignment.by_op.emplace(op->id(), platforms[pi]);
    if (!inserted) continue;
    const auto& picks = choice.at(op->id())[pi];
    for (std::size_t s = 0; s < op->inputs().size(); ++s) {
      work.emplace_back(op->inputs()[s], picks[s]);
    }
  }

  // Post-pass: flip algorithmic variants where the assigned platform prefers
  // the alternative (paper §3.1 Example 2: the core-layer optimizer chooses
  // between SortGroupBy and HashGroupBy).
  if (options.choose_algorithms) {
    for (Operator* base : topo) {
      auto* op = dynamic_cast<PhysicalOperator*>(base);
      Platform* p = assignment.by_op.count(op->id()) > 0
                        ? assignment.by_op.at(op->id())
                        : nullptr;
      if (p == nullptr) continue;
      std::vector<double> in_cards;
      for (Operator* in : op->inputs()) {
        in_cards.push_back(estimates.at(in->id()).cardinality);
      }
      const double out_card = estimates.at(op->id()).cardinality;
      auto cost_now = [&](PhysicalOperator* o) {
        const auto* m = p->mappings().Find(*o);
        const double w = m != nullptr ? m->cost_weight : 1.0;
        return w * p->cost_model().OperatorCostMicros(*o, in_cards, out_card);
      };
      if (auto* gb = dynamic_cast<GroupByKeyOp*>(op)) {
        const GroupByAlgorithm original = gb->algorithm();
        const GroupByAlgorithm alternative =
            original == GroupByAlgorithm::kHash ? GroupByAlgorithm::kSort
                                                : GroupByAlgorithm::kHash;
        const double c0 = cost_now(gb);
        gb->set_algorithm(alternative);
        const bool supported = p->Supports(*gb);
        const double c1 = supported ? cost_now(gb) : kInf;
        if (c1 >= c0) gb->set_algorithm(original);
      } else if (auto* j = dynamic_cast<JoinOp*>(op)) {
        const JoinAlgorithm original = j->algorithm();
        const JoinAlgorithm alternative = original == JoinAlgorithm::kHash
                                              ? JoinAlgorithm::kSortMerge
                                              : JoinAlgorithm::kHash;
        const double c0 = cost_now(j);
        j->set_algorithm(alternative);
        const bool supported = p->Supports(*j);
        const double c1 = supported ? cost_now(j) : kInf;
        if (c1 >= c0) j->set_algorithm(original);
      }
    }
  }

  return assignment;
}

}  // namespace rheem

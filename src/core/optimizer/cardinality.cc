#include "core/optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "core/expr/expr.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/cost_model.h"
#include "data/serialization.h"

namespace rheem {

namespace {

Estimate SourceEstimate(const Dataset& data) {
  Estimate e;
  e.cardinality = static_cast<double>(data.size());
  if (!data.empty()) {
    // Sample up to 64 records for the width estimate.
    const std::size_t n = std::min<std::size_t>(data.size(), 64);
    int64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bytes += Serializer::EncodedSize(data.at(i));
    }
    e.avg_bytes = static_cast<double>(bytes) / static_cast<double>(n);
  }
  return e;
}

}  // namespace

Result<EstimateMap> CardinalityEstimator::Estimate(const Plan& plan,
                                                   const EstimateMap& external) {
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> topo, plan.TopologicalOrder());
  EstimateMap out = external;

  for (Operator* base : topo) {
    if (out.count(base->id()) > 0) continue;  // externally provided
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) {
      return Status::InvalidPlan("cardinality estimation requires a physical plan");
    }
    std::vector<::rheem::Estimate> in;
    in.reserve(op->inputs().size());
    for (Operator* upstream : op->inputs()) {
      auto it = out.find(upstream->id());
      if (it == out.end()) {
        return Status::Internal("topological order violated in estimator");
      }
      in.push_back(it->second);
    }
    const ::rheem::Estimate in0 = in.empty() ? ::rheem::Estimate{} : in[0];
    const ::rheem::Estimate in1 = in.size() > 1 ? in[1] : ::rheem::Estimate{};
    const UdfHints hints = HintsOf(*op);

    ::rheem::Estimate e = in0;  // default: pass-through shape
    switch (op->kind()) {
      case OpKind::kCollectionSource:
        e = SourceEstimate(static_cast<const CollectionSourceOp&>(*op).data());
        break;
      case OpKind::kStageInput:
      case OpKind::kLoopState:
      case OpKind::kLoopData:
        // Markers must be bound via `external`; default to empty.
        e = ::rheem::Estimate{0.0, 32.0};
        break;
      case OpKind::kMap:
      case OpKind::kBroadcastMap:
        e.cardinality = in0.cardinality;
        break;
      case OpKind::kFlatMap:
        e.cardinality = in0.cardinality * std::max(0.0, hints.selectivity);
        break;
      case OpKind::kFilter: {
        // A declarative predicate yields a per-expression estimate (derived
        // from its comparison/logical structure); closure filters fall back
        // to the caller-supplied UdfMeta hint.
        const auto& udf = static_cast<const FilterOp&>(*op).udf();
        const double sel = udf.expr != nullptr
                               ? expr::EstimateSelectivity(*udf.expr)
                               : std::clamp(hints.selectivity, 0.0, 1.0);
        e.cardinality = in0.cardinality * sel;
        break;
      }
      case OpKind::kProject: {
        const auto& p = static_cast<const ProjectOp&>(*op);
        const double cols = static_cast<double>(p.columns().size());
        e.avg_bytes = std::max(8.0, in0.avg_bytes * cols /
                                        std::max(1.0, cols + 2.0));
        break;
      }
      case OpKind::kDistinct:
        e.cardinality = in0.cardinality * 0.5;
        break;
      case OpKind::kSort:
      case OpKind::kZipWithId:
        break;  // pass-through
      case OpKind::kSample:
        e.cardinality =
            in0.cardinality * static_cast<const SampleOp&>(*op).fraction();
        break;
      case OpKind::kReduceByKey:
      case OpKind::kGroupByKey: {
        // Key selectivity hint = distinct-key ratio; default 10%.
        double ratio = hints.selectivity;
        if (ratio <= 0.0 || ratio > 1.0) ratio = 0.1;
        e.cardinality = std::max(1.0, in0.cardinality * ratio);
        break;
      }
      case OpKind::kGlobalReduce:
      case OpKind::kCount:
        e.cardinality = in0.cardinality > 0 ? 1.0 : 0.0;
        break;
      case OpKind::kTopK:
        e.cardinality = std::min(
            in0.cardinality,
            static_cast<double>(static_cast<const TopKOp&>(*op).k()));
        break;
      case OpKind::kJoin:
        // Textbook equi-join with unknown key stats.
        e.cardinality = std::max(in0.cardinality, in1.cardinality);
        e.avg_bytes = in0.avg_bytes + in1.avg_bytes;
        break;
      case OpKind::kThetaJoin: {
        double sel = hints.selectivity;
        if (sel <= 0.0 || sel > 1.0) sel = 0.1;
        e.cardinality = in0.cardinality * in1.cardinality * sel;
        e.avg_bytes = in0.avg_bytes + in1.avg_bytes;
        break;
      }
      case OpKind::kIEJoin:
        // Two independent inequality predicates ~ (1/2)*(1/2) of pair space,
        // further damped because real DC rules are selective.
        e.cardinality = in0.cardinality * in1.cardinality * 0.05;
        e.avg_bytes = in0.avg_bytes + in1.avg_bytes;
        break;
      case OpKind::kCrossProduct:
        e.cardinality = in0.cardinality * in1.cardinality;
        e.avg_bytes = in0.avg_bytes + in1.avg_bytes;
        break;
      case OpKind::kUnion:
        e.cardinality = in0.cardinality + in1.cardinality;
        e.avg_bytes = (in0.avg_bytes + in1.avg_bytes) / 2.0;
        break;
      case OpKind::kIntersect:
        e.cardinality = std::min(in0.cardinality, in1.cardinality) * 0.5;
        break;
      case OpKind::kSubtract:
        e.cardinality = in0.cardinality * 0.5;
        break;
      case OpKind::kRepeat:
      case OpKind::kDoWhile:
        e = in0;  // the loop returns an evolved state of the same shape
        break;
      case OpKind::kCollect:
        break;  // pass-through
    }
    out[op->id()] = e;
  }
  return out;
}

}  // namespace rheem

#ifndef RHEEM_CORE_OPTIMIZER_LOGICAL_REWRITES_H_
#define RHEEM_CORE_OPTIMIZER_LOGICAL_REWRITES_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/plan/plan.h"

namespace rheem {

/// \brief Application-layer plan rewrites (paper §4.1: "pre-defined
/// optimizations such as operator push-down").
///
/// In this implementation the rewrites run on the freshly translated wrapper
/// plan — physical operators that still carry the logical UDF annotations —
/// which is equivalent to rewriting the logical plan and keeps the logical
/// graph immutable for the caller. All rewrites are semantics-preserving
/// without UDF introspection:
///
///  - ReorderFilterChains: adjacent conjunctive filters are ordered by
///    rank = cost / (1 - selectivity), cheapest-most-selective first.
///  - PushFilterThroughUnion: Filter(Union(a, b)) => Union(F(a), F(b)),
///    shrinking data before the union's materialization point.
///  - PushProjectThroughUnion: likewise for structural projections.
///
/// Rewrites may orphan operators; Apply() finishes with Plan::PruneToSink and
/// remaps `pins` (operator-id keyed platform pins) accordingly.
class ApplicationRewrites {
 public:
  struct Stats {
    int filters_reordered = 0;
    int filters_pushed = 0;
    int projects_pushed = 0;
  };

  static Result<Stats> Apply(Plan* plan, std::map<int, std::string>* pins);
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_LOGICAL_REWRITES_H_

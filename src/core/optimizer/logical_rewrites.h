#ifndef RHEEM_CORE_OPTIMIZER_LOGICAL_REWRITES_H_
#define RHEEM_CORE_OPTIMIZER_LOGICAL_REWRITES_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/plan/plan.h"

namespace rheem {

/// \brief Application-layer plan rewrites (paper §4.1: "pre-defined
/// optimizations such as operator push-down").
///
/// In this implementation the rewrites run on the freshly translated wrapper
/// plan — physical operators that still carry the logical UDF annotations —
/// which is equivalent to rewriting the logical plan and keeps the logical
/// graph immutable for the caller. All rewrites are semantics-preserving
/// without UDF introspection:
///
///  - ReorderFilterChains: adjacent conjunctive filters are ordered by
///    rank = cost / (1 - selectivity), cheapest-most-selective first.
///  - PushFilterThroughUnion: Filter(Union(a, b)) => Union(F(a), F(b)),
///    shrinking data before the union's materialization point.
///  - PushProjectThroughUnion: likewise for structural projections.
///
/// Operators carrying a declarative expression (core/expr) additionally get
/// the rewrites that need to see *inside* the predicate — impossible for
/// closure UDFs:
///
///  - SplitConjunctiveFilters: Filter(a AND b) => Filter(a) -> Filter(b),
///    so each conjunct can be reordered and pushed independently.
///  - PushFilterThroughProject / PushFilterThroughMap: a declarative filter
///    descends below a Project (or a declarative projection Map whose
///    referenced output fields are pass-through field references), with its
///    field indices remapped to the input layout.
///  - PushFilterIntoJoin: each conjunct referencing only left-side (or only
///    right-side) fields of an equi-join output moves into that join input,
///    shrinking the join's build/probe sides.
///
/// Rewrites may orphan operators; Apply() finishes with Plan::PruneToSink and
/// remaps `pins` (operator-id keyed platform pins) accordingly.
class ApplicationRewrites {
 public:
  struct Stats {
    int filters_reordered = 0;
    int filters_pushed = 0;    // through unions
    int projects_pushed = 0;
    int conjuncts_split = 0;
    int filters_pushed_project = 0;  // below Project / declarative Map
    int filters_pushed_join = 0;     // conjuncts moved into join inputs

    int total() const {
      return filters_reordered + filters_pushed + projects_pushed +
             conjuncts_split + filters_pushed_project + filters_pushed_join;
    }
  };

  static Result<Stats> Apply(Plan* plan, std::map<int, std::string>* pins);
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_LOGICAL_REWRITES_H_

#include "core/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace rheem {

UdfHints HintsOf(const PhysicalOperator& op) {
  UdfHints h;
  switch (op.kind()) {
    case OpKind::kMap: {
      const auto& m = static_cast<const MapOp&>(op).udf().meta;
      h = {m.selectivity, m.cost_factor};
      break;
    }
    case OpKind::kFlatMap: {
      const auto& m = static_cast<const FlatMapOp&>(op).udf().meta;
      h = {m.selectivity, m.cost_factor};
      break;
    }
    case OpKind::kFilter: {
      const auto& m = static_cast<const FilterOp&>(op).udf().meta;
      h = {m.selectivity, m.cost_factor};
      break;
    }
    case OpKind::kBroadcastMap: {
      const auto& m = static_cast<const BroadcastMapOp&>(op).udf().meta;
      h = {m.selectivity, m.cost_factor};
      break;
    }
    case OpKind::kReduceByKey: {
      // The key UDF's selectivity hint is read as the distinct-key ratio.
      const auto& rb = static_cast<const ReduceByKeyOp&>(op);
      h = {rb.key().meta.selectivity, rb.reduce().meta.cost_factor};
      break;
    }
    case OpKind::kGroupByKey: {
      const auto& gb = static_cast<const GroupByKeyOp&>(op);
      h = {gb.key().meta.selectivity, gb.group().meta.cost_factor};
      break;
    }
    case OpKind::kThetaJoin: {
      const auto& m = static_cast<const ThetaJoinOp&>(op).condition().meta;
      h = {m.selectivity, m.cost_factor};
      break;
    }
    default:
      break;
  }
  return h;
}

double BasicCostModel::OperatorCostMicros(const PhysicalOperator& op,
                                          const std::vector<double>& in_cards,
                                          double out_card) const {
  const double q = params_.per_quantum_micros;
  const double par = std::max(1.0, params_.parallelism);
  const double shuffle = params_.shuffle_micros_per_quantum;
  const double fuse = params_.fusion_discount;
  const UdfHints hints = HintsOf(op);

  const double in0 = in_cards.empty() ? 0.0 : in_cards[0];
  const double in1 = in_cards.size() > 1 ? in_cards[1] : 0.0;
  auto nlogn = [](double n) { return n * std::log2(n + 2.0); };

  switch (op.kind()) {
    case OpKind::kCollectionSource:
    case OpKind::kStageInput:
    case OpKind::kLoopState:
    case OpKind::kLoopData:
      return out_card * q * 0.1;  // hand-off only
    case OpKind::kCollect:
      return in0 * q * 0.1;
    case OpKind::kMap:
    case OpKind::kFlatMap:
    case OpKind::kFilter:
      return in0 * q * hints.cost_factor * fuse / par;
    case OpKind::kBroadcastMap:  // side input blocks fusion
      return in0 * q * hints.cost_factor / par;
    case OpKind::kProject:
      return in0 * q * fuse / par;
    case OpKind::kZipWithId:
    case OpKind::kSample:
      return in0 * q / par;
    case OpKind::kDistinct:
      return in0 * q * 1.5 / par + in0 * shuffle;
    case OpKind::kSort:
      return nlogn(in0) * q * 0.4 / par + in0 * shuffle;
    case OpKind::kReduceByKey:
      return in0 * q * (1.0 + hints.cost_factor) / par + in0 * shuffle;
    case OpKind::kGroupByKey: {
      const auto& gb = static_cast<const GroupByKeyOp&>(op);
      const double build =
          gb.algorithm() == GroupByAlgorithm::kHash
              ? in0 * q * 1.2              // hash-table build + probe
              : nlogn(in0) * q * 0.4;      // sort + run detection
      return build / par + in0 * q * hints.cost_factor / par + in0 * shuffle;
    }
    case OpKind::kGlobalReduce:
    case OpKind::kCount:
      return in0 * q / par;
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(op);
      const double work = j.algorithm() == JoinAlgorithm::kHash
                              ? (in0 + in1 + out_card) * q
                              : (nlogn(in0) + nlogn(in1) + out_card) * q * 0.5;
      return work / par + (in0 + in1) * shuffle;
    }
    case OpKind::kThetaJoin:
      return in0 * in1 * q * hints.cost_factor / par + (in0 + in1) * shuffle;
    case OpKind::kIEJoin: {
      // sorts + bit-array scan (1/64 of the pair space) + output.
      const double work =
          (nlogn(in0) + nlogn(in1)) * q * 0.5 + in0 * in1 * q / 64.0 +
          out_card * q;
      return work / par + (in0 + in1) * shuffle;
    }
    case OpKind::kCrossProduct:
      return in0 * in1 * q / par + (in0 + in1) * shuffle;
    case OpKind::kUnion:
      return (in0 + in1) * q * 0.1 / par;
    case OpKind::kIntersect:
    case OpKind::kSubtract:
      return (in0 + in1) * q * 1.2 / par + (in0 + in1) * shuffle;
    case OpKind::kTopK: {
      const double k = static_cast<double>(
          static_cast<const TopKOp&>(op).k());
      return in0 * std::log2(k + 2.0) * q * 0.3 / par;
    }
    case OpKind::kRepeat:
    case OpKind::kDoWhile:
      // Loop cost = iterations x (body + job overhead); computed by the
      // enumerator, which can recurse into the body with cardinalities.
      return 0.0;
  }
  return in0 * q / par;
}

}  // namespace rheem

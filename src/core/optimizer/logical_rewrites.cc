#include "core/optimizer/logical_rewrites.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/expr/expr.h"
#include "core/operators/physical_ops.h"

namespace rheem {

namespace {

double FilterRank(const FilterOp& f) {
  const double sel = std::clamp(f.udf().meta.selectivity, 0.0, 0.999);
  return f.udf().meta.cost_factor / (1.0 - sel);
}

/// Repoints every consumer of `from` (and the sink) to `to`.
void ReplaceDownstream(Plan* plan, Operator* from, Operator* to) {
  for (Operator* consumer : plan->ConsumersOf(from)) {
    if (consumer == to) continue;
    for (std::size_t i = 0; i < consumer->inputs().size(); ++i) {
      if (consumer->inputs()[i] == from) consumer->SetInput(i, to);
    }
  }
  if (plan->sink() == from) plan->SetSink(to);
}

/// Ids of operators still wired to the sink. Rewrites orphan replaced
/// operators (pruning happens once, at the end of Apply), so every scan must
/// ignore them: an orphan would otherwise keep matching its old pattern each
/// fixpoint round — or, worse, swap payloads with a live filter.
std::set<int> ReachableFromSink(const Plan& plan) {
  std::set<int> live;
  std::vector<Operator*> stack;
  if (plan.sink() != nullptr) stack.push_back(plan.sink());
  while (!stack.empty()) {
    Operator* op = stack.back();
    stack.pop_back();
    if (!live.insert(op->id()).second) continue;
    for (Operator* in : op->inputs()) stack.push_back(in);
  }
  return live;
}

/// Number of *live* consumers of `op` (single-consumer safety checks must
/// not be blocked — or fooled — by orphans still pointing at `op`).
int LiveConsumers(const Plan& plan, const Operator* op,
                  const std::set<int>& live) {
  int n = 0;
  for (Operator* c : plan.ConsumersOf(op)) {
    if (live.count(c->id()) > 0) ++n;
  }
  return n;
}

int ReorderFilterChains(Plan* plan) {
  int swaps = 0;
  const std::set<int> live = ReachableFromSink(*plan);
  // Bubble-style passes over Filter->Filter edges until stable; chains are
  // short, so this converges immediately in practice.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < plan->size(); ++i) {
      auto* lower = dynamic_cast<FilterOp*>(plan->op(i));
      if (lower == nullptr || live.count(lower->id()) == 0) continue;
      auto* upper = dynamic_cast<FilterOp*>(lower->inputs()[0]);
      if (upper == nullptr) continue;
      // Only safe when the chain is linear: `upper` feeds `lower` alone.
      if (LiveConsumers(*plan, upper, live) != 1) continue;
      if (FilterRank(*lower) < FilterRank(*upper)) {
        PredicateUdf tmp = lower->udf();
        lower->set_udf(upper->udf());
        upper->set_udf(std::move(tmp));
        ++swaps;
        changed = true;
      }
    }
  }
  return swaps;
}

int PushFiltersThroughUnions(Plan* plan) {
  int pushed = 0;
  const std::set<int> live = ReachableFromSink(*plan);
  // Collect candidates first; Add() invalidates nothing but keeps the loop
  // bounds honest.
  std::vector<FilterOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* f = dynamic_cast<FilterOp*>(plan->op(i));
    if (f == nullptr || live.count(f->id()) == 0) continue;
    auto* u = dynamic_cast<UnionOp*>(f->inputs()[0]);
    if (u == nullptr) continue;
    // The union must feed only this filter, or we would duplicate work for
    // its other consumers.
    if (LiveConsumers(*plan, u, live) != 1) continue;
    candidates.push_back(f);
  }
  for (FilterOp* f : candidates) {
    auto* u = static_cast<UnionOp*>(f->inputs()[0]);
    Operator* left = u->inputs()[0];
    Operator* right = u->inputs()[1];
    auto* fl = plan->Add<FilterOp>({left}, f->udf());
    auto* fr = plan->Add<FilterOp>({right}, f->udf());
    auto* u2 = plan->Add<UnionOp>({fl, fr});
    ReplaceDownstream(plan, f, u2);
    ++pushed;
  }
  return pushed;
}

int PushProjectsThroughUnions(Plan* plan) {
  int pushed = 0;
  const std::set<int> live = ReachableFromSink(*plan);
  std::vector<ProjectOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* p = dynamic_cast<ProjectOp*>(plan->op(i));
    if (p == nullptr || live.count(p->id()) == 0) continue;
    auto* u = dynamic_cast<UnionOp*>(p->inputs()[0]);
    if (u == nullptr) continue;
    if (LiveConsumers(*plan, u, live) != 1) continue;
    candidates.push_back(p);
  }
  for (ProjectOp* p : candidates) {
    auto* u = static_cast<UnionOp*>(p->inputs()[0]);
    Operator* left = u->inputs()[0];
    Operator* right = u->inputs()[1];
    auto* pl = plan->Add<ProjectOp>({left}, p->columns());
    auto* pr = plan->Add<ProjectOp>({right}, p->columns());
    auto* u2 = plan->Add<UnionOp>({pl, pr});
    ReplaceDownstream(plan, p, u2);
    ++pushed;
  }
  return pushed;
}

// --- declarative (expression-bearing) rewrites ------------------------------
//
// These only fire for operators built through the declarative API: they need
// to read field references and constants out of the predicate, which a
// closure UDF cannot provide.

/// Wraps MakePredicateUdf for rewrite use; the expression was type-checked
/// when the plan was built, so failures only mean "leave this candidate
/// alone", never an error.
bool MakeFilterUdf(const expr::ExprPtr& e, PredicateUdf* out) {
  auto udf = expr::MakePredicateUdf(e);
  if (!udf.ok()) return false;
  *out = std::move(udf).ValueOrDie();
  return true;
}

/// Record width of each operator's output, or -1 when unknown (opaque UDFs,
/// ragged sources). Widths let the join push-down decide which side of the
/// concatenated output a field index addresses.
std::map<int, int> InferWidths(const Plan& plan) {
  std::map<int, int> widths;
  auto topo = plan.TopologicalOrder();
  if (!topo.ok()) return widths;
  for (Operator* base : *topo) {
    auto in = [&](std::size_t i) -> int {
      if (i >= base->inputs().size()) return -1;
      auto it = widths.find(base->inputs()[i]->id());
      return it == widths.end() ? -1 : it->second;
    };
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    if (op == nullptr) {
      widths[base->id()] = -1;
      continue;
    }
    int w = -1;
    switch (op->kind()) {
      case OpKind::kCollectionSource: {
        const auto& rows =
            static_cast<CollectionSourceOp*>(op)->data().records();
        if (!rows.empty()) {
          w = static_cast<int>(rows[0].size());
          for (const Record& r : rows) {
            if (static_cast<int>(r.size()) != w) { w = -1; break; }
          }
        }
        break;
      }
      case OpKind::kMap: {
        const auto& proj = static_cast<MapOp*>(op)->udf().projection;
        if (!proj.empty()) w = static_cast<int>(proj.size());
        break;
      }
      case OpKind::kProject:
        w = static_cast<int>(static_cast<ProjectOp*>(op)->columns().size());
        break;
      case OpKind::kFilter:
      case OpKind::kDistinct:
      case OpKind::kSort:
      case OpKind::kSample:
      case OpKind::kTopK:
      case OpKind::kIntersect:
      case OpKind::kSubtract:
      case OpKind::kCollect:
        w = in(0);
        break;
      case OpKind::kZipWithId:
        w = in(0) < 0 ? -1 : in(0) + 1;
        break;
      case OpKind::kJoin:
      case OpKind::kThetaJoin:
      case OpKind::kIEJoin:
      case OpKind::kCrossProduct:
        w = (in(0) < 0 || in(1) < 0) ? -1 : in(0) + in(1);
        break;
      case OpKind::kUnion:
        w = in(0) == in(1) ? in(0) : -1;
        break;
      case OpKind::kCount:
        w = 1;
        break;
      default:
        break;  // opaque UDF output: unknown
    }
    widths[op->id()] = w;
  }
  return widths;
}

/// Filter(a AND b) => Filter(a) -> Filter(b). Each conjunct then reorders and
/// pushes independently.
int SplitConjunctiveFilters(Plan* plan) {
  int split = 0;
  const std::set<int> live = ReachableFromSink(*plan);
  std::vector<FilterOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* f = dynamic_cast<FilterOp*>(plan->op(i));
    if (f == nullptr || live.count(f->id()) == 0) continue;
    if (f->udf().expr == nullptr) continue;
    if (expr::SplitConjuncts(f->udf().expr).size() > 1) candidates.push_back(f);
  }
  for (FilterOp* f : candidates) {
    auto conjuncts = expr::SplitConjuncts(f->udf().expr);
    Operator* upstream = f->inputs()[0];
    bool ok = true;
    for (const auto& c : conjuncts) {
      PredicateUdf udf;
      if (!MakeFilterUdf(c, &udf)) { ok = false; break; }
      upstream = plan->Add<FilterOp>({upstream}, std::move(udf));
    }
    if (!ok) continue;
    ReplaceDownstream(plan, f, upstream);
    split += static_cast<int>(conjuncts.size()) - 1;
  }
  return split;
}

/// Declarative filter below a structural Project: field i of the filter input
/// is column columns()[i] of the project input.
int PushFiltersThroughProjects(Plan* plan) {
  int pushed = 0;
  const std::set<int> live = ReachableFromSink(*plan);
  std::vector<FilterOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* f = dynamic_cast<FilterOp*>(plan->op(i));
    if (f == nullptr || live.count(f->id()) == 0) continue;
    if (f->udf().expr == nullptr) continue;
    auto* p = dynamic_cast<ProjectOp*>(f->inputs()[0]);
    if (p == nullptr) continue;
    if (LiveConsumers(*plan, p, live) != 1) continue;
    if (expr::MaxFieldIndex(*f->udf().expr) >=
        static_cast<int>(p->columns().size())) {
      continue;
    }
    candidates.push_back(f);
  }
  for (FilterOp* f : candidates) {
    auto* p = static_cast<ProjectOp*>(f->inputs()[0]);
    std::map<int, int> remap;
    for (std::size_t i = 0; i < p->columns().size(); ++i) {
      remap[static_cast<int>(i)] = p->columns()[i];
    }
    auto remapped = expr::RemapFields(f->udf().expr, remap);
    if (!remapped.ok()) continue;
    PredicateUdf udf;
    if (!MakeFilterUdf(*remapped, &udf)) continue;
    auto* f2 = plan->Add<FilterOp>({p->inputs()[0]}, std::move(udf));
    auto* p2 = plan->Add<ProjectOp>({f2}, p->columns());
    ReplaceDownstream(plan, f, p2);
    ++pushed;
  }
  return pushed;
}

/// Declarative filter below a declarative projection Map — but only when
/// every field the filter reads is produced by a pass-through field
/// reference, so the predicate can be rewritten against the map's input.
int PushFiltersThroughMaps(Plan* plan) {
  int pushed = 0;
  const std::set<int> live = ReachableFromSink(*plan);
  std::vector<FilterOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* f = dynamic_cast<FilterOp*>(plan->op(i));
    if (f == nullptr || live.count(f->id()) == 0) continue;
    if (f->udf().expr == nullptr) continue;
    auto* m = dynamic_cast<MapOp*>(f->inputs()[0]);
    if (m == nullptr || m->udf().projection.empty()) continue;
    if (LiveConsumers(*plan, m, live) != 1) continue;
    std::set<int> fields;
    expr::CollectFields(*f->udf().expr, &fields);
    bool all_pass_through = true;
    for (int idx : fields) {
      if (idx < 0 ||
          idx >= static_cast<int>(m->udf().projection.size()) ||
          m->udf().projection[idx]->kind != expr::ExprKind::kField) {
        all_pass_through = false;
        break;
      }
    }
    if (all_pass_through) candidates.push_back(f);
  }
  for (FilterOp* f : candidates) {
    auto* m = static_cast<MapOp*>(f->inputs()[0]);
    std::set<int> fields;
    expr::CollectFields(*f->udf().expr, &fields);
    std::map<int, int> remap;
    for (int idx : fields) {
      remap[idx] = m->udf().projection[idx]->field_index;
    }
    auto remapped = expr::RemapFields(f->udf().expr, remap);
    if (!remapped.ok()) continue;
    PredicateUdf udf;
    if (!MakeFilterUdf(*remapped, &udf)) continue;
    auto* f2 = plan->Add<FilterOp>({m->inputs()[0]}, std::move(udf));
    auto* m2 = plan->Add<MapOp>({f2}, m->udf());
    ReplaceDownstream(plan, f, m2);
    ++pushed;
  }
  return pushed;
}

/// Conjuncts of a declarative filter above an equi-join move into the join
/// input they exclusively reference. A row a side-filter drops would have
/// made every one of its join pairs fail the original predicate, so the
/// result is unchanged while the join's build/probe inputs shrink.
int PushFiltersIntoJoins(Plan* plan) {
  int pushed = 0;
  const std::map<int, int> widths = InferWidths(*plan);
  const std::set<int> live = ReachableFromSink(*plan);
  std::vector<FilterOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* f = dynamic_cast<FilterOp*>(plan->op(i));
    if (f == nullptr || live.count(f->id()) == 0) continue;
    if (f->udf().expr == nullptr) continue;
    auto* j = dynamic_cast<JoinOp*>(f->inputs()[0]);
    if (j == nullptr) continue;
    if (LiveConsumers(*plan, j, live) != 1) continue;
    auto it = widths.find(j->inputs()[0]->id());
    if (it == widths.end() || it->second <= 0) continue;
    candidates.push_back(f);
  }
  for (FilterOp* f : candidates) {
    auto* j = static_cast<JoinOp*>(f->inputs()[0]);
    const int left_width = widths.at(j->inputs()[0]->id());
    std::vector<expr::ExprPtr> left_side, right_side, residual;
    for (const auto& c : expr::SplitConjuncts(f->udf().expr)) {
      std::set<int> fields;
      expr::CollectFields(*c, &fields);
      if (fields.empty()) {
        residual.push_back(c);  // constant predicate: nothing to gain
      } else if (*fields.rbegin() < left_width) {
        left_side.push_back(c);
      } else if (*fields.begin() >= left_width) {
        right_side.push_back(expr::ShiftFields(c, -left_width));
      } else {
        residual.push_back(c);  // straddles both sides
      }
    }
    if (left_side.empty() && right_side.empty()) continue;

    Operator* left = j->inputs()[0];
    Operator* right = j->inputs()[1];
    bool ok = true;
    for (const auto& c : left_side) {
      PredicateUdf udf;
      if (!MakeFilterUdf(c, &udf)) { ok = false; break; }
      left = plan->Add<FilterOp>({left}, std::move(udf));
    }
    for (const auto& c : right_side) {
      PredicateUdf udf;
      if (!MakeFilterUdf(c, &udf)) { ok = false; break; }
      right = plan->Add<FilterOp>({right}, std::move(udf));
    }
    if (!ok) continue;
    auto* j2 = plan->Add<JoinOp>({left, right}, j->left_key(), j->right_key(),
                                 j->algorithm());
    Operator* top = j2;
    if (!residual.empty()) {
      PredicateUdf udf;
      if (!MakeFilterUdf(expr::AndAll(residual), &udf)) continue;
      top = plan->Add<FilterOp>({j2}, std::move(udf));
    }
    ReplaceDownstream(plan, f, top);
    pushed += static_cast<int>(left_side.size() + right_side.size());
  }
  return pushed;
}

}  // namespace

Result<ApplicationRewrites::Stats> ApplicationRewrites::Apply(
    Plan* plan, std::map<int, std::string>* pins) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  Stats stats;
  stats.conjuncts_split = SplitConjunctiveFilters(plan);
  // Push-downs cascade (a filter dropped below a project may now sit on a
  // join), so iterate to a fixpoint with a small safety bound.
  for (int round = 0; round < 8; ++round) {
    const int project_moves =
        PushFiltersThroughProjects(plan) + PushFiltersThroughMaps(plan);
    const int join_moves = PushFiltersIntoJoins(plan);
    const int union_moves = PushFiltersThroughUnions(plan);
    stats.filters_pushed_project += project_moves;
    stats.filters_pushed_join += join_moves;
    stats.filters_pushed += union_moves;
    if (project_moves + join_moves + union_moves == 0) break;
  }
  stats.projects_pushed = PushProjectsThroughUnions(plan);
  stats.filters_reordered = ReorderFilterChains(plan);

  RHEEM_ASSIGN_OR_RETURN(auto remap, plan->PruneToSink());
  if (pins != nullptr) {
    std::map<int, std::string> updated;
    for (const auto& [old_id, platform] : *pins) {
      auto it = remap.find(old_id);
      if (it != remap.end()) updated[it->second] = platform;
    }
    *pins = std::move(updated);
  }
  return stats;
}

}  // namespace rheem

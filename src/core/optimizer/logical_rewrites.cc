#include "core/optimizer/logical_rewrites.h"

#include <algorithm>

#include "core/operators/physical_ops.h"

namespace rheem {

namespace {

double FilterRank(const FilterOp& f) {
  const double sel = std::clamp(f.udf().meta.selectivity, 0.0, 0.999);
  return f.udf().meta.cost_factor / (1.0 - sel);
}

/// Repoints every consumer of `from` (and the sink) to `to`.
void ReplaceDownstream(Plan* plan, Operator* from, Operator* to) {
  for (Operator* consumer : plan->ConsumersOf(from)) {
    if (consumer == to) continue;
    for (std::size_t i = 0; i < consumer->inputs().size(); ++i) {
      if (consumer->inputs()[i] == from) consumer->SetInput(i, to);
    }
  }
  if (plan->sink() == from) plan->SetSink(to);
}

int ReorderFilterChains(Plan* plan) {
  int swaps = 0;
  // Bubble-style passes over Filter->Filter edges until stable; chains are
  // short, so this converges immediately in practice.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < plan->size(); ++i) {
      auto* lower = dynamic_cast<FilterOp*>(plan->op(i));
      if (lower == nullptr) continue;
      auto* upper = dynamic_cast<FilterOp*>(lower->inputs()[0]);
      if (upper == nullptr) continue;
      // Only safe when the chain is linear: `upper` feeds `lower` alone.
      if (plan->ConsumersOf(upper).size() != 1) continue;
      if (FilterRank(*lower) < FilterRank(*upper)) {
        PredicateUdf tmp = lower->udf();
        lower->set_udf(upper->udf());
        upper->set_udf(std::move(tmp));
        ++swaps;
        changed = true;
      }
    }
  }
  return swaps;
}

int PushFiltersThroughUnions(Plan* plan) {
  int pushed = 0;
  // Collect candidates first; Add() invalidates nothing but keeps the loop
  // bounds honest.
  std::vector<FilterOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* f = dynamic_cast<FilterOp*>(plan->op(i));
    if (f == nullptr) continue;
    auto* u = dynamic_cast<UnionOp*>(f->inputs()[0]);
    if (u == nullptr) continue;
    // The union must feed only this filter, or we would duplicate work for
    // its other consumers.
    if (plan->ConsumersOf(u).size() != 1) continue;
    candidates.push_back(f);
  }
  for (FilterOp* f : candidates) {
    auto* u = static_cast<UnionOp*>(f->inputs()[0]);
    Operator* left = u->inputs()[0];
    Operator* right = u->inputs()[1];
    auto* fl = plan->Add<FilterOp>({left}, f->udf());
    auto* fr = plan->Add<FilterOp>({right}, f->udf());
    auto* u2 = plan->Add<UnionOp>({fl, fr});
    ReplaceDownstream(plan, f, u2);
    ++pushed;
  }
  return pushed;
}

int PushProjectsThroughUnions(Plan* plan) {
  int pushed = 0;
  std::vector<ProjectOp*> candidates;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    auto* p = dynamic_cast<ProjectOp*>(plan->op(i));
    if (p == nullptr) continue;
    auto* u = dynamic_cast<UnionOp*>(p->inputs()[0]);
    if (u == nullptr) continue;
    if (plan->ConsumersOf(u).size() != 1) continue;
    candidates.push_back(p);
  }
  for (ProjectOp* p : candidates) {
    auto* u = static_cast<UnionOp*>(p->inputs()[0]);
    Operator* left = u->inputs()[0];
    Operator* right = u->inputs()[1];
    auto* pl = plan->Add<ProjectOp>({left}, p->columns());
    auto* pr = plan->Add<ProjectOp>({right}, p->columns());
    auto* u2 = plan->Add<UnionOp>({pl, pr});
    ReplaceDownstream(plan, p, u2);
    ++pushed;
  }
  return pushed;
}

}  // namespace

Result<ApplicationRewrites::Stats> ApplicationRewrites::Apply(
    Plan* plan, std::map<int, std::string>* pins) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  Stats stats;
  stats.filters_pushed = PushFiltersThroughUnions(plan);
  stats.projects_pushed = PushProjectsThroughUnions(plan);
  stats.filters_reordered = ReorderFilterChains(plan);

  RHEEM_ASSIGN_OR_RETURN(auto remap, plan->PruneToSink());
  if (pins != nullptr) {
    std::map<int, std::string> updated;
    for (const auto& [old_id, platform] : *pins) {
      auto it = remap.find(old_id);
      if (it != remap.end()) updated[it->second] = platform;
    }
    *pins = std::move(updated);
  }
  return stats;
}

}  // namespace rheem

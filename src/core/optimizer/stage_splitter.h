#ifndef RHEEM_CORE_OPTIMIZER_STAGE_SPLITTER_H_
#define RHEEM_CORE_OPTIMIZER_STAGE_SPLITTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping/platform.h"
#include "core/optimizer/cardinality.h"
#include "core/optimizer/enumerator.h"
#include "core/plan/plan.h"

namespace rheem {

/// \brief A task atom (paper §4.2): a maximal connected subplan whose
/// operators all execute on the same platform, scheduled as one unit.
class Stage {
 public:
  Stage(int id, Platform* platform) : id_(id), platform_(platform) {}

  int id() const { return id_; }
  Platform* platform() const { return platform_; }

  /// Operators of this stage in topological order.
  const std::vector<Operator*>& ops() const { return ops_; }

  /// Operators whose outputs leave the stage (consumed by downstream stages
  /// and/or constituting the plan result), in deterministic order.
  const std::vector<Operator*>& outputs() const { return outputs_; }

  /// Upstream operators (living in other stages) whose outputs this stage
  /// consumes.
  const std::vector<Operator*>& boundary_inputs() const {
    return boundary_inputs_;
  }

  /// Stage ids this stage depends on.
  const std::vector<int>& upstream_stages() const { return upstream_stages_; }

  bool Contains(const Operator* op) const;

 private:
  friend class StageSplitter;
  int id_;
  Platform* platform_;
  std::vector<Operator*> ops_;
  std::vector<Operator*> outputs_;
  std::vector<Operator*> boundary_inputs_;
  std::vector<int> upstream_stages_;
};

/// \brief Physical plan + platform assignment compiled to scheduled stages:
/// RHEEM's execution plan (paper §3.1: "execution plans that can run on
/// multiple platforms").
struct ExecutionPlan {
  const Plan* plan = nullptr;
  PlatformAssignment assignment;
  std::vector<Stage> stages;  // topologically ordered
  int final_stage = -1;       // stage containing the plan sink

  /// Compile-time cardinality estimates the assignment was costed with.
  /// When populated (RheemContext::Compile does), the executor compares
  /// them against observed stage outputs to drive progressive
  /// re-optimization; empty means "no estimates" and disables it.
  EstimateMap estimates;

  /// Enumerator options the plan was produced with, so a mid-job re-plan
  /// (failover or re-optimization) honors the same constraints (forced
  /// platform, movement awareness, pinned operators).
  EnumeratorOptions enum_options;

  /// Multi-line explanation: stages, platforms, operators, estimates.
  std::string Explain(const EstimateMap& estimates = {}) const;
};

/// \brief Splits an assigned physical plan into task atoms (paper §4.2,
/// requirement 4: divide the plan into atoms executed by single platforms).
class StageSplitter {
 public:
  static Result<ExecutionPlan> Split(const Plan& plan,
                                     PlatformAssignment assignment);
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_STAGE_SPLITTER_H_

#ifndef RHEEM_CORE_OPTIMIZER_COST_LEARNER_H_
#define RHEEM_CORE_OPTIMIZER_COST_LEARNER_H_

#include <map>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "core/optimizer/cardinality.h"
#include "core/optimizer/stage_splitter.h"

namespace rheem {

/// \brief Feedback-driven cost-model calibration (paper §4.2: cost models
/// are optimizer *plugins*, and the Executor "monitors the progress of plan
/// execution" — this closes the loop between the two).
///
/// After every stage execution the caller feeds (estimated cost, observed
/// time); the calibrator maintains a per-platform correction factor as the
/// running geometric mean of observed/estimated ratios. SuggestConfig()
/// turns the factors into updated `<platform>.per_quantum_us` config values,
/// so the next RheemContext built from that config predicts closer to this
/// machine's reality — the profile-learning direction the paper sketches
/// ("data processing profiles", §8 challenge 2).
class CostCalibrator {
 public:
  CostCalibrator() = default;

  /// Records one observation. Non-positive inputs are ignored (a stage of
  /// pure plumbing can estimate to ~0).
  void Observe(const std::string& platform, double estimated_micros,
               double actual_micros);

  /// Multiplicative correction for the platform's cost model
  /// (1.0 = perfectly calibrated, >1 = model underestimates).
  double FactorFor(const std::string& platform) const;

  int64_t observations(const std::string& platform) const;

  /// Scales the given base per-quantum values by the learned factors.
  /// `base` maps platform name -> current per_quantum_us; platforms without
  /// observations keep their base value.
  Config SuggestConfig(const std::map<std::string, double>& base) const;

  /// Convenience: estimated execution cost of one stage under its
  /// platform's cost model and the given cardinalities (sums the operator
  /// costs plus the platform's fixed stage overhead).
  static Result<double> EstimateStageCost(const Stage& stage,
                                          const EstimateMap& estimates);

  std::string Report() const;

 private:
  struct PlatformStats {
    double log_ratio_sum = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, PlatformStats> stats_;
};

class ExecutionMonitor;  // monitor.h
struct CompiledJob;      // context.h

/// Feeds every *successful* stage attempt recorded by `monitor` into the
/// calibrator, pricing each stage with the compiled job's estimates — the
/// one-line wiring between the Executor's monitoring duty and the pluggable
/// cost models. Records whose stage id is not part of `job` are skipped.
Status ObserveJob(const CompiledJob& job, const ExecutionMonitor& monitor,
                  CostCalibrator* calibrator);

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_COST_LEARNER_H_

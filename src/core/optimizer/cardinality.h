#ifndef RHEEM_CORE_OPTIMIZER_CARDINALITY_H_
#define RHEEM_CORE_OPTIMIZER_CARDINALITY_H_

#include <map>

#include "common/result.h"
#include "core/plan/plan.h"

namespace rheem {

/// \brief Per-operator size estimates flowing through the optimizer.
struct Estimate {
  double cardinality = 0.0;  // records produced by the operator
  double avg_bytes = 32.0;   // mean serialized record size
};

/// Operator id -> estimate.
using EstimateMap = std::map<int, Estimate>;

/// \brief Source-driven cardinality/width estimator (paper §4.2: the
/// optimizer reasons about UDFs through their first-class annotations).
///
/// Walks the plan topologically. Sources report their true sizes; UDF
/// operators scale by their annotated selectivity; key-based operators use
/// the key UDF's selectivity as a distinct-key ratio; joins use standard
/// textbook formulas. Loop operators report their state input's estimate
/// (states keep their shape across iterations in all our workloads).
class CardinalityEstimator {
 public:
  /// `external` supplies estimates for operators whose inputs come from
  /// outside the plan (loop-body markers, stage inputs), keyed by op id.
  static Result<EstimateMap> Estimate(const Plan& plan,
                                      const EstimateMap& external = {});
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_CARDINALITY_H_

#include "core/optimizer/channel.h"

namespace rheem {

const char* ChannelKindToString(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::kInMemory: return "in-memory";
    case ChannelKind::kSerializedStream: return "serialized-stream";
  }
  return "?";
}

ChannelKind MovementCostModel::ChannelFor(const Platform& from,
                                          const Platform& to) const {
  return &from == &to ? ChannelKind::kInMemory : ChannelKind::kSerializedStream;
}

double MovementCostModel::MoveCostMicros(const Platform& from,
                                         const Platform& to, double cards,
                                         double avg_bytes) const {
  if (&from == &to) return 0.0;
  const auto& f = from.cost_model();
  const auto& t = to.cost_model();
  const double bytes = cards * avg_bytes;
  return f.BoundaryFixedMicros() + t.BoundaryFixedMicros() +
         bytes * (f.BoundaryCostMicrosPerByte() + t.BoundaryCostMicrosPerByte());
}

}  // namespace rheem

#ifndef RHEEM_CORE_OPTIMIZER_CHANNEL_H_
#define RHEEM_CORE_OPTIMIZER_CHANNEL_H_

#include <string>

#include "core/mapping/platform.h"

namespace rheem {

/// Kinds of channels that can bridge two task atoms (paper §4.2: the
/// inter-platform cost model must account for transferring *and transforming*
/// data between processing platforms).
enum class ChannelKind {
  /// Same platform: results handed over by reference, zero cost.
  kInMemory,
  /// Cross platform: records are serialized on egress and deserialized on
  /// ingress — the executor really performs this work.
  kSerializedStream,
};

const char* ChannelKindToString(ChannelKind kind);

/// \brief Inter-platform data-movement cost model.
///
/// This is the piece the paper calls out as missing from Musketeer (§7): the
/// enumerator adds MoveCostMicros to every plan edge whose endpoints land on
/// different platforms, which is what makes "stay on one platform" beat
/// "use the locally fastest platform for every operator" when datasets are
/// large relative to the compute (ablation A2).
class MovementCostModel {
 public:
  virtual ~MovementCostModel() = default;

  /// Channel required between platforms `from` and `to`.
  virtual ChannelKind ChannelFor(const Platform& from,
                                 const Platform& to) const;

  /// Cost of moving `cards` records of `avg_bytes` each from `from` to `to`.
  virtual double MoveCostMicros(const Platform& from, const Platform& to,
                                double cards, double avg_bytes) const;
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_CHANNEL_H_

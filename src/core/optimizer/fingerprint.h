#ifndef RHEEM_CORE_OPTIMIZER_FINGERPRINT_H_
#define RHEEM_CORE_OPTIMIZER_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/plan/plan.h"
#include "data/dataset.h"

namespace rheem {

/// \brief Canonical 64-bit fingerprints of plans, used by the service
/// layer's plan cache to recognize repeat queries and skip the optimizer
/// (RHEEMix-style amortization of cross-platform optimization cost).
///
/// The fingerprint folds, over the plan's deterministic topological order:
/// each operator's FingerprintToken() (kind + parameters + UDF metadata —
/// see Operator::FingerprintToken for the equal-token contract), its name,
/// its dataflow wiring (input positions in topological order), and the sink
/// position. Equal fingerprints are treated as "same job"; anything the
/// token does not encode (UDF closure bodies in particular) is assumed
/// identical between plans with equal structure.
class PlanFingerprint {
 public:
  /// FNV-1a offset basis; starting hash for incremental mixing.
  static constexpr uint64_t kSeed = 1469598103934665603ull;

  static uint64_t Mix(uint64_t h, const void* bytes, std::size_t len);
  static uint64_t Mix(uint64_t h, const std::string& s);
  static uint64_t Mix(uint64_t h, uint64_t v);

  /// Fingerprint of a plan at any abstraction level. Errors when the plan
  /// is not a valid DAG (TopologicalOrder fails) or has no sink.
  static Result<uint64_t> Compute(const Plan& plan);

  /// Content hash of an in-memory dataset (every record). Source operators
  /// fold this into their token so that two structurally identical plans
  /// reading different collections never share a fingerprint.
  static uint64_t OfDataset(const Dataset& data);
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_FINGERPRINT_H_

#ifndef RHEEM_CORE_OPTIMIZER_COST_MODEL_H_
#define RHEEM_CORE_OPTIMIZER_COST_MODEL_H_

#include <string>
#include <vector>

#include "core/operators/physical_ops.h"

namespace rheem {

/// \brief Pluggable per-platform cost model (paper §4.2, requirement 2: cost
/// models are plugins registered with the optimizer, never hard-coded).
///
/// All costs are *virtual microseconds*: an abstract currency the enumerator
/// compares across platforms. Platforms with real distributed analogues remap
/// their simulated overhead constants into the same currency so estimated and
/// measured behaviour stay aligned.
class PlatformCostModel {
 public:
  virtual ~PlatformCostModel() = default;

  /// Charged once per task atom (stage) scheduled on this platform.
  virtual double StageOverheadMicros() const = 0;

  /// Charged once per job submission. Loop bodies re-submit per iteration,
  /// which is precisely what makes iterative ML expensive on a
  /// cluster-style platform for small data (paper Figure 2).
  virtual double JobOverheadMicros() const = 0;

  /// Cost of executing `op` given its input cardinalities and its estimated
  /// output cardinality.
  virtual double OperatorCostMicros(const PhysicalOperator& op,
                                    const std::vector<double>& in_cards,
                                    double out_card) const = 0;

  /// Per-byte cost of crossing this platform's boundary (serialization on
  /// egress / deserialization on ingress). Consumed by the movement model.
  virtual double BoundaryCostMicrosPerByte() const = 0;

  /// Fixed cost of setting up one boundary crossing into/out of here.
  virtual double BoundaryFixedMicros() const = 0;
};

/// \brief Reusable cost skeleton: per-quantum base cost scaled by the
/// operator's UDF cost hints and mapping weights, with a parallelism divisor.
///
/// Concrete platforms instantiate this with their constants:
///   javasim:  base ~ 0.03us/quantum, parallelism 1, zero overheads
///   sparksim: base ~ 0.03us/quantum, parallelism = slots, heavy overheads
///   relsim:   cheap scans/aggregations, no UDF loops beyond relational ops
class BasicCostModel : public PlatformCostModel {
 public:
  struct Params {
    double per_quantum_micros = 0.03;
    double parallelism = 1.0;
    double stage_overhead_micros = 0.0;
    double job_overhead_micros = 0.0;
    double boundary_micros_per_byte = 0.0005;
    double boundary_fixed_micros = 50.0;
    /// Extra per-quantum cost at shuffle boundaries (key-based operators).
    double shuffle_micros_per_quantum = 0.0;
    /// Multiplier (<= 1.0) on the per-tuple cost of pipeline-fusable
    /// operators (Map/FlatMap/Filter/Project): platforms that fuse such
    /// chains into one pass skip the per-operator materialization, so their
    /// tuples are cheaper. 1.0 = fusion off / not modeled.
    double fusion_discount = 1.0;
  };

  explicit BasicCostModel(Params params) : params_(params) {}

  double StageOverheadMicros() const override {
    return params_.stage_overhead_micros;
  }
  double JobOverheadMicros() const override {
    return params_.job_overhead_micros;
  }
  double OperatorCostMicros(const PhysicalOperator& op,
                            const std::vector<double>& in_cards,
                            double out_card) const override;
  double BoundaryCostMicrosPerByte() const override {
    return params_.boundary_micros_per_byte;
  }
  double BoundaryFixedMicros() const override {
    return params_.boundary_fixed_micros;
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Returns the UDF cost/selectivity hints attached to `op`, if any.
/// Exposed for the cardinality estimator, which shares this logic.
struct UdfHints {
  double selectivity = 1.0;
  double cost_factor = 1.0;
};
UdfHints HintsOf(const PhysicalOperator& op);

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_COST_MODEL_H_

#include "core/optimizer/fingerprint.h"

#include <map>

#include "data/record.h"

namespace rheem {

uint64_t PlanFingerprint::Mix(uint64_t h, const void* bytes, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

uint64_t PlanFingerprint::Mix(uint64_t h, const std::string& s) {
  h = Mix(h, static_cast<uint64_t>(s.size()));
  return Mix(h, s.data(), s.size());
}

uint64_t PlanFingerprint::Mix(uint64_t h, uint64_t v) {
  return Mix(h, &v, sizeof(v));
}

Result<uint64_t> PlanFingerprint::Compute(const Plan& plan) {
  if (plan.sink() == nullptr) {
    return Status::InvalidPlan("cannot fingerprint a plan without a sink");
  }
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> topo, plan.TopologicalOrder());
  std::map<int, uint64_t> position;  // op id -> dense topological position
  for (std::size_t i = 0; i < topo.size(); ++i) {
    position[topo[i]->id()] = static_cast<uint64_t>(i);
  }
  uint64_t h = kSeed;
  h = Mix(h, static_cast<uint64_t>(topo.size()));
  for (const Operator* op : topo) {
    h = Mix(h, op->FingerprintToken());
    h = Mix(h, op->name());
    h = Mix(h, static_cast<uint64_t>(op->inputs().size()));
    for (const Operator* in : op->inputs()) {
      h = Mix(h, position.at(in->id()));
    }
  }
  h = Mix(h, position.at(plan.sink()->id()));
  return h;
}

uint64_t PlanFingerprint::OfDataset(const Dataset& data) {
  uint64_t h = kSeed;
  h = Mix(h, static_cast<uint64_t>(data.size()));
  // Record::Hash is allocation-free; rendering each record through
  // ToString() made fingerprinting wide datasets cost more than moving them.
  for (const Record& r : data.records()) {
    h = Mix(h, static_cast<uint64_t>(r.Hash()));
  }
  return h;
}

}  // namespace rheem

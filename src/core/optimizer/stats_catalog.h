#ifndef RHEEM_CORE_OPTIMIZER_STATS_CATALOG_H_
#define RHEEM_CORE_OPTIMIZER_STATS_CATALOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/result.h"
#include "core/optimizer/cardinality.h"
#include "core/plan/plan.h"

namespace rheem {

/// \brief Learned statistics that outlive a single job: observed output
/// cardinalities keyed by sub-plan fingerprint, and calibrated cost
/// constants per (operator kind, platform).
///
/// This closes the paper's §4.2 feedback edge for the whole fleet: the
/// executor records what each sub-plan actually produced and how far each
/// platform's cost model was off, `RheemContext::Compile` seeds the
/// CardinalityEstimator with recorded cardinalities on fingerprint hits,
/// and the Enumerator multiplies operator costs by the calibrated factor —
/// so repeat traffic is planned with measured numbers instead of static
/// selectivity guesses (RHEEMix-style learning under sustained traffic).
///
/// Cardinalities are keyed by *platform-free* sub-plan fingerprints
/// (ComputeCardinalityFingerprints): how many records a sub-plan yields does
/// not depend on which platform ran it, so an observation made on one
/// platform assignment transfers to every enumeration alternative.
///
/// Cost factors are geometric means of observed/estimated cost ratios per
/// (operator kind, platform) — the same discipline as CostCalibrator, but
/// persistent and at operator granularity.
///
/// Persistence uses the checkpoint framing discipline (RCKP1-style): a
/// magic ("RSTC1") plus 16 lowercase-hex FNV-1a digits over the payload.
/// Truncated, bit-flipped or garbage files are rejected with IoError and
/// counted in `stats_catalog.corrupt_total`; a failed load never leaves the
/// catalog partially populated. Counters `stats_catalog.hits` /
/// `stats_catalog.misses` / `stats_catalog.updates_total` report how often
/// compile-time lookups are served from learned statistics.
///
/// Thread-safe: one catalog is shared by concurrent jobs of a JobServer.
class StatisticsCatalog {
 public:
  StatisticsCatalog() = default;
  StatisticsCatalog(const StatisticsCatalog&) = delete;
  StatisticsCatalog& operator=(const StatisticsCatalog&) = delete;

  /// Records the observed output cardinality of the sub-plan identified by
  /// `fingerprint`. Last write wins: fresh observations replace stale ones.
  void RecordCardinality(uint64_t fingerprint, double cardinality,
                         double avg_bytes);

  /// Looks up a recorded cardinality. Counts `stats_catalog.hits` /
  /// `stats_catalog.misses`.
  bool LookupCardinality(uint64_t fingerprint, Estimate* out) const;

  /// Folds one observed/estimated cost ratio for (op kind, platform) into
  /// the running geometric mean. Non-finite or non-positive ratios are
  /// ignored.
  void RecordCostRatio(const std::string& op_kind, const std::string& platform,
                       double ratio);

  /// Geometric-mean correction factor for (op kind, platform); 1.0 when
  /// nothing was recorded. Clamped to [0.05, 20] so one wild observation
  /// cannot blind the enumerator.
  double CostFactor(const std::string& op_kind,
                    const std::string& platform) const;

  /// Monotonic mutation counter (bumped by every Record* and successful
  /// DecodeFrom/LoadFromFile). Lets callers detect "learned something new".
  int64_t version() const;

  std::size_t cardinality_entries() const;
  std::size_t cost_entries() const;
  void Clear();

  /// Serializes the catalog with checksummed framing.
  std::string Encode() const;

  /// Replaces the catalog contents from `framed`. On any framing, checksum
  /// or payload error: returns IoError, counts `stats_catalog.corrupt_total`
  /// and leaves the catalog unchanged.
  Status DecodeFrom(const std::string& framed);

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  struct CostStats {
    double log_ratio_sum = 0.0;
    int64_t count = 0;
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Estimate> cardinalities_;
  std::map<std::pair<std::string, std::string>, CostStats> costs_;
  int64_t version_ = 0;
};

/// Computes, for every operator of `plan`, the *platform-free* fingerprint
/// of the sub-plan producing its output: a fold over FingerprintToken, name,
/// input arity and input fingerprints — deliberately excluding the platform
/// assignment (unlike ComputeSubPlanFingerprints), because cardinality is a
/// property of the dataflow, not of where it ran.
Result<std::map<int, uint64_t>> ComputeCardinalityFingerprints(
    const Plan& plan);

}  // namespace rheem

#endif  // RHEEM_CORE_OPTIMIZER_STATS_CATALOG_H_

#include "core/optimizer/stage_splitter.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "core/operators/physical_ops.h"

namespace rheem {

bool Stage::Contains(const Operator* op) const {
  return std::find(ops_.begin(), ops_.end(), op) != ops_.end();
}

Result<ExecutionPlan> StageSplitter::Split(const Plan& plan,
                                           PlatformAssignment assignment) {
  RHEEM_RETURN_IF_ERROR(plan.Validate());
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> topo, plan.TopologicalOrder());

  for (Operator* op : topo) {
    if (assignment.by_op.count(op->id()) == 0 ||
        assignment.by_op.at(op->id()) == nullptr) {
      return Status::InvalidPlan("operator " + op->name() +
                                 " has no platform assignment");
    }
  }

  // 1. Group operators greedily in topological order: an operator joins the
  // group (task atom) of a same-platform input when that does not create a
  // cycle in the stage-dependency graph; otherwise it opens a new group.
  // A cycle would arise exactly when some *other* input group of the
  // operator transitively depends on the candidate group (e.g. platform A ->
  // B -> A diamonds), so we check reachability on demand — stage graphs are
  // tiny, a BFS per candidate is cheap.
  std::map<int, int> group_of;            // op id -> stage index
  std::vector<Platform*> group_platform;
  std::vector<std::set<int>> group_deps;  // stage -> upstream stages

  auto depends_on = [&group_deps](int from, int target) {
    // True if `target` is reachable from `from` via upstream edges.
    std::vector<int> work{from};
    std::set<int> visited;
    while (!work.empty()) {
      const int g = work.back();
      work.pop_back();
      if (g == target) return true;
      if (!visited.insert(g).second) continue;
      for (int dep : group_deps[static_cast<std::size_t>(g)]) {
        work.push_back(dep);
      }
    }
    return false;
  };

  // Folds group `victim` into group `target`: relabels members, unions the
  // dependency sets, and re-points every reference to the victim.
  auto merge_groups = [&](int victim, int target) {
    for (auto& [op_id, g] : group_of) {
      if (g == victim) g = target;
    }
    auto& tdeps = group_deps[static_cast<std::size_t>(target)];
    for (int dep : group_deps[static_cast<std::size_t>(victim)]) {
      if (dep != target) tdeps.insert(dep);
    }
    group_deps[static_cast<std::size_t>(victim)].clear();
    tdeps.erase(victim);
    for (auto& deps : group_deps) {
      if (deps.count(victim) > 0) {
        deps.erase(victim);
        deps.insert(target);
      }
    }
    // Self-dependency may appear when target already depended on victim.
    group_deps[static_cast<std::size_t>(target)].erase(target);
  };

  for (Operator* op : topo) {
    Platform* p = assignment.by_op.at(op->id());
    int target = -1;
    for (Operator* in : op->inputs()) {
      if (assignment.by_op.at(in->id()) != p) continue;
      const int candidate = group_of.at(in->id());
      bool safe = true;
      for (Operator* other : op->inputs()) {
        const int og = group_of.at(other->id());
        if (og == candidate) continue;
        if (depends_on(og, candidate)) {
          safe = false;
          break;
        }
      }
      if (safe) {
        target = candidate;
        break;
      }
    }
    if (target == -1) {
      target = static_cast<int>(group_platform.size());
      group_platform.push_back(p);
      group_deps.emplace_back();
    }
    group_of[op->id()] = target;
    for (Operator* in : op->inputs()) {
      const int g = group_of.at(in->id());
      if (g != target) group_deps[static_cast<std::size_t>(target)].insert(g);
    }
    // Absorb the remaining same-platform input groups where that cannot
    // close a cycle: merging `og` into `target` is unsafe exactly when some
    // *other* group on a path og -> ... -> target would end up both up- and
    // downstream of the merged group.
    for (Operator* in : op->inputs()) {
      const int og = group_of.at(in->id());
      if (og == target || assignment.by_op.at(in->id()) != p) continue;
      bool safe = true;
      for (int dep : group_deps[static_cast<std::size_t>(target)]) {
        if (dep != og && depends_on(dep, og)) {
          safe = false;
          break;
        }
      }
      if (safe) merge_groups(og, target);
    }
  }

  // 2. Order groups topologically (joining an early group can add a
  // dependency on a later-created group, so creation order alone is not a
  // valid schedule) and renumber them in schedule order.
  const std::size_t ngroups = group_platform.size();
  // Groups emptied by merging are dead; they carry no deps and no members.
  std::vector<bool> live(ngroups, false);
  for (const auto& [op_id, g] : group_of) live[static_cast<std::size_t>(g)] = true;
  std::vector<int> indegree(ngroups, 0);
  std::vector<std::vector<int>> downstream(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (!live[g]) continue;
    for (int dep : group_deps[g]) {
      ++indegree[g];
      downstream[static_cast<std::size_t>(dep)].push_back(static_cast<int>(g));
    }
  }
  std::vector<int> schedule;  // old group ids in schedule order
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (live[g] && indegree[g] == 0) schedule.push_back(static_cast<int>(g));
  }
  for (std::size_t cursor = 0; cursor < schedule.size(); ++cursor) {
    for (int next : downstream[static_cast<std::size_t>(schedule[cursor])]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        schedule.push_back(next);
      }
    }
  }
  const std::size_t nlive = static_cast<std::size_t>(
      std::count(live.begin(), live.end(), true));
  if (schedule.size() != nlive) {
    return Status::Internal("stage graph has a cycle despite grouping checks");
  }
  std::vector<int> new_id(ngroups, -1);
  for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
    new_id[static_cast<std::size_t>(schedule[pos])] = static_cast<int>(pos);
  }
  for (auto& [op_id, g] : group_of) g = new_id[static_cast<std::size_t>(g)];
  {
    std::vector<Platform*> platforms_sorted(nlive);
    std::vector<std::set<int>> deps_sorted(nlive);
    for (std::size_t g = 0; g < ngroups; ++g) {
      if (new_id[g] < 0) continue;  // dead group
      const auto ng = static_cast<std::size_t>(new_id[g]);
      platforms_sorted[ng] = group_platform[g];
      for (int dep : group_deps[g]) {
        deps_sorted[ng].insert(new_id[static_cast<std::size_t>(dep)]);
      }
    }
    group_platform = std::move(platforms_sorted);
    group_deps = std::move(deps_sorted);
  }

  // 3. Build Stage objects in schedule order.
  ExecutionPlan eplan;
  eplan.plan = &plan;
  eplan.assignment = std::move(assignment);
  for (std::size_t g = 0; g < group_platform.size(); ++g) {
    eplan.stages.emplace_back(static_cast<int>(g), group_platform[g]);
  }
  for (Operator* op : topo) {
    Stage& stage = eplan.stages[static_cast<std::size_t>(group_of.at(op->id()))];
    stage.ops_.push_back(op);
  }
  for (std::size_t g = 0; g < group_platform.size(); ++g) {
    Stage& stage = eplan.stages[g];
    for (int dep : group_deps[g]) stage.upstream_stages_.push_back(dep);
    std::sort(stage.upstream_stages_.begin(), stage.upstream_stages_.end());
    // Boundary inputs: producers in other stages.
    std::set<int> seen;
    for (Operator* op : stage.ops_) {
      for (Operator* in : op->inputs()) {
        if (group_of.at(in->id()) != static_cast<int>(g) &&
            seen.insert(in->id()).second) {
          stage.boundary_inputs_.push_back(in);
        }
      }
    }
    // Outputs: ops consumed outside the stage, plus the plan sink.
    std::set<int> outs;
    for (Operator* op : stage.ops_) {
      bool leaves = (op == plan.sink());
      for (Operator* consumer : plan.ConsumersOf(op)) {
        if (group_of.at(consumer->id()) != static_cast<int>(g)) leaves = true;
      }
      if (leaves && outs.insert(op->id()).second) {
        stage.outputs_.push_back(op);
      }
    }
  }
  eplan.final_stage = group_of.at(plan.sink()->id());
  return eplan;
}

std::string ExecutionPlan::Explain(const EstimateMap& estimates) const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "execution plan: %zu stage(s), est. cost %.1f us\n",
                stages.size(), assignment.estimated_cost_micros);
  out += buf;
  for (const Stage& s : stages) {
    std::snprintf(buf, sizeof(buf), "stage %d on %s", s.id(),
                  s.platform()->name().c_str());
    out += buf;
    if (!s.upstream_stages().empty()) {
      out += " (after";
      for (int d : s.upstream_stages()) out += " " + std::to_string(d);
      out += ")";
    }
    out += s.id() == final_stage ? "  [final]\n" : "\n";
    for (Operator* op : s.ops()) {
      out += "  #" + std::to_string(op->id()) + " " + op->kind_name();
      auto it = estimates.find(op->id());
      if (it != estimates.end()) {
        std::snprintf(buf, sizeof(buf), "  ~%.0f rec", it->second.cardinality);
        out += buf;
      }
      // Declarative operators print their predicate/projection; operators
      // whose behavior hides in a closure are marked [udf].
      if (auto* phys = dynamic_cast<const PhysicalOperator*>(op)) {
        const std::string detail = DeclarativeDetail(*phys);
        if (!detail.empty()) {
          out += "  [" + detail + "]";
        } else if (HasOpaqueUdf(*phys)) {
          out += "  [udf]";
        }
      }
      bool is_output = std::find(s.outputs().begin(), s.outputs().end(), op) !=
                       s.outputs().end();
      if (is_output) out += "  -> boundary";
      out += "\n";
    }
  }
  return out;
}

}  // namespace rheem

#include "core/optimizer/stats_catalog.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/metrics.h"
#include "core/optimizer/fingerprint.h"

namespace rheem {
namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Same framing discipline as the executor's RCKP1 checkpoints: magic + 16
// lowercase-hex FNV-1a digits over the payload, so torn or bit-rotted stats
// files are detected instead of silently steering the optimizer.
constexpr char kStatsMagic[] = "RSTC1";
constexpr std::size_t kStatsMagicLen = 5;
constexpr std::size_t kStatsChecksumLen = 16;

// Allocation-bomb guard for untrusted declared entry counts: far above any
// real catalog, far below anything that could exhaust memory while parsing.
constexpr int64_t kMaxEntries = 1 << 20;

Status Corrupt(const std::string& what) {
  CountIfEnabled(MetricsRegistry::Global().counter("stats_catalog.corrupt_total"),
                 1);
  return Status::IoError("stats catalog rejected: " + what);
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseHex64(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  uint64_t v = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

// Splits a payload line into whitespace-free tokens; strict about shape so
// bit flips that merge or split fields are rejected, not misparsed.
std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(std::move(t));
  return tokens;
}

}  // namespace

void StatisticsCatalog::RecordCardinality(uint64_t fingerprint,
                                          double cardinality,
                                          double avg_bytes) {
  if (!std::isfinite(cardinality) || cardinality < 0.0) return;
  if (!std::isfinite(avg_bytes) || avg_bytes <= 0.0) avg_bytes = 32.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Estimate& e = cardinalities_[fingerprint];
    e.cardinality = cardinality;
    e.avg_bytes = avg_bytes;
    ++version_;
  }
  CountIfEnabled(MetricsRegistry::Global().counter("stats_catalog.updates_total"),
                 1);
}

bool StatisticsCatalog::LookupCardinality(uint64_t fingerprint,
                                          Estimate* out) const {
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cardinalities_.find(fingerprint);
    if (it != cardinalities_.end()) {
      if (out != nullptr) *out = it->second;
      hit = true;
    }
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  CountIfEnabled(
      registry.counter(hit ? "stats_catalog.hits" : "stats_catalog.misses"), 1);
  return hit;
}

void StatisticsCatalog::RecordCostRatio(const std::string& op_kind,
                                        const std::string& platform,
                                        double ratio) {
  if (!std::isfinite(ratio) || ratio <= 0.0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CostStats& s = costs_[{op_kind, platform}];
    s.log_ratio_sum += std::log(ratio);
    s.count += 1;
    ++version_;
  }
  CountIfEnabled(MetricsRegistry::Global().counter("stats_catalog.updates_total"),
                 1);
}

double StatisticsCatalog::CostFactor(const std::string& op_kind,
                                     const std::string& platform) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = costs_.find({op_kind, platform});
  if (it == costs_.end() || it->second.count == 0) return 1.0;
  const double factor =
      std::exp(it->second.log_ratio_sum / static_cast<double>(it->second.count));
  return std::min(20.0, std::max(0.05, factor));
}

int64_t StatisticsCatalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::size_t StatisticsCatalog::cardinality_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cardinalities_.size();
}

std::size_t StatisticsCatalog::cost_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return costs_.size();
}

void StatisticsCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cardinalities_.clear();
  costs_.clear();
  ++version_;
}

std::string StatisticsCatalog::Encode() const {
  std::ostringstream payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    payload << "cards " << cardinalities_.size() << "\n";
    char buf[128];
    for (const auto& [fp, est] : cardinalities_) {
      std::snprintf(buf, sizeof(buf), "%016llx %.17g %.17g\n",
                    static_cast<unsigned long long>(fp), est.cardinality,
                    est.avg_bytes);
      payload << buf;
    }
    payload << "costs " << costs_.size() << "\n";
    for (const auto& [key, stats] : costs_) {
      std::snprintf(buf, sizeof(buf), " %.17g %lld\n", stats.log_ratio_sum,
                    static_cast<long long>(stats.count));
      payload << key.first << " " << key.second << buf;
    }
  }
  const std::string body = payload.str();
  char checksum[kStatsChecksumLen + 1];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(Fnv1a(body)));
  std::string framed;
  framed.reserve(kStatsMagicLen + kStatsChecksumLen + body.size());
  framed.append(kStatsMagic, kStatsMagicLen);
  framed.append(checksum, kStatsChecksumLen);
  framed.append(body);
  return framed;
}

Status StatisticsCatalog::DecodeFrom(const std::string& framed) {
  constexpr std::size_t header = kStatsMagicLen + kStatsChecksumLen;
  if (framed.size() < header ||
      framed.compare(0, kStatsMagicLen, kStatsMagic) != 0) {
    return Corrupt("missing RSTC1 header");
  }
  const std::string payload = framed.substr(header);
  char expect[kStatsChecksumLen + 1];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(Fnv1a(payload)));
  if (framed.compare(kStatsMagicLen, kStatsChecksumLen, expect) != 0) {
    return Corrupt("checksum mismatch (torn write?)");
  }

  // Parse into fresh maps; the catalog is only replaced on full success.
  std::map<uint64_t, Estimate> cards;
  std::map<std::pair<std::string, std::string>, CostStats> costs;
  std::istringstream is(payload);
  std::string line;

  auto read_section_header = [&](const char* keyword,
                                 int64_t* count) -> Status {
    if (!std::getline(is, line)) {
      return Corrupt(std::string("missing '") + keyword + "' section");
    }
    const auto tokens = SplitTokens(line);
    if (tokens.size() != 2 || tokens[0] != keyword ||
        !ParseInt64(tokens[1], count) || *count < 0 || *count > kMaxEntries) {
      return Corrupt(std::string("bad '") + keyword + "' header: " + line);
    }
    return Status::OK();
  };

  int64_t n_cards = 0;
  RHEEM_RETURN_IF_ERROR(read_section_header("cards", &n_cards));
  for (int64_t i = 0; i < n_cards; ++i) {
    if (!std::getline(is, line)) return Corrupt("truncated cards section");
    const auto tokens = SplitTokens(line);
    uint64_t fp = 0;
    Estimate est;
    if (tokens.size() != 3 || tokens[0].size() != 16 ||
        !ParseHex64(tokens[0], &fp) ||
        !ParseDouble(tokens[1], &est.cardinality) ||
        !ParseDouble(tokens[2], &est.avg_bytes) || est.cardinality < 0.0 ||
        est.avg_bytes <= 0.0) {
      return Corrupt("bad cards line: " + line);
    }
    if (!cards.emplace(fp, est).second) {
      return Corrupt("duplicate cards fingerprint: " + tokens[0]);
    }
  }

  int64_t n_costs = 0;
  RHEEM_RETURN_IF_ERROR(read_section_header("costs", &n_costs));
  for (int64_t i = 0; i < n_costs; ++i) {
    if (!std::getline(is, line)) return Corrupt("truncated costs section");
    const auto tokens = SplitTokens(line);
    CostStats stats;
    if (tokens.size() != 4 || tokens[0].empty() || tokens[1].empty() ||
        !ParseDouble(tokens[2], &stats.log_ratio_sum) ||
        !ParseInt64(tokens[3], &stats.count) || stats.count <= 0) {
      return Corrupt("bad costs line: " + line);
    }
    if (!costs.emplace(std::make_pair(tokens[0], tokens[1]), stats).second) {
      return Corrupt("duplicate costs key: " + tokens[0] + "/" + tokens[1]);
    }
  }
  if (std::getline(is, line)) {
    return Corrupt("trailing bytes after declared entries");
  }

  std::lock_guard<std::mutex> lock(mu_);
  cardinalities_ = std::move(cards);
  costs_ = std::move(costs);
  ++version_;
  return Status::OK();
}

Status StatisticsCatalog::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, Encode());
}

Status StatisticsCatalog::LoadFromFile(const std::string& path) {
  RHEEM_ASSIGN_OR_RETURN(std::string framed, ReadFileToString(path));
  return DecodeFrom(framed);
}

Result<std::map<int, uint64_t>> ComputeCardinalityFingerprints(
    const Plan& plan) {
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> order,
                         plan.TopologicalOrder());
  std::map<int, uint64_t> fps;
  for (Operator* op : order) {
    uint64_t h = PlanFingerprint::kSeed;
    h = PlanFingerprint::Mix(h, op->FingerprintToken());
    h = PlanFingerprint::Mix(h, op->name());
    h = PlanFingerprint::Mix(h, static_cast<uint64_t>(op->inputs().size()));
    for (const Operator* in : op->inputs()) {
      auto it = fps.find(in->id());
      if (it == fps.end()) {
        return Status::Internal("input op #" + std::to_string(in->id()) +
                                " missing from topological prefix");
      }
      h = PlanFingerprint::Mix(h, it->second);
    }
    fps[op->id()] = h;
  }
  return fps;
}

}  // namespace rheem

#include "core/expr/expr.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace rheem {
namespace expr {

namespace {

ExprPtr MakeArith(ArithKind k, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kArith;
  e->arith = k;
  e->left = std::move(a);
  e->right = std::move(b);
  return e;
}

ExprPtr MakeCompare(CompareKind k, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCompare;
  e->compare = k;
  e->left = std::move(a);
  e->right = std::move(b);
  return e;
}

ExprPtr MakeLogical(LogicalKind k, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLogical;
  e->logical = k;
  e->left = std::move(a);
  e->right = std::move(b);
  return e;
}

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

const char* ArithSymbol(ArithKind k) {
  switch (k) {
    case ArithKind::kAdd: return "+";
    case ArithKind::kSub: return "-";
    case ArithKind::kMul: return "*";
    case ArithKind::kDiv: return "/";
    case ArithKind::kMod: return "%";
  }
  return "?";
}

const char* CompareSymbol(CompareKind k) {
  switch (k) {
    case CompareKind::kEq: return "==";
    case CompareKind::kNe: return "!=";
    case CompareKind::kLt: return "<";
    case CompareKind::kLe: return "<=";
    case CompareKind::kGt: return ">";
    case CompareKind::kGe: return ">=";
  }
  return "?";
}

const char* TypeCode(ValueType t) {
  switch (t) {
    case ValueType::kBool: return "b";
    case ValueType::kInt64: return "i";
    case ValueType::kDouble: return "d";
    case ValueType::kString: return "s";
    default: return "?";
  }
}

// --- scalar combiners shared by Eval and EvalPredicateBatch ---------------

Value FieldValue(const Expr& e, const Record& r) {
  if (e.field_index < 0 ||
      static_cast<std::size_t>(e.field_index) >= r.size()) {
    return Value::Null();
  }
  const Value& v = r.at(static_cast<std::size_t>(e.field_index));
  switch (e.field_type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      // Numeric declarations accept either numeric runtime type: records
      // are dynamically typed and int-valued doubles are common.
      if (!v.is_numeric()) return Value::Null();
      break;
    case ValueType::kBool:
      if (v.type() != ValueType::kBool) return Value::Null();
      break;
    case ValueType::kString:
      if (v.type() != ValueType::kString) return Value::Null();
      break;
    default:
      return Value::Null();
  }
  return v;
}

Value ArithValue(ArithKind k, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    const int64_t x = a.int64_unchecked();
    const int64_t y = b.int64_unchecked();
    switch (k) {
      case ArithKind::kAdd: return Value(x + y);
      case ArithKind::kSub: return Value(x - y);
      case ArithKind::kMul: return Value(x * y);
      case ArithKind::kDiv: return y == 0 ? Value::Null() : Value(x / y);
      case ArithKind::kMod: return y == 0 ? Value::Null() : Value(x % y);
    }
    return Value::Null();
  }
  const double x = a.ToDoubleOr(0.0);
  const double y = b.ToDoubleOr(0.0);
  switch (k) {
    case ArithKind::kAdd: return Value(x + y);
    case ArithKind::kSub: return Value(x - y);
    case ArithKind::kMul: return Value(x * y);
    case ArithKind::kDiv: return y == 0.0 ? Value::Null() : Value(x / y);
    case ArithKind::kMod: return Value::Null();  // % is integer-only
  }
  return Value::Null();
}

bool SameComparableClass(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) return true;
  return a.type() == b.type();
}

Value CompareValue(CompareKind k, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!SameComparableClass(a, b)) return Value::Null();
  const int c = a.Compare(b);
  switch (k) {
    case CompareKind::kEq: return Value(c == 0);
    case CompareKind::kNe: return Value(c != 0);
    case CompareKind::kLt: return Value(c < 0);
    case CompareKind::kLe: return Value(c <= 0);
    case CompareKind::kGt: return Value(c > 0);
    case CompareKind::kGe: return Value(c >= 0);
  }
  return Value::Null();
}

/// Kleene three-valued AND/OR over {false, true, null}.
Value LogicalValue(LogicalKind k, const Value& a, const Value& b) {
  const bool a_null = a.is_null() || a.type() != ValueType::kBool;
  const bool b_null = b.is_null() || b.type() != ValueType::kBool;
  if (k == LogicalKind::kAnd) {
    if (!a_null && !a.bool_unchecked()) return Value(false);
    if (!b_null && !b.bool_unchecked()) return Value(false);
    if (a_null || b_null) return Value::Null();
    return Value(true);
  }
  if (!a_null && a.bool_unchecked()) return Value(true);
  if (!b_null && b.bool_unchecked()) return Value(true);
  if (a_null || b_null) return Value::Null();
  return Value(false);
}

Value NotValue(const Value& a) {
  if (a.is_null() || a.type() != ValueType::kBool) return Value::Null();
  return Value(!a.bool_unchecked());
}

void AppendCanonical(const Expr& e, std::string* out);

/// Flattens a chain of same-kind logical nodes into its operand list.
void FlattenLogical(const Expr& e, LogicalKind k, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kLogical && e.logical == k) {
    FlattenLogical(*e.left, k, out);
    FlattenLogical(*e.right, k, out);
    return;
  }
  out->push_back(&e);
}

void AppendCanonical(const Expr& e, std::string* out) {
  char buf[40];
  switch (e.kind) {
    case ExprKind::kField:
      *out += "$" + std::to_string(e.field_index) + ":" +
              TypeCode(e.field_type);
      return;
    case ExprKind::kConst:
      switch (e.constant.type()) {
        case ValueType::kNull:
          *out += "null";
          return;
        case ValueType::kBool:
          *out += e.constant.bool_unchecked() ? "true" : "false";
          return;
        case ValueType::kInt64:
          *out += "i:" + std::to_string(e.constant.int64_unchecked());
          return;
        case ValueType::kDouble:
          // %.17g round-trips every double exactly: distinct constants
          // always yield distinct encodings.
          std::snprintf(buf, sizeof(buf), "d:%.17g",
                        e.constant.double_unchecked());
          *out += buf;
          return;
        case ValueType::kString: {
          *out += "s:\"";
          for (char c : e.constant.string_unchecked()) {
            if (c == '"' || c == '\\') *out += '\\';
            *out += c;
          }
          *out += '"';
          return;
        }
        default:
          *out += "const:?";
          return;
      }
    case ExprKind::kArith:
      *out += "(";
      *out += ArithSymbol(e.arith);
      *out += " ";
      AppendCanonical(*e.left, out);
      *out += " ";
      AppendCanonical(*e.right, out);
      *out += ")";
      return;
    case ExprKind::kCompare:
      *out += "(";
      *out += CompareSymbol(e.compare);
      *out += " ";
      AppendCanonical(*e.left, out);
      *out += " ";
      AppendCanonical(*e.right, out);
      *out += ")";
      return;
    case ExprKind::kLogical: {
      // Conjunction (and disjunction) normalization: AND/OR are commutative
      // and associative under Kleene logic, so the operand encodings are
      // sorted — `a AND b` and `b AND a` fingerprint identically.
      std::vector<const Expr*> operands;
      FlattenLogical(e, e.logical, &operands);
      std::vector<std::string> encoded;
      encoded.reserve(operands.size());
      for (const Expr* o : operands) {
        std::string s;
        AppendCanonical(*o, &s);
        encoded.push_back(std::move(s));
      }
      std::sort(encoded.begin(), encoded.end());
      *out += e.logical == LogicalKind::kAnd ? "(and" : "(or";
      for (const std::string& s : encoded) {
        *out += " ";
        *out += s;
      }
      *out += ")";
      return;
    }
    case ExprKind::kNot:
      *out += "(not ";
      AppendCanonical(*e.left, out);
      *out += ")";
      return;
  }
}

/// Precedence levels for the pretty-printer (higher binds tighter).
int Precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLogical:
      return e.logical == LogicalKind::kOr ? 1 : 2;
    case ExprKind::kNot: return 3;
    case ExprKind::kCompare: return 4;
    case ExprKind::kArith:
      return (e.arith == ArithKind::kAdd || e.arith == ArithKind::kSub) ? 5
                                                                        : 6;
    case ExprKind::kField:
    case ExprKind::kConst:
      return 7;
  }
  return 7;
}

/// Shortest %g rendering that strtod's back to the exact same double, with a
/// ".0" suffix on integral values so the text re-parses as a double, not an
/// int64. This is what lets Pretty output round-trip through the SQL
/// expression grammar to a tree with an identical canonical encoding.
void AppendRoundTripDouble(double d, std::string* out) {
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  *out += buf;
  if (std::string_view(buf).find_first_of(".eEnN") == std::string_view::npos) {
    *out += ".0";
  }
}

void AppendPretty(const Expr& e, int parent_prec, std::string* out) {
  const int prec = Precedence(e);
  const bool parens = prec < parent_prec;
  if (parens) *out += "(";
  switch (e.kind) {
    case ExprKind::kField:
      *out += e.field_name.empty() ? "$" + std::to_string(e.field_index)
                                   : e.field_name;
      break;
    case ExprKind::kConst:
      if (e.constant.type() == ValueType::kString) {
        // Same escape style as the canonical encoding: " and \ get a
        // backslash, every other byte passes through (UTF-8 safe).
        *out += '"';
        for (char c : e.constant.string_unchecked()) {
          if (c == '"' || c == '\\') *out += '\\';
          *out += c;
        }
        *out += '"';
      } else if (e.constant.type() == ValueType::kDouble) {
        // Negative constants keep their own parentheses: "a-(-5.0)" would
        // otherwise print as "a--5.0", whose "--" reads as a SQL comment.
        const bool neg = std::signbit(e.constant.double_unchecked());
        if (neg) *out += "(";
        AppendRoundTripDouble(e.constant.double_unchecked(), out);
        if (neg) *out += ")";
      } else if (e.constant.type() == ValueType::kInt64 &&
                 e.constant.int64_unchecked() < 0) {
        *out += "(" + e.constant.ToString() + ")";
      } else {
        *out += e.constant.ToString();
      }
      break;
    case ExprKind::kArith:
      AppendPretty(*e.left, prec, out);
      *out += ArithSymbol(e.arith);
      AppendPretty(*e.right, prec + 1, out);
      break;
    case ExprKind::kCompare:
      // The right operand binds one tighter so a right-nested comparison
      // keeps its parentheses: comparisons parse left-associative, and
      // (unlike AND/OR chains) the canonical encoding does not flatten
      // them, so "a==(b==c)" must not print as "a==b==c".
      AppendPretty(*e.left, prec, out);
      *out += CompareSymbol(e.compare);
      AppendPretty(*e.right, prec + 1, out);
      break;
    case ExprKind::kLogical:
      AppendPretty(*e.left, prec, out);
      *out += e.logical == LogicalKind::kAnd ? " AND " : " OR ";
      AppendPretty(*e.right, prec, out);
      break;
    case ExprKind::kNot:
      *out += "NOT ";
      AppendPretty(*e.left, prec, out);
      break;
  }
  if (parens) *out += ")";
}

}  // namespace

// --- builders --------------------------------------------------------------

ExprPtr Field(int index, ValueType type, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kField;
  e->field_index = index;
  e->field_type = type;
  e->field_name = std::move(name);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithKind::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithKind::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithKind::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithKind::kDiv, std::move(a), std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithKind::kMod, std::move(a), std::move(b));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return MakeCompare(CompareKind::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return MakeCompare(CompareKind::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return MakeCompare(CompareKind::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return MakeCompare(CompareKind::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return MakeCompare(CompareKind::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return MakeCompare(CompareKind::kGe, std::move(a), std::move(b));
}

ExprPtr And(ExprPtr a, ExprPtr b) {
  return MakeLogical(LogicalKind::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return MakeLogical(LogicalKind::kOr, std::move(a), std::move(b));
}

ExprPtr Not(ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->left = std::move(a);
  return e;
}

// --- static typing ---------------------------------------------------------

Result<ValueType> TypeCheck(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kField:
      if (e.field_index < 0) {
        return Status::InvalidArgument("negative field index in expression");
      }
      if (e.field_type != ValueType::kBool &&
          e.field_type != ValueType::kInt64 &&
          e.field_type != ValueType::kDouble &&
          e.field_type != ValueType::kString) {
        return Status::InvalidArgument(
            std::string("field $") + std::to_string(e.field_index) +
            " declares unsupported type " +
            ValueTypeToString(e.field_type));
      }
      return e.field_type;
    case ExprKind::kConst: {
      const ValueType t = e.constant.type();
      if (t == ValueType::kNull) {
        return Status::InvalidArgument("untyped null literal in expression");
      }
      if (t == ValueType::kDoubleList) {
        return Status::InvalidArgument(
            "list values have no expression operations");
      }
      return t;
    }
    case ExprKind::kArith: {
      RHEEM_ASSIGN_OR_RETURN(ValueType lt, TypeCheck(*e.left));
      RHEEM_ASSIGN_OR_RETURN(ValueType rt, TypeCheck(*e.right));
      if (!IsNumericType(lt) || !IsNumericType(rt)) {
        return Status::InvalidArgument(
            std::string("arithmetic '") + ArithSymbol(e.arith) +
            "' requires numeric operands, got " + ValueTypeToString(lt) +
            " and " + ValueTypeToString(rt));
      }
      if (e.arith == ArithKind::kMod &&
          (lt != ValueType::kInt64 || rt != ValueType::kInt64)) {
        return Status::InvalidArgument("'%' requires int64 operands");
      }
      return (lt == ValueType::kInt64 && rt == ValueType::kInt64)
                 ? ValueType::kInt64
                 : ValueType::kDouble;
    }
    case ExprKind::kCompare: {
      RHEEM_ASSIGN_OR_RETURN(ValueType lt, TypeCheck(*e.left));
      RHEEM_ASSIGN_OR_RETURN(ValueType rt, TypeCheck(*e.right));
      const bool ok = (IsNumericType(lt) && IsNumericType(rt)) || lt == rt;
      if (!ok) {
        return Status::InvalidArgument(
            std::string("comparison '") + CompareSymbol(e.compare) +
            "' over incompatible types " + ValueTypeToString(lt) + " and " +
            ValueTypeToString(rt));
      }
      return ValueType::kBool;
    }
    case ExprKind::kLogical: {
      RHEEM_ASSIGN_OR_RETURN(ValueType lt, TypeCheck(*e.left));
      RHEEM_ASSIGN_OR_RETURN(ValueType rt, TypeCheck(*e.right));
      if (lt != ValueType::kBool || rt != ValueType::kBool) {
        return Status::InvalidArgument(
            std::string(e.logical == LogicalKind::kAnd ? "AND" : "OR") +
            " requires bool operands, got " + ValueTypeToString(lt) +
            " and " + ValueTypeToString(rt));
      }
      return ValueType::kBool;
    }
    case ExprKind::kNot: {
      RHEEM_ASSIGN_OR_RETURN(ValueType lt, TypeCheck(*e.left));
      if (lt != ValueType::kBool) {
        return Status::InvalidArgument(
            std::string("NOT requires a bool operand, got ") +
            ValueTypeToString(lt));
      }
      return ValueType::kBool;
    }
  }
  return Status::Internal("unknown expression kind");
}

Status TypeCheckPredicate(const Expr& e) {
  RHEEM_ASSIGN_OR_RETURN(ValueType t, TypeCheck(e));
  if (t != ValueType::kBool) {
    return Status::InvalidArgument(
        std::string("predicate must be bool, got ") + ValueTypeToString(t) +
        ": " + Pretty(e));
  }
  return Status::OK();
}

// --- evaluation ------------------------------------------------------------

Value Eval(const Expr& e, const Record& r) {
  switch (e.kind) {
    case ExprKind::kField:
      return FieldValue(e, r);
    case ExprKind::kConst:
      return e.constant;
    case ExprKind::kArith:
      return ArithValue(e.arith, Eval(*e.left, r), Eval(*e.right, r));
    case ExprKind::kCompare:
      return CompareValue(e.compare, Eval(*e.left, r), Eval(*e.right, r));
    case ExprKind::kLogical:
      return LogicalValue(e.logical, Eval(*e.left, r), Eval(*e.right, r));
    case ExprKind::kNot:
      return NotValue(Eval(*e.left, r));
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& e, const Record& r) {
  const Value v = Eval(e, r);
  return v.type() == ValueType::kBool && v.bool_unchecked();
}

namespace {

Value EvalPair(const Expr& e, const Record& a, const Record& b) {
  switch (e.kind) {
    case ExprKind::kField: {
      const int w = static_cast<int>(a.size());
      if (e.field_index >= 0 && e.field_index < w) return FieldValue(e, a);
      Expr shifted = e;
      shifted.field_index = e.field_index - w;
      return FieldValue(shifted, b);
    }
    case ExprKind::kConst:
      return e.constant;
    case ExprKind::kArith:
      return ArithValue(e.arith, EvalPair(*e.left, a, b),
                        EvalPair(*e.right, a, b));
    case ExprKind::kCompare:
      return CompareValue(e.compare, EvalPair(*e.left, a, b),
                          EvalPair(*e.right, a, b));
    case ExprKind::kLogical:
      return LogicalValue(e.logical, EvalPair(*e.left, a, b),
                          EvalPair(*e.right, a, b));
    case ExprKind::kNot:
      return NotValue(EvalPair(*e.left, a, b));
  }
  return Value::Null();
}

/// Batch evaluation: one column of Values per node over rows[begin, end).
void EvalColumn(const Expr& e, const std::vector<Record>& rows,
                std::size_t begin, std::size_t end, std::vector<Value>* out) {
  const std::size_t n = end - begin;
  out->clear();
  out->reserve(n);
  switch (e.kind) {
    case ExprKind::kField:
      for (std::size_t i = begin; i < end; ++i) {
        out->push_back(FieldValue(e, rows[i]));
      }
      return;
    case ExprKind::kConst:
      out->assign(n, e.constant);
      return;
    case ExprKind::kNot: {
      std::vector<Value> in;
      EvalColumn(*e.left, rows, begin, end, &in);
      for (std::size_t i = 0; i < n; ++i) out->push_back(NotValue(in[i]));
      return;
    }
    default: {
      std::vector<Value> lhs, rhs;
      EvalColumn(*e.left, rows, begin, end, &lhs);
      EvalColumn(*e.right, rows, begin, end, &rhs);
      for (std::size_t i = 0; i < n; ++i) {
        switch (e.kind) {
          case ExprKind::kArith:
            out->push_back(ArithValue(e.arith, lhs[i], rhs[i]));
            break;
          case ExprKind::kCompare:
            out->push_back(CompareValue(e.compare, lhs[i], rhs[i]));
            break;
          default:
            out->push_back(LogicalValue(e.logical, lhs[i], rhs[i]));
            break;
        }
      }
      return;
    }
  }
}

}  // namespace

bool EvalPredicatePair(const Expr& e, const Record& a, const Record& b) {
  const Value v = EvalPair(e, a, b);
  return v.type() == ValueType::kBool && v.bool_unchecked();
}

void EvalPredicateBatch(const Expr& e, const std::vector<Record>& rows,
                        std::size_t begin, std::size_t end,
                        std::vector<unsigned char>* keep) {
  std::vector<Value> col;
  EvalColumn(e, rows, begin, end, &col);
  keep->resize(end - begin);
  for (std::size_t i = 0; i < col.size(); ++i) {
    (*keep)[i] = (col[i].type() == ValueType::kBool && col[i].bool_unchecked())
                     ? 1
                     : 0;
  }
}

// --- columnar evaluation ---------------------------------------------------

namespace {

/// One evaluated expression node over the active rows of a BatchView: a
/// typed dense vector of length view.n, or a broadcast constant, plus a
/// dense byte null mask (empty = no null elements). String values are never
/// copied — a string VCol references the backing ColumnData and resolves
/// elements through the view.
///
/// Null semantics mirror the scalar combiners exactly: a VCol whose `type`
/// is kNull is "null at every element", which is what scalar evaluation
/// yields whenever an operand's runtime type class is wrong for the
/// operator — the class check is per-column here instead of per-row, which
/// is equivalent because a converted column holds a single runtime type.
struct VCol {
  ValueType type = ValueType::kNull;  // kNull = every element is null
  bool is_const = false;
  Value cval;                           // is_const: the broadcast value
  std::vector<int64_t> i64;             // type == kInt64
  std::vector<double> f64;              // type == kDouble
  std::vector<uint8_t> b8;              // type == kBool
  const ColumnData* str_src = nullptr;  // type == kString: backing column
  std::vector<uint8_t> nulls;           // dense byte mask; empty = no nulls

  bool NullAt(std::size_t i) const {
    if (is_const) return cval.is_null();
    return !nulls.empty() && nulls[i] != 0;
  }
  int64_t I64At(std::size_t i) const {
    return is_const ? cval.int64_unchecked() : i64[i];
  }
  bool BoolAt(std::size_t i) const {
    return is_const ? cval.bool_unchecked() : b8[i] != 0;
  }
  /// Numeric read as double — the same widening Value::Compare and the
  /// mixed-type arithmetic path apply (ToDoubleOr).
  double NumAt(std::size_t i) const {
    if (is_const) return cval.ToDoubleOr(0.0);
    return type == ValueType::kInt64 ? static_cast<double>(i64[i]) : f64[i];
  }
  std::string_view StrAt(const BatchView& view, std::size_t i) const {
    if (is_const) return cval.string_unchecked();
    return str_src->StringAt(view.row(i));
  }
};

void MarkVNull(VCol* c, std::size_t i, std::size_t n) {
  if (c->nulls.empty()) c->nulls.assign(n, 0);
  c->nulls[i] = 1;
}

/// -1/0/+1 with Value::Compare's semantics for doubles: NaN compares equal
/// to everything (both `<` tests fail).
inline int CmpD(double a, double b) { return a < b ? -1 : (b < a ? 1 : 0); }

inline bool CompareOutcome(CompareKind k, int c) {
  switch (k) {
    case CompareKind::kEq: return c == 0;
    case CompareKind::kNe: return c != 0;
    case CompareKind::kLt: return c < 0;
    case CompareKind::kLe: return c <= 0;
    case CompareKind::kGt: return c > 0;
    case CompareKind::kGe: return c >= 0;
  }
  return false;
}

void EvalV(const Expr& e, const BatchView& view, VCol* out);

void FieldV(const Expr& e, const BatchView& view, VCol* out) {
  if (e.field_index < 0 ||
      static_cast<std::size_t>(e.field_index) >= view.num_cols) {
    return;  // out-of-range reference: all-null, like scalar FieldValue
  }
  const ColumnData& col = *view.cols[e.field_index];
  bool accept = false;
  switch (e.field_type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      // Numeric declarations accept either numeric runtime column type.
      accept = col.type == ValueType::kInt64 || col.type == ValueType::kDouble;
      break;
    case ValueType::kBool:
      accept = col.type == ValueType::kBool;
      break;
    case ValueType::kString:
      accept = col.type == ValueType::kString;
      break;
    default:
      break;
  }
  if (!accept) return;  // type mismatch (or an all-null column): all-null
  const std::size_t n = view.n;
  out->type = col.type;
  if (col.has_nulls()) {
    out->nulls.resize(n);
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      const bool nl = col.IsNull(view.row(i));
      out->nulls[i] = nl ? 1 : 0;
      any = any || nl;
    }
    if (!any) out->nulls.clear();  // selection skipped every null row
  }
  switch (col.type) {
    case ValueType::kInt64:
      out->i64.resize(n);
      if (view.sel == nullptr) {
        std::copy_n(col.i64.data() + view.base, n, out->i64.begin());
      } else {
        for (std::size_t i = 0; i < n; ++i) out->i64[i] = col.i64[view.sel[i]];
      }
      break;
    case ValueType::kDouble:
      out->f64.resize(n);
      if (view.sel == nullptr) {
        std::copy_n(col.f64.data() + view.base, n, out->f64.begin());
      } else {
        for (std::size_t i = 0; i < n; ++i) out->f64[i] = col.f64[view.sel[i]];
      }
      break;
    case ValueType::kBool:
      out->b8.resize(n);
      if (view.sel == nullptr) {
        std::copy_n(col.b8.data() + view.base, n, out->b8.begin());
      } else {
        for (std::size_t i = 0; i < n; ++i) out->b8[i] = col.b8[view.sel[i]];
      }
      break;
    case ValueType::kString:
      out->str_src = &col;  // zero-copy: resolved through the view
      break;
    default:
      out->type = ValueType::kNull;
      break;
  }
}

void ArithV(const Expr& e, const BatchView& view, VCol* out) {
  VCol l, r;
  EvalV(*e.left, view, &l);
  EvalV(*e.right, view, &r);
  if (l.is_const && r.is_const) {
    out->is_const = true;
    out->cval = ArithValue(e.arith, l.cval, r.cval);
    out->type = out->cval.type();
    return;
  }
  // Non-numeric operand class => null at every element (ArithValue).
  if (!IsNumericType(l.type) || !IsNumericType(r.type)) return;
  const std::size_t n = view.n;
  if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64) {
    out->type = ValueType::kInt64;
    out->i64.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (l.NullAt(i) || r.NullAt(i)) {
        MarkVNull(out, i, n);
        out->i64[i] = 0;
        continue;
      }
      const int64_t x = l.I64At(i);
      const int64_t y = r.I64At(i);
      switch (e.arith) {
        case ArithKind::kAdd: out->i64[i] = x + y; break;
        case ArithKind::kSub: out->i64[i] = x - y; break;
        case ArithKind::kMul: out->i64[i] = x * y; break;
        case ArithKind::kDiv:
          if (y == 0) {
            MarkVNull(out, i, n);
            out->i64[i] = 0;
          } else {
            out->i64[i] = x / y;
          }
          break;
        case ArithKind::kMod:
          if (y == 0) {
            MarkVNull(out, i, n);
            out->i64[i] = 0;
          } else {
            out->i64[i] = x % y;
          }
          break;
      }
    }
    return;
  }
  // Mixed numeric widths evaluate as doubles; % stays integer-only, so a
  // double operand makes every element null (ArithValue).
  if (e.arith == ArithKind::kMod) return;
  out->type = ValueType::kDouble;
  out->f64.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (l.NullAt(i) || r.NullAt(i)) {
      MarkVNull(out, i, n);
      out->f64[i] = 0.0;
      continue;
    }
    const double x = l.NumAt(i);
    const double y = r.NumAt(i);
    switch (e.arith) {
      case ArithKind::kAdd: out->f64[i] = x + y; break;
      case ArithKind::kSub: out->f64[i] = x - y; break;
      case ArithKind::kMul: out->f64[i] = x * y; break;
      case ArithKind::kDiv:
        if (y == 0.0) {
          MarkVNull(out, i, n);
          out->f64[i] = 0.0;
        } else {
          out->f64[i] = x / y;
        }
        break;
      case ArithKind::kMod:
        break;  // unreachable
    }
  }
}

void CompareV(const Expr& e, const BatchView& view, VCol* out) {
  VCol l, r;
  EvalV(*e.left, view, &l);
  EvalV(*e.right, view, &r);
  if (l.is_const && r.is_const) {
    out->is_const = true;
    out->cval = CompareValue(e.compare, l.cval, r.cval);
    out->type = out->cval.type();
    return;
  }
  const std::size_t n = view.n;
  const bool numeric = IsNumericType(l.type) && IsNumericType(r.type);
  const bool same = l.type == r.type;
  // Mismatched comparable classes => null at every element (CompareValue);
  // this covers all-null operands and non-foldable list constants too.
  if (!numeric && !(same && (l.type == ValueType::kBool ||
                             l.type == ValueType::kString))) {
    return;
  }
  out->type = ValueType::kBool;
  out->b8.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (l.NullAt(i) || r.NullAt(i)) {
      MarkVNull(out, i, n);
      out->b8[i] = 0;
      continue;
    }
    int c;
    if (numeric) {
      c = CmpD(l.NumAt(i), r.NumAt(i));  // Value::Compare's numeric tower
    } else if (l.type == ValueType::kString) {
      const std::string_view a = l.StrAt(view, i);
      const std::string_view b = r.StrAt(view, i);
      c = a < b ? -1 : (b < a ? 1 : 0);
    } else {
      c = (l.BoolAt(i) ? 1 : 0) - (r.BoolAt(i) ? 1 : 0);
    }
    out->b8[i] = CompareOutcome(e.compare, c) ? 1 : 0;
  }
}

void LogicalV(const Expr& e, const BatchView& view, VCol* out) {
  VCol l, r;
  EvalV(*e.left, view, &l);
  EvalV(*e.right, view, &r);
  if (l.is_const && r.is_const) {
    out->is_const = true;
    out->cval = LogicalValue(e.logical, l.cval, r.cval);
    out->type = out->cval.type();
    return;
  }
  // A non-bool operand is null at every element (LogicalValue); when both
  // are non-bool the result is null everywhere.
  const bool l_bool = l.type == ValueType::kBool;
  const bool r_bool = r.type == ValueType::kBool;
  if (!l_bool && !r_bool) return;
  const std::size_t n = view.n;
  out->type = ValueType::kBool;
  out->b8.resize(n);
  const bool is_and = e.logical == LogicalKind::kAnd;
  for (std::size_t i = 0; i < n; ++i) {
    const bool an = !l_bool || l.NullAt(i);
    const bool bn = !r_bool || r.NullAt(i);
    const bool av = !an && l.BoolAt(i);
    const bool bv = !bn && r.BoolAt(i);
    if (is_and) {
      if ((!an && !av) || (!bn && !bv)) {
        out->b8[i] = 0;  // definite false
      } else if (an || bn) {
        MarkVNull(out, i, n);
        out->b8[i] = 0;
      } else {
        out->b8[i] = 1;
      }
    } else {
      if (av || bv) {
        out->b8[i] = 1;  // definite true
      } else if (an || bn) {
        MarkVNull(out, i, n);
        out->b8[i] = 0;
      } else {
        out->b8[i] = 0;
      }
    }
  }
}

void EvalV(const Expr& e, const BatchView& view, VCol* out) {
  switch (e.kind) {
    case ExprKind::kField:
      FieldV(e, view, out);
      return;
    case ExprKind::kConst:
      out->is_const = true;
      out->cval = e.constant;
      out->type = e.constant.type();
      return;
    case ExprKind::kArith:
      ArithV(e, view, out);
      return;
    case ExprKind::kCompare:
      CompareV(e, view, out);
      return;
    case ExprKind::kLogical:
      LogicalV(e, view, out);
      return;
    case ExprKind::kNot: {
      VCol in;
      EvalV(*e.left, view, &in);
      if (in.is_const) {
        out->is_const = true;
        out->cval = NotValue(in.cval);
        out->type = out->cval.type();
        return;
      }
      if (in.type != ValueType::kBool) return;  // all-null (NotValue)
      const std::size_t n = view.n;
      out->type = ValueType::kBool;
      out->b8.resize(n);
      out->nulls = std::move(in.nulls);  // NOT preserves nullness
      for (std::size_t i = 0; i < n; ++i) out->b8[i] = in.b8[i] ? 0 : 1;
      return;
    }
  }
}

void AllNullColumn(std::size_t n, ColumnData* out) {
  out->type = ValueType::kNull;
  if (n > 0) {
    out->null_words.assign((n + 63) / 64, ~uint64_t{0});
    const std::size_t tail = n & 63;
    if (tail != 0) out->null_words.back() = (uint64_t{1} << tail) - 1;
  }
}

}  // namespace

void EvalPredicateView(const Expr& e, const BatchView& view,
                       std::vector<unsigned char>* keep) {
  VCol col;
  EvalV(e, view, &col);
  keep->assign(view.n, 0);
  if (col.is_const) {
    if (col.cval.type() == ValueType::kBool && col.cval.bool_unchecked()) {
      std::fill(keep->begin(), keep->end(), 1);
    }
    return;
  }
  if (col.type != ValueType::kBool) return;  // all-null / non-bool: drop all
  if (col.nulls.empty()) {
    std::copy(col.b8.begin(), col.b8.end(), keep->begin());
    return;
  }
  for (std::size_t i = 0; i < view.n; ++i) {
    (*keep)[i] = (col.b8[i] != 0 && col.nulls[i] == 0) ? 1 : 0;
  }
}

void EvalExprView(const Expr& e, const BatchView& view, ColumnData* out) {
  VCol col;
  EvalV(e, view, &col);
  const std::size_t n = view.n;
  *out = ColumnData();
  if (col.is_const) {
    const Value& v = col.cval;
    switch (v.type()) {
      case ValueType::kInt64:
        out->type = ValueType::kInt64;
        out->i64.assign(n, v.int64_unchecked());
        return;
      case ValueType::kDouble:
        out->type = ValueType::kDouble;
        out->f64.assign(n, v.double_unchecked());
        return;
      case ValueType::kBool:
        out->type = ValueType::kBool;
        out->b8.assign(n, v.bool_unchecked() ? 1 : 0);
        return;
      case ValueType::kString: {
        out->type = ValueType::kString;
        const std::string& s = v.string_unchecked();
        out->str_offsets.reserve(n + 1);
        out->str_bytes.reserve(n * s.size());
        for (std::size_t i = 0; i < n; ++i) {
          out->str_offsets.push_back(static_cast<uint32_t>(out->str_bytes.size()));
          out->str_bytes.append(s);
        }
        out->str_offsets.push_back(static_cast<uint32_t>(out->str_bytes.size()));
        return;
      }
      default:
        AllNullColumn(n, out);
        return;
    }
  }
  if (col.type == ValueType::kNull) {
    AllNullColumn(n, out);
    return;
  }
  out->type = col.type;
  switch (col.type) {
    case ValueType::kInt64: out->i64 = std::move(col.i64); break;
    case ValueType::kDouble: out->f64 = std::move(col.f64); break;
    case ValueType::kBool: out->b8 = std::move(col.b8); break;
    case ValueType::kString: {
      out->str_offsets.reserve(n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        out->str_offsets.push_back(static_cast<uint32_t>(out->str_bytes.size()));
        if (col.NullAt(i)) continue;  // empty payload, marked via the mask
        const std::string_view s = col.StrAt(view, i);
        out->str_bytes.append(s.data(), s.size());
      }
      out->str_offsets.push_back(static_cast<uint32_t>(out->str_bytes.size()));
      break;
    }
    default: break;
  }
  if (!col.nulls.empty()) out->SetNullsFromBytes(col.nulls);
}

// --- canonical form & fingerprints -----------------------------------------

std::string Canonical(const Expr& e) {
  std::string out;
  AppendCanonical(e, &out);
  return out;
}

std::string Pretty(const Expr& e) {
  std::string out;
  AppendPretty(e, 0, &out);
  return out;
}

// --- selectivity -----------------------------------------------------------

double EstimateSelectivity(const Expr& e) {
  double s;
  switch (e.kind) {
    case ExprKind::kConst:
      s = (e.constant.type() == ValueType::kBool)
              ? (e.constant.bool_unchecked() ? 1.0 : 0.0)
              : 0.5;
      break;
    case ExprKind::kCompare:
      switch (e.compare) {
        case CompareKind::kEq: s = 0.1; break;
        case CompareKind::kNe: s = 0.9; break;
        default: s = 1.0 / 3.0; break;
      }
      break;
    case ExprKind::kLogical: {
      const double a = EstimateSelectivity(*e.left);
      const double b = EstimateSelectivity(*e.right);
      s = e.logical == LogicalKind::kAnd ? a * b : a + b - a * b;
      break;
    }
    case ExprKind::kNot:
      s = 1.0 - EstimateSelectivity(*e.left);
      break;
    default:
      s = 0.5;  // a non-boolean tree has no predicate selectivity
      break;
  }
  return std::clamp(s, 0.0, 1.0);
}

// --- structural helpers ----------------------------------------------------

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e) {
  std::vector<ExprPtr> out;
  if (e == nullptr) return out;
  if (e->kind == ExprKind::kLogical && e->logical == LogicalKind::kAnd) {
    for (auto& c : SplitConjuncts(e->left)) out.push_back(std::move(c));
    for (auto& c : SplitConjuncts(e->right)) out.push_back(std::move(c));
    return out;
  }
  out.push_back(e);
  return out;
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const ExprPtr& c : conjuncts) {
    acc = acc == nullptr ? c : And(acc, c);
  }
  return acc;
}

void CollectFields(const Expr& e, std::set<int>* fields) {
  switch (e.kind) {
    case ExprKind::kField:
      fields->insert(e.field_index);
      return;
    case ExprKind::kConst:
      return;
    case ExprKind::kNot:
      CollectFields(*e.left, fields);
      return;
    default:
      CollectFields(*e.left, fields);
      CollectFields(*e.right, fields);
      return;
  }
}

int MaxFieldIndex(const Expr& e) {
  std::set<int> fields;
  CollectFields(e, &fields);
  return fields.empty() ? -1 : *fields.rbegin();
}

Result<ExprPtr> RemapFields(const ExprPtr& e,
                            const std::map<int, int>& mapping) {
  switch (e->kind) {
    case ExprKind::kField: {
      auto it = mapping.find(e->field_index);
      if (it == mapping.end()) {
        return Status::NotFound("no mapping for field $" +
                                std::to_string(e->field_index));
      }
      auto n = std::make_shared<Expr>(*e);
      n->field_index = it->second;
      return ExprPtr(n);
    }
    case ExprKind::kConst:
      return e;
    case ExprKind::kNot: {
      RHEEM_ASSIGN_OR_RETURN(ExprPtr c, RemapFields(e->left, mapping));
      auto n = std::make_shared<Expr>(*e);
      n->left = std::move(c);
      return ExprPtr(n);
    }
    default: {
      RHEEM_ASSIGN_OR_RETURN(ExprPtr l, RemapFields(e->left, mapping));
      RHEEM_ASSIGN_OR_RETURN(ExprPtr r, RemapFields(e->right, mapping));
      auto n = std::make_shared<Expr>(*e);
      n->left = std::move(l);
      n->right = std::move(r);
      return ExprPtr(n);
    }
  }
}

ExprPtr ShiftFields(const ExprPtr& e, int delta) {
  switch (e->kind) {
    case ExprKind::kField: {
      auto n = std::make_shared<Expr>(*e);
      n->field_index = e->field_index + delta;
      return n;
    }
    case ExprKind::kConst:
      return e;
    case ExprKind::kNot: {
      auto n = std::make_shared<Expr>(*e);
      n->left = ShiftFields(e->left, delta);
      return n;
    }
    default: {
      auto n = std::make_shared<Expr>(*e);
      n->left = ShiftFields(e->left, delta);
      n->right = ShiftFields(e->right, delta);
      return n;
    }
  }
}

int NodeCount(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kField:
    case ExprKind::kConst:
      return 1;
    case ExprKind::kNot:
      return 1 + NodeCount(*e.left);
    default:
      return 1 + NodeCount(*e.left) + NodeCount(*e.right);
  }
}

// --- UDF compilation -------------------------------------------------------

Result<PredicateUdf> MakePredicateUdf(ExprPtr e) {
  if (e == nullptr) return Status::InvalidArgument("null predicate expression");
  RHEEM_RETURN_IF_ERROR(TypeCheckPredicate(*e));
  PredicateUdf udf;
  udf.expr = e;
  udf.fn = [e](const Record& r) { return EvalPredicate(*e, r); };
  udf.meta.selectivity = EstimateSelectivity(*e);
  udf.meta.cost_factor = static_cast<double>(NodeCount(*e)) * 0.25;
  return udf;
}

Result<MapUdf> MakeMapUdf(std::vector<ExprPtr> fields) {
  if (fields.empty()) {
    return Status::InvalidArgument("declarative Map needs >= 1 output field");
  }
  for (const ExprPtr& f : fields) {
    if (f == nullptr) return Status::InvalidArgument("null field expression");
    RHEEM_RETURN_IF_ERROR(TypeCheck(*f).status());
  }
  MapUdf udf;
  udf.projection = fields;
  double cost = 0.0;
  for (const ExprPtr& f : fields) cost += NodeCount(*f);
  udf.meta.cost_factor = cost * 0.25;
  udf.fn = [fields](const Record& r) {
    std::vector<Value> out;
    out.reserve(fields.size());
    for (const ExprPtr& f : fields) out.push_back(Eval(*f, r));
    return Record(std::move(out));
  };
  return udf;
}

Result<KeyUdf> MakeKeyUdf(ExprPtr e) {
  if (e == nullptr) return Status::InvalidArgument("null key expression");
  RHEEM_RETURN_IF_ERROR(TypeCheck(*e).status());
  KeyUdf udf;
  udf.expr = e;
  udf.fn = [e](const Record& r) { return Eval(*e, r); };
  return udf;
}

Result<ThetaUdf> MakeThetaUdf(ExprPtr e) {
  if (e == nullptr) return Status::InvalidArgument("null theta expression");
  RHEEM_RETURN_IF_ERROR(TypeCheckPredicate(*e));
  ThetaUdf udf;
  udf.pair_expr = e;
  udf.fn = [e](const Record& a, const Record& b) {
    return EvalPredicatePair(*e, a, b);
  };
  udf.meta.selectivity = EstimateSelectivity(*e);
  return udf;
}

}  // namespace expr
}  // namespace rheem

#ifndef RHEEM_CORE_EXPR_EXPR_H_
#define RHEEM_CORE_EXPR_EXPR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/operators/descriptors.h"
#include "data/batch.h"
#include "data/record.h"
#include "data/value.h"

namespace rheem {
namespace expr {

/// \brief A small typed expression IR: the declarative alternative to opaque
/// UDF closures.
///
/// The paper's optimizer treats UDFs as black boxes it can only annotate
/// (UdfMeta); "Opening the Black Boxes in Data Flow Optimization" shows that
/// a tiny declarative language over record fields recovers the rewrites,
/// cardinality estimates, and sound cache keys closures destroy. An Expr is
/// an immutable tree of field references, constants, arithmetic, comparisons
/// and boolean connectives. Declarative DataQuanta operators carry an Expr
/// *alongside* the compiled closure, so every platform executes them
/// unchanged while the optimizer gains full visibility.
///
/// Semantics are SQL-flavored three-valued logic at runtime: a missing
/// field, a runtime type mismatch, or a division by zero evaluates to Null,
/// comparisons against Null are Null, AND/OR follow Kleene logic, and a
/// predicate treats Null as "drop". Static types are checked once by
/// TypeCheck(); records are still dynamically typed, so evaluation never
/// throws or errors — it degrades to Null.
enum class ExprKind : uint8_t {
  kField,    // record field reference with a declared type
  kConst,    // literal Value
  kArith,    // + - * / %
  kCompare,  // == != < <= > >=
  kLogical,  // AND / OR (Kleene)
  kNot,      // NOT
};

enum class ArithKind : uint8_t { kAdd, kSub, kMul, kDiv, kMod };
enum class CompareKind : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalKind : uint8_t { kAnd, kOr };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Build via the factory functions below; the
/// members are set once at construction and never mutated, so subtrees can
/// be shared freely across plans and threads.
class Expr {
 public:
  ExprKind kind = ExprKind::kConst;

  // kField
  int field_index = -1;
  ValueType field_type = ValueType::kNull;  // declared static type
  std::string field_name;                   // optional, for pretty-printing

  // kConst
  Value constant;

  // operators
  ArithKind arith = ArithKind::kAdd;
  CompareKind compare = CompareKind::kEq;
  LogicalKind logical = LogicalKind::kAnd;
  ExprPtr left;   // also the sole child of kNot
  ExprPtr right;  // null for kNot
};

// --- builders --------------------------------------------------------------

/// Reference to record field `index` with declared type `type`. The optional
/// `name` only affects pretty-printing (e.g. "age > 30" instead of "$2 > 30").
ExprPtr Field(int index, ValueType type, std::string name = "");
/// Literal constant.
ExprPtr Lit(Value v);
inline ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
inline ExprPtr Lit(int v) { return Lit(Value(v)); }
inline ExprPtr Lit(double v) { return Lit(Value(v)); }
inline ExprPtr Lit(const char* v) { return Lit(Value(v)); }
inline ExprPtr Lit(bool v) { return Lit(Value(v)); }

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);

// --- static typing ---------------------------------------------------------

/// Bottom-up structural type check. Arithmetic requires numeric operands
/// (int64/double; mixed widens to double, / and % of two int64 stay integer),
/// comparisons require both sides in the same type class (numerics mix,
/// string-string, bool-bool), AND/OR/NOT require bool operands. Field
/// references must declare bool/int64/double/string and a non-negative
/// index. Returns the expression's static result type.
Result<ValueType> TypeCheck(const Expr& e);

/// TypeCheck + "the result must be bool" (the predicate contract).
Status TypeCheckPredicate(const Expr& e);

// --- evaluation ------------------------------------------------------------

/// Evaluates over one record; never errors (see class comment for the null
/// semantics).
Value Eval(const Expr& e, const Record& r);

/// Predicate evaluation: Null coerces to false (SQL WHERE semantics).
bool EvalPredicate(const Expr& e, const Record& r);

/// Pair-predicate evaluation over the implicit concatenation (a ++ b)
/// without materializing it: fields [0, a.size()) read `a`, the rest `b`.
bool EvalPredicatePair(const Expr& e, const Record& a, const Record& b);

/// Vectorized predicate evaluation over rows[begin, end): each interior node
/// produces a column of Values for the whole batch (the seed of the columnar
/// evaluation path, ROADMAP item 1). (*keep)[i - begin] is set to 1 when the
/// predicate accepts rows[i]. Identical results to EvalPredicate per row.
void EvalPredicateBatch(const Expr& e, const std::vector<Record>& rows,
                        std::size_t begin, std::size_t end,
                        std::vector<unsigned char>* keep);

/// True columnar predicate evaluation over a BatchView: each node evaluates
/// to a typed dense vector (no per-row Record or Value construction), so the
/// inner loops run branch-light over contiguous memory. (*keep)[i] is set to
/// 1 exactly when the predicate accepts the i-th active row of `view` —
/// identical to EvalPredicate over the boxed record.
void EvalPredicateView(const Expr& e, const BatchView& view,
                       std::vector<unsigned char>* keep);

/// Columnar expression evaluation: materializes the expression's value for
/// every active row of `view` into a dense output column of length view.n.
/// Requires a type-checked tree (list constants degrade to null). Matches
/// Eval element-for-element, including null degradation on dynamic type
/// mismatch.
void EvalExprView(const Expr& e, const BatchView& view, ColumnData* out);

// --- canonical form & fingerprints -----------------------------------------

/// Deterministic canonical encoding for fingerprinting. AND/OR chains are
/// flattened and their operands sorted (conjunction normalization), so
/// `a AND b` and `b AND a` — semantically identical under Kleene logic —
/// encode identically and share plan-cache entries. Constants are encoded
/// exactly, which is what makes declarative plan fingerprints sound: two
/// plans differing only in a predicate constant never collide.
std::string Canonical(const Expr& e);

/// Human-readable infix rendering for EXPLAIN output and trace spans, e.g.
/// `age > 30 AND dept == "eng"` (falls back to `$i` for unnamed fields).
std::string Pretty(const Expr& e);

// --- selectivity -----------------------------------------------------------

/// Per-predicate selectivity estimate in [0, 1], System-R style: equality
/// 0.1, inequality 0.9, range comparisons 1/3, AND multiplies, OR adds with
/// inclusion-exclusion, NOT complements, boolean constants are exact.
double EstimateSelectivity(const Expr& e);

// --- structural helpers (used by the pushdown rewrites) --------------------

/// Flattens nested ANDs into the list of conjuncts (a non-AND root is the
/// single conjunct).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e);

/// AND of all conjuncts; null for an empty list, the sole element for one.
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

/// Adds every referenced field index to `*fields`.
void CollectFields(const Expr& e, std::set<int>* fields);

/// Largest referenced field index, or -1 when the expression is constant.
int MaxFieldIndex(const Expr& e);

/// Rebuilds the tree with field indices substituted through `mapping`;
/// NotFound when a referenced field has no entry.
Result<ExprPtr> RemapFields(const ExprPtr& e, const std::map<int, int>& mapping);

/// Rebuilds the tree with every field index shifted by `delta`.
ExprPtr ShiftFields(const ExprPtr& e, int delta);

/// Number of nodes in the tree (a proxy for evaluation cost).
int NodeCount(const Expr& e);

// --- UDF compilation -------------------------------------------------------

/// Compiles a type-checked boolean expression into a Filter descriptor: the
/// closure evaluates the expression, `meta.selectivity` comes from
/// EstimateSelectivity, and `expr` keeps the tree visible to the optimizer.
Result<PredicateUdf> MakePredicateUdf(ExprPtr e);

/// Compiles a projection (one expression per output field) into a Map
/// descriptor carrying the expression list.
Result<MapUdf> MakeMapUdf(std::vector<ExprPtr> fields);

/// Compiles a key-extraction expression into a Key descriptor.
Result<KeyUdf> MakeKeyUdf(ExprPtr e);

/// Compiles a boolean pair predicate over the concatenation of the two join
/// sides into a ThetaJoin descriptor.
Result<ThetaUdf> MakeThetaUdf(ExprPtr e);

}  // namespace expr
}  // namespace rheem

#endif  // RHEEM_CORE_EXPR_EXPR_H_

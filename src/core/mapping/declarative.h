#ifndef RHEEM_CORE_MAPPING_DECLARATIVE_H_
#define RHEEM_CORE_MAPPING_DECLARATIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping/platform.h"

namespace rheem {

/// \brief Declarative platform specification — the paper's research
/// challenge (1): "Developers will specify mappings between operators as
/// well as encode rule- and cost-based models ... the optimizer will use
/// this representation as a first-class citizen" (§8). The paper muses about
/// RDF; this implementation keeps the same subject-predicate-object idea in
/// a plain text format so adding a platform needs *zero* optimizer or C++
/// changes beyond an execution engine.
///
/// Grammar (one statement per line, '#' comments, '.' terminator optional):
///
///   platform <name>
///   <name> maps <Kind>[/<Variant>] to <ExecOpName> [weight <w>] [context "<text>"]
///   <name> cost per_quantum_us <v>
///   <name> cost parallelism <v>
///   <name> cost stage_overhead_us <v>
///   <name> cost job_overhead_us <v>
///   <name> cost boundary_us_per_byte <v>
///   <name> cost boundary_fixed_us <v>
///   <name> cost shuffle_us_per_quantum <v>
///
/// Example:
///
///   platform turbo
///   turbo maps Map to TurboMap weight 0.5 context "vectorized"
///   turbo maps GroupByKey/SortGroupBy to TurboSortGroup weight 0.4
///   turbo cost per_quantum_us 0.01
///   turbo cost stage_overhead_us 250
struct DeclarativePlatformSpec {
  std::string name;
  MappingTable mappings;
  BasicCostModel::Params cost_params;
};

/// Parses one spec document (may declare several platforms).
Result<std::vector<DeclarativePlatformSpec>> ParsePlatformSpecs(
    const std::string& text);

/// \brief A Platform constructed entirely from a declarative spec. Its
/// execution engine is the generic eager in-process walker, so only the
/// operators the spec maps are accepted — supportability, variants and
/// costs all come from the text, never from code.
class DeclarativePlatform : public Platform {
 public:
  explicit DeclarativePlatform(DeclarativePlatformSpec spec);

  const PlatformCostModel& cost_model() const override { return cost_model_; }

  Result<std::vector<Dataset>> ExecuteStage(const Stage& stage,
                                            const BoundaryMap& boundary_inputs,
                                            ExecutionMetrics* metrics) override;

 private:
  BasicCostModel cost_model_;
};

/// Convenience: parse `text` and register every declared platform with
/// `registry`.
Status RegisterDeclaredPlatforms(const std::string& text,
                                 PlatformRegistry* registry);

}  // namespace rheem

#endif  // RHEEM_CORE_MAPPING_DECLARATIVE_H_

#include "core/mapping/platform.h"

#include <cstdio>

namespace rheem {

void ExecutionMetrics::MergeFrom(const ExecutionMetrics& other) {
  wall_micros += other.wall_micros;
  sim_overhead_micros += other.sim_overhead_micros;
  jobs_run += other.jobs_run;
  stages_run += other.stages_run;
  tasks_launched += other.tasks_launched;
  shuffle_bytes += other.shuffle_bytes;
  moved_records += other.moved_records;
  moved_bytes += other.moved_bytes;
  retries += other.retries;
  fused_operators += other.fused_operators;
  stages_reused += other.stages_reused;
  boundary_conversions_reused += other.boundary_conversions_reused;
  failovers += other.failovers;
  reoptimizations += other.reoptimizations;
}

std::string ExecutionMetrics::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "total=%.3fms (wall=%.3fms sim=%.3fms) jobs=%lld stages=%lld "
                "tasks=%lld shuffle=%lldB moved=%lldrec/%lldB retries=%lld "
                "fused=%lld reused=%lld conv_reused=%lld failovers=%lld "
                "reopts=%lld",
                static_cast<double>(TotalMicros()) * 1e-3,
                static_cast<double>(wall_micros) * 1e-3,
                static_cast<double>(sim_overhead_micros) * 1e-3,
                static_cast<long long>(jobs_run),
                static_cast<long long>(stages_run),
                static_cast<long long>(tasks_launched),
                static_cast<long long>(shuffle_bytes),
                static_cast<long long>(moved_records),
                static_cast<long long>(moved_bytes),
                static_cast<long long>(retries),
                static_cast<long long>(fused_operators),
                static_cast<long long>(stages_reused),
                static_cast<long long>(boundary_conversions_reused),
                static_cast<long long>(failovers),
                static_cast<long long>(reoptimizations));
  return buf;
}

Status PlatformRegistry::Register(std::unique_ptr<Platform> platform) {
  if (platform == nullptr) {
    return Status::InvalidArgument("cannot register a null platform");
  }
  const std::string& name = platform->name();
  if (platforms_.count(name) > 0) {
    return Status::AlreadyExists("platform '" + name + "' already registered");
  }
  platforms_.emplace(name, std::move(platform));
  return Status::OK();
}

Result<Platform*> PlatformRegistry::Get(const std::string& name) const {
  auto it = platforms_.find(name);
  if (it == platforms_.end()) {
    return Status::NotFound("platform '" + name + "' is not registered");
  }
  return it->second.get();
}

std::vector<Platform*> PlatformRegistry::All() const {
  std::vector<Platform*> out;
  out.reserve(platforms_.size());
  for (const auto& [name, p] : platforms_) out.push_back(p.get());
  return out;
}

}  // namespace rheem

#include "core/mapping/declarative.h"

#include <cstdlib>
#include <map>

#include "common/string_util.h"
#include "core/optimizer/stage_splitter.h"
#include "platforms/javasim/javasim_operators.h"

namespace rheem {

namespace {

/// Splits a statement into tokens; quoted strings become single tokens.
Result<std::vector<std::string>> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  for (char c : line) {
    if (in_quotes) {
      if (c == '"') {
        tokens.push_back(current);
        current.clear();
        in_quotes = false;
      } else {
        current += c;
      }
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("quote in the middle of a token: " + line);
      }
      in_quotes = true;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote: " + line);
  if (!current.empty()) tokens.push_back(current);
  // Optional trailing '.' terminator (the RDF-triple flavor).
  if (!tokens.empty() && tokens.back() == ".") tokens.pop_back();
  if (!tokens.empty() && tokens.back().size() > 1 && tokens.back().back() == '.') {
    tokens.back().pop_back();
  }
  return tokens;
}

Result<double> ParseNumber(const std::string& token, const std::string& line) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected a number, got '" + token +
                                   "' in: " + line);
  }
  return v;
}

Status ApplyCostStatement(BasicCostModel::Params* params,
                          const std::string& key, double value,
                          const std::string& line) {
  if (key == "per_quantum_us") {
    params->per_quantum_micros = value;
  } else if (key == "parallelism") {
    params->parallelism = value;
  } else if (key == "stage_overhead_us") {
    params->stage_overhead_micros = value;
  } else if (key == "job_overhead_us") {
    params->job_overhead_micros = value;
  } else if (key == "boundary_us_per_byte") {
    params->boundary_micros_per_byte = value;
  } else if (key == "boundary_fixed_us") {
    params->boundary_fixed_micros = value;
  } else if (key == "shuffle_us_per_quantum") {
    params->shuffle_micros_per_quantum = value;
  } else {
    return Status::InvalidArgument("unknown cost key '" + key + "' in: " + line);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<DeclarativePlatformSpec>> ParsePlatformSpecs(
    const std::string& text) {
  std::vector<DeclarativePlatformSpec> specs;
  std::map<std::string, std::size_t> index;

  for (const std::string& raw : SplitString(text, '\n')) {
    std::string line(TrimWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    RHEEM_ASSIGN_OR_RETURN(std::vector<std::string> tokens, Tokenize(line));
    if (tokens.empty()) continue;

    if (tokens[0] == "platform") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("platform statement wants one name: " +
                                       line);
      }
      if (index.count(tokens[1]) > 0) {
        return Status::AlreadyExists("platform '" + tokens[1] +
                                     "' declared twice");
      }
      index[tokens[1]] = specs.size();
      DeclarativePlatformSpec spec;
      spec.name = tokens[1];
      specs.push_back(std::move(spec));
      continue;
    }

    auto it = index.find(tokens[0]);
    if (it == index.end()) {
      return Status::InvalidArgument(
          "statement about undeclared platform '" + tokens[0] + "': " + line);
    }
    DeclarativePlatformSpec& spec = specs[it->second];

    if (tokens.size() >= 4 && tokens[1] == "maps" && tokens[3] == "to") {
      if (tokens.size() < 5) {
        return Status::InvalidArgument("maps statement wants a target: " + line);
      }
      OperatorMapping mapping;
      // Kind[/Variant]
      const auto slash = tokens[2].find('/');
      const std::string kind_name = tokens[2].substr(0, slash);
      RHEEM_ASSIGN_OR_RETURN(mapping.kind, OpKindFromString(kind_name));
      if (slash != std::string::npos) {
        mapping.variant = tokens[2].substr(slash + 1);
      }
      mapping.execution_operator = tokens[4];
      for (std::size_t i = 5; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "weight") {
          RHEEM_ASSIGN_OR_RETURN(mapping.cost_weight,
                                 ParseNumber(tokens[i + 1], line));
        } else if (tokens[i] == "context") {
          mapping.context = tokens[i + 1];
        } else {
          return Status::InvalidArgument("unknown maps attribute '" +
                                         tokens[i] + "' in: " + line);
        }
      }
      spec.mappings.Add(std::move(mapping));
      continue;
    }

    if (tokens.size() == 4 && tokens[1] == "cost") {
      RHEEM_ASSIGN_OR_RETURN(double value, ParseNumber(tokens[3], line));
      RHEEM_RETURN_IF_ERROR(
          ApplyCostStatement(&spec.cost_params, tokens[2], value, line));
      continue;
    }

    return Status::InvalidArgument("unparseable statement: " + line);
  }
  return specs;
}

DeclarativePlatform::DeclarativePlatform(DeclarativePlatformSpec spec)
    : Platform(spec.name), cost_model_(spec.cost_params) {
  mappings_ = std::move(spec.mappings);
}

Result<std::vector<Dataset>> DeclarativePlatform::ExecuteStage(
    const Stage& stage, const BoundaryMap& boundary_inputs,
    ExecutionMetrics* metrics) {
  // Declared platforms run on the generic eager engine; their identity lives
  // in the declared mappings (supportability/variants) and cost model.
  metrics->sim_overhead_micros +=
      static_cast<int64_t>(cost_model_.StageOverheadMicros());
  javasim::DatasetWalker walker(metrics);
  RHEEM_RETURN_IF_ERROR(walker.RunOps(stage.ops(), boundary_inputs));
  std::vector<Dataset> outputs;
  outputs.reserve(stage.outputs().size());
  for (const Operator* out : stage.outputs()) {
    RHEEM_ASSIGN_OR_RETURN(const Dataset* d, walker.ResultOf(out->id()));
    outputs.push_back(*d);
  }
  return outputs;
}

Status RegisterDeclaredPlatforms(const std::string& text,
                                 PlatformRegistry* registry) {
  if (registry == nullptr) return Status::InvalidArgument("null registry");
  RHEEM_ASSIGN_OR_RETURN(std::vector<DeclarativePlatformSpec> specs,
                         ParsePlatformSpecs(text));
  for (auto& spec : specs) {
    RHEEM_RETURN_IF_ERROR(registry->Register(
        std::make_unique<DeclarativePlatform>(std::move(spec))));
  }
  return Status::OK();
}

}  // namespace rheem

#ifndef RHEEM_CORE_MAPPING_MAPPING_H_
#define RHEEM_CORE_MAPPING_MAPPING_H_

#include <string>
#include <vector>

#include "core/operators/physical_ops.h"

namespace rheem {

/// \brief One declarative correspondence between a physical operator (kind +
/// optional algorithmic variant) and a platform's execution operator.
///
/// Developers plug a new platform into RHEEM by *declaring* such mappings
/// (paper §3.1 "Flexible operator mappings"); the optimizer consults them for
/// supportability and relative cost, and the platform's stage walker
/// dispatches to the named execution operator. `context` carries free-form
/// hints to the optimizer, e.g. "prefers presorted input".
struct OperatorMapping {
  OpKind kind = OpKind::kMap;
  /// Variant discriminator matching PhysicalOperator::kind_name()
  /// ("HashGroupBy", "SortGroupBy", ...). Empty = any variant of the kind.
  std::string variant;
  /// Name of the execution operator on the target platform
  /// (e.g. "MapPartitions", "ReduceByKey").
  std::string execution_operator;
  /// Per-data-quantum cost multiplier relative to the platform baseline.
  double cost_weight = 1.0;
  /// Optimizer hints (informational; surfaced in explain output).
  std::string context;
};

/// \brief Ordered collection of a platform's operator mappings.
class MappingTable {
 public:
  MappingTable() = default;

  MappingTable& Add(OperatorMapping mapping);

  /// Most specific applicable mapping for `op`: exact-variant first, then
  /// kind-level wildcard. Null when the platform cannot execute `op`.
  const OperatorMapping* Find(const PhysicalOperator& op) const;

  bool Supports(const PhysicalOperator& op) const { return Find(op) != nullptr; }

  const std::vector<OperatorMapping>& mappings() const { return mappings_; }

  /// Multi-line "Kind[/variant] -> ExecOp (xW)" listing for docs/explain.
  std::string ToString() const;

 private:
  std::vector<OperatorMapping> mappings_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_MAPPING_MAPPING_H_

#include "core/mapping/mapping.h"

#include <cstdio>

namespace rheem {

MappingTable& MappingTable::Add(OperatorMapping mapping) {
  mappings_.push_back(std::move(mapping));
  return *this;
}

const OperatorMapping* MappingTable::Find(const PhysicalOperator& op) const {
  const OperatorMapping* wildcard = nullptr;
  const std::string variant = op.kind_name();
  for (const auto& m : mappings_) {
    if (m.kind != op.kind()) continue;
    if (!m.variant.empty()) {
      if (m.variant == variant) return &m;  // exact variant wins
    } else if (wildcard == nullptr) {
      wildcard = &m;
    }
  }
  return wildcard;
}

std::string MappingTable::ToString() const {
  std::string out;
  for (const auto& m : mappings_) {
    out += OpKindToString(m.kind);
    if (!m.variant.empty()) {
      out += "/";
      out += m.variant;
    }
    out += " -> " + m.execution_operator;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (x%.2f)", m.cost_weight);
    out += buf;
    if (!m.context.empty()) out += "  # " + m.context;
    out += "\n";
  }
  return out;
}

}  // namespace rheem

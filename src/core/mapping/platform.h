#ifndef RHEEM_CORE_MAPPING_PLATFORM_H_
#define RHEEM_CORE_MAPPING_PLATFORM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/mapping/mapping.h"
#include "core/optimizer/cost_model.h"
#include "data/dataset.h"

namespace rheem {

class Stage;  // defined in core/optimizer/stage_splitter.h

/// \brief Counters and timings gathered while executing a plan.
///
/// `wall_micros` is real measured time; `sim_overhead_micros` is the virtual
/// time charged by platform overhead models (job submission, task launch).
/// Benchmarks report TotalMicros(), the modelled end-to-end latency.
struct ExecutionMetrics {
  int64_t wall_micros = 0;
  int64_t sim_overhead_micros = 0;
  int64_t jobs_run = 0;
  int64_t stages_run = 0;
  int64_t tasks_launched = 0;
  int64_t shuffle_bytes = 0;
  int64_t moved_records = 0;   // across platform boundaries
  int64_t moved_bytes = 0;     // across platform boundaries
  int64_t retries = 0;
  int64_t fused_operators = 0;  // operators executed inside fused pipelines
  int64_t stages_reused = 0;    // stages skipped via the sub-plan result cache
  int64_t boundary_conversions_reused = 0;  // cross-platform encodes shared
  int64_t failovers = 0;  // platform blackouts survived by re-planning
  int64_t reoptimizations = 0;  // mid-job re-plans on cardinality misestimates

  int64_t TotalMicros() const { return wall_micros + sim_overhead_micros; }
  double TotalSeconds() const { return static_cast<double>(TotalMicros()) * 1e-6; }

  void MergeFrom(const ExecutionMetrics& other);
  std::string ToString() const;
};

/// Boundary data entering a stage: producer operator id -> its output.
using BoundaryMap = std::unordered_map<int, const Dataset*>;

/// \brief A data processing platform plugged into RHEEM's platform layer.
///
/// A platform declares which physical operators it can run (its
/// MappingTable), how much they cost there (its PlatformCostModel), and knows
/// how to execute a whole task atom (Stage) natively. The cross-platform
/// executor only ever talks to platforms in units of stages and exchanges
/// Datasets at the boundaries — exactly the paper's "task atoms are executed
/// by the underlying platform" contract (§4.2).
class Platform {
 public:
  virtual ~Platform() = default;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  const std::string& name() const { return name_; }
  const MappingTable& mappings() const { return mappings_; }

  bool Supports(const PhysicalOperator& op) const {
    return mappings_.Supports(op);
  }

  virtual const PlatformCostModel& cost_model() const = 0;

  /// Executes the stage's subplan. `boundary_inputs` holds the materialized
  /// outputs of upstream stages keyed by producer operator id. Returns one
  /// Dataset per entry of Stage::outputs(), in order.
  virtual Result<std::vector<Dataset>> ExecuteStage(
      const Stage& stage, const BoundaryMap& boundary_inputs,
      ExecutionMetrics* metrics) = 0;

 protected:
  explicit Platform(std::string name) : name_(std::move(name)) {}

  MappingTable mappings_;  // populated by subclass constructors

 private:
  std::string name_;
};

/// \brief Registry of the platforms available to one RheemContext.
///
/// The optimizer enumerates over exactly these platforms; adding a platform
/// to the registry (with its mappings and cost model) is all it takes for
/// plans to start landing there — no optimizer changes (paper §4.2, req. 2).
class PlatformRegistry {
 public:
  PlatformRegistry() = default;

  PlatformRegistry(const PlatformRegistry&) = delete;
  PlatformRegistry& operator=(const PlatformRegistry&) = delete;

  Status Register(std::unique_ptr<Platform> platform);

  Result<Platform*> Get(const std::string& name) const;

  std::vector<Platform*> All() const;

  std::size_t size() const { return platforms_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Platform>> platforms_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_MAPPING_PLATFORM_H_

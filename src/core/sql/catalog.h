#ifndef RHEEM_CORE_SQL_CATALOG_H_
#define RHEEM_CORE_SQL_CATALOG_H_

#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/api/data_quanta.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace rheem {
namespace sql {

/// A table resolved by a Catalog: a source DataQuanta rooted in the
/// compiling job's plan, plus the schema the analyzer binds columns against.
struct TableHandle {
  DataQuanta quanta;
  Schema schema;
};

/// Name -> table resolution for the SQL frontend. Table names are matched
/// case-insensitively, like every other identifier in the dialect.
class Catalog {
 public:
  virtual ~Catalog() = default;

  /// Loads `name` as a source DataQuanta rooted in `job`. NotFound (or a
  /// schema complaint) when the table cannot be served; the compiler
  /// prefixes the FROM token's position.
  virtual Result<TableHandle> Load(RheemJob* job, const std::string& name) = 0;
};

/// Catalog over registered in-memory datasets. Thread-safe: concurrent
/// Load() calls (e.g. parallel SQL compilations against one context) and
/// Register() calls may interleave freely.
class InMemoryCatalog : public Catalog {
 public:
  /// Registers `data` under `name` (replacing any existing entry). The
  /// dataset must carry a schema — SQL needs named, typed columns.
  Status Register(const std::string& name, Dataset data);
  /// Same, attaching `schema` to the dataset first.
  Status Register(const std::string& name, Dataset data, Schema schema);

  Result<TableHandle> Load(RheemJob* job, const std::string& name) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Dataset> tables_;  // keyed by upper-cased name
};

/// Catalog over the context's attached storage layer: table `name` is the
/// storage dataset of the same name, served through the hot-data buffer.
/// The dataset must have been stored with a schema (CsvStore persists one
/// as a `#schema` header row).
class StorageCatalog : public Catalog {
 public:
  Result<TableHandle> Load(RheemJob* job, const std::string& name) override;
};

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_CATALOG_H_

#include "core/sql/tokenizer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace rheem {
namespace sql {

std::string Token::Pos() const {
  return std::to_string(line) + ":" + std::to_string(col);
}

bool Token::IsKeyword(const char* keyword) const {
  return kind == TokenKind::kIdent && text == keyword;
}

bool Token::IsSymbol(const char* symbol) const {
  return kind == TokenKind::kSymbol && text == symbol;
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipWhitespaceAndComments();
      Token t;
      t.line = line_;
      t.col = col_;
      t.offset = pos_;
      if (pos_ >= input_.size()) {
        t.end_offset = pos_;
        out.push_back(std::move(t));  // kEnd
        return out;
      }
      RHEEM_RETURN_IF_ERROR(Lex(&t));
      t.end_offset = pos_;
      out.push_back(std::move(t));
    }
  }

 private:
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  char Take() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status Error(int line, int col, const std::string& msg) const {
    return Status::InvalidArgument(std::to_string(line) + ":" +
                                   std::to_string(col) + ": " + msg);
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(Peek()))) {
        Take();
      }
      if (Peek() == '-' && Peek(1) == '-') {
        while (pos_ < input_.size() && Peek() != '\n') Take();
        continue;
      }
      return;
    }
  }

  Status Lex(Token* t) {
    const char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdent(t);
    }
    if (c == '$') return LexPositional(t);
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexNumber(t);
    }
    if (c == '\'') return LexSqlString(t);
    if (c == '"') return LexQuotedString(t);
    return LexSymbol(t);
  }

  Status LexIdent(Token* t) {
    t->kind = TokenKind::kIdent;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      t->raw += Take();
    }
    t->text.reserve(t->raw.size());
    for (char ch : t->raw) {
      t->text +=
          static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    return Status::OK();
  }

  Status LexPositional(Token* t) {
    t->kind = TokenKind::kIdent;
    t->raw += Take();  // '$'
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error(t->line, t->col, "'$' must be followed by a field number");
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) t->raw += Take();
    t->text = t->raw;
    return Status::OK();
  }

  Status LexNumber(Token* t) {
    t->kind = TokenKind::kNumber;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) t->raw += Take();
    if (Peek() == '.' && Peek(1) != '.') {
      t->is_double = true;
      t->raw += Take();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) t->raw += Take();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      t->is_double = true;
      t->raw += Take();
      if (Peek() == '+' || Peek() == '-') t->raw += Take();
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error(t->line, t->col, "malformed exponent in number literal");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) t->raw += Take();
    }
    t->text = t->raw;
    if (t->is_double) {
      t->double_value = std::strtod(t->raw.c_str(), nullptr);
    } else {
      errno = 0;
      char* end = nullptr;
      t->int_value = std::strtoll(t->raw.c_str(), &end, 10);
      if (errno == ERANGE) {
        // Too large for int64: degrade to the nearest double.
        t->is_double = true;
        t->double_value = std::strtod(t->raw.c_str(), nullptr);
      }
    }
    return Status::OK();
  }

  Status LexSqlString(Token* t) {
    const int line = t->line, col = t->col;
    t->kind = TokenKind::kString;
    Take();  // opening '
    for (;;) {
      if (pos_ >= input_.size()) {
        return Error(line, col, "unterminated string literal");
      }
      const char c = Take();
      if (c == '\'') {
        if (Peek() == '\'') {  // '' escapes one quote
          t->raw += Take();
          continue;
        }
        t->text = t->raw;
        return Status::OK();
      }
      t->raw += c;
    }
  }

  Status LexQuotedString(Token* t) {
    const int line = t->line, col = t->col;
    t->kind = TokenKind::kString;
    Take();  // opening "
    for (;;) {
      if (pos_ >= input_.size()) {
        return Error(line, col, "unterminated string literal");
      }
      const char c = Take();
      if (c == '"') {
        t->text = t->raw;
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ >= input_.size()) {
          return Error(line, col, "unterminated string literal");
        }
        t->raw += Take();
        continue;
      }
      t->raw += c;
    }
  }

  Status LexSymbol(Token* t) {
    t->kind = TokenKind::kSymbol;
    for (const char* sym : {"<=", ">=", "<>", "!=", "=="}) {
      if (Peek() == sym[0] && Peek(1) == sym[1]) {
        Take();
        Take();
        t->text = sym;
        t->raw = sym;
        return Status::OK();
      }
    }
    static const std::string kSingles = "()+-*/%<>=,.";
    const char c = Peek();
    if (kSingles.find(c) != std::string::npos) {
      Take();
      t->text = std::string(1, c);
      t->raw = t->text;
      return Status::OK();
    }
    return Error(t->line, t->col,
                 std::string("unexpected character '") + c + "'");
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& query) {
  return Lexer(query).Run();
}

}  // namespace sql
}  // namespace rheem

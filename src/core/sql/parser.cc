#include "core/sql/parser.h"

#include <cstdlib>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace rheem {
namespace sql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

namespace {

/// Words with clause meaning: rejected as bare column names so a malformed
/// query fails at the keyword instead of mis-binding it as a column.
bool IsReservedWord(const std::string& upper) {
  static const std::set<std::string> kReserved = {
      "SELECT", "DISTINCT", "FROM",  "JOIN",  "INNER", "ON",
      "WHERE",  "GROUP",    "BY",    "ORDER", "ASC",   "DESC",
      "LIMIT",  "AS",       "AND",   "OR",    "NOT"};
  return kReserved.count(upper) > 0;
}

Result<AggFunc> AggFromName(const std::string& upper) {
  if (upper == "SUM") return AggFunc::kSum;
  if (upper == "MIN") return AggFunc::kMin;
  if (upper == "MAX") return AggFunc::kMax;
  if (upper == "COUNT") return AggFunc::kCount;
  if (upper == "AVG") return AggFunc::kAvg;
  return Status::NotFound("not an aggregate");
}

class Parser {
 public:
  Parser(const std::string& query, std::vector<Token> tokens)
      : query_(query), tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<const SelectStmt>> ParseStatement() {
    RHEEM_ASSIGN_OR_RETURN(auto stmt, ParseSelectStmt());
    RHEEM_RETURN_IF_ERROR(ExpectEnd());
    return std::shared_ptr<const SelectStmt>(std::move(stmt));
  }

  Result<SqlExprPtr> ParseStandaloneExpression() {
    RHEEM_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
    RHEEM_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& Take() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool TakeKeyword(const char* keyword) {
    if (Peek().IsKeyword(keyword)) {
      Take();
      return true;
    }
    return false;
  }

  bool TakeSymbol(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      Take();
      return true;
    }
    return false;
  }

  static Status ErrorAt(const Token& t, const std::string& msg) {
    return Status::InvalidArgument(t.Pos() + ": " + msg);
  }

  static std::string Describe(const Token& t) {
    return t.kind == TokenKind::kEnd ? std::string("end of input")
                                     : "'" + t.raw + "'";
  }

  Status Expect(const char* keyword) {
    if (!TakeKeyword(keyword)) {
      return ErrorAt(Peek(), std::string("expected ") + keyword + ", got " +
                                 Describe(Peek()));
    }
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (!TakeSymbol(symbol)) {
      return ErrorAt(Peek(), std::string("expected '") + symbol + "', got " +
                                 Describe(Peek()));
    }
    return Status::OK();
  }

  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return ErrorAt(Peek(), "trailing input " + Describe(Peek()));
    }
    return Status::OK();
  }

  /// The source text spanned by tokens [from, to_exclusive_end), trimmed.
  std::string Slice(const Token& from, const Token& upto) const {
    return std::string(TrimWhitespace(
        std::string_view(query_).substr(from.offset,
                                        upto.end_offset - from.offset)));
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    auto stmt = std::make_unique<SelectStmt>();
    RHEEM_RETURN_IF_ERROR(Expect("SELECT"));
    stmt->distinct = TakeKeyword("DISTINCT");
    RHEEM_RETURN_IF_ERROR(ParseSelectList(stmt.get()));
    RHEEM_RETURN_IF_ERROR(Expect("FROM"));
    RHEEM_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    while (Peek().IsKeyword("INNER") || Peek().IsKeyword("JOIN")) {
      TakeKeyword("INNER");
      RHEEM_RETURN_IF_ERROR(Expect("JOIN"));
      JoinClause join;
      RHEEM_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      RHEEM_RETURN_IF_ERROR(Expect("ON"));
      join.on_tok = Peek();
      RHEEM_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt->joins.push_back(std::move(join));
    }
    if (TakeKeyword("WHERE")) {
      RHEEM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (TakeKeyword("GROUP")) {
      RHEEM_RETURN_IF_ERROR(Expect("BY"));
      do {
        RHEEM_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (TakeSymbol(","));
    }
    if (TakeKeyword("ORDER")) {
      RHEEM_RETURN_IF_ERROR(Expect("BY"));
      stmt->order_tok = Peek();
      RHEEM_ASSIGN_OR_RETURN(stmt->order_by, ParseExpr());
      if (TakeKeyword("DESC")) {
        stmt->order_ascending = false;
      } else {
        TakeKeyword("ASC");
      }
    }
    if (TakeKeyword("LIMIT")) {
      stmt->limit_tok = Peek();
      if (Peek().kind != TokenKind::kNumber || Peek().is_double) {
        return ErrorAt(Peek(), "LIMIT expects a non-negative integer, got " +
                                   Describe(Peek()));
      }
      stmt->limit = Take().int_value;
      if (stmt->limit < 0) {
        return ErrorAt(stmt->limit_tok, "negative LIMIT");
      }
    }
    return stmt;
  }

  Status ParseSelectList(SelectStmt* stmt) {
    if (Peek().IsSymbol("*")) {
      SelectItem star;
      star.tok = Take();
      star.is_star = true;
      star.text = "*";
      stmt->items.push_back(std::move(star));
      return Status::OK();
    }
    do {
      SelectItem item;
      item.tok = Peek();
      RHEEM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      item.text = Slice(item.tok, tokens_[pos_ > 0 ? pos_ - 1 : 0]);
      if (TakeKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdent || IsReservedWord(Peek().text)) {
          return ErrorAt(Peek(), "AS expects a name, got " + Describe(Peek()));
        }
        item.alias = Take().raw;
      }
      stmt->items.push_back(std::move(item));
    } while (TakeSymbol(","));
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    ref.tok = Peek();
    if (TakeSymbol("(")) {
      RHEEM_ASSIGN_OR_RETURN(auto sub, ParseSelectStmt());
      RHEEM_RETURN_IF_ERROR(ExpectSymbol(")"));
      ref.subquery = std::shared_ptr<const SelectStmt>(std::move(sub));
    } else {
      if (Peek().kind != TokenKind::kIdent || IsReservedWord(Peek().text)) {
        return ErrorAt(Peek(),
                       "expected a table name, got " + Describe(Peek()));
      }
      ref.name = Take().raw;
    }
    if (TakeKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdent || IsReservedWord(Peek().text)) {
        return ErrorAt(Peek(), "AS expects a name, got " + Describe(Peek()));
      }
      ref.alias = Take().raw;
    } else if (Peek().kind == TokenKind::kIdent &&
               !IsReservedWord(Peek().text) &&
               AggFromName(Peek().text).ok() == false) {
      // Bare alias: FROM t a.
      ref.alias = Take().raw;
    }
    return ref;
  }

  // --- expressions, loosest-binding first --------------------------------

  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  std::shared_ptr<SqlExpr> MakeBinary(const Token& op, SqlExprPtr l,
                                      SqlExprPtr r) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExprKind::kBinary;
    e->tok = op;
    e->name = op.text;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }

  Result<SqlExprPtr> ParseOr() {
    RHEEM_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      const Token op = Take();
      RHEEM_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseAnd() {
    RHEEM_ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (Peek().IsKeyword("AND")) {
      const Token op = Take();
      RHEEM_ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      const Token op = Take();
      RHEEM_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseNot());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExprKind::kUnary;
      e->tok = op;
      e->name = "NOT";
      e->left = std::move(inner);
      return SqlExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  Result<SqlExprPtr> ParseComparison() {
    RHEEM_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());
    for (;;) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kSymbol &&
          (t.text == "=" || t.text == "==" || t.text == "!=" ||
           t.text == "<>" || t.text == "<" || t.text == "<=" ||
           t.text == ">" || t.text == ">=")) {
        const Token op = Take();
        RHEEM_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
        left = MakeBinary(op, std::move(left), std::move(right));
        continue;
      }
      return left;
    }
  }

  Result<SqlExprPtr> ParseAdditive() {
    RHEEM_ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      const Token op = Take();
      RHEEM_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    RHEEM_ASSIGN_OR_RETURN(SqlExprPtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") ||
           Peek().IsSymbol("%")) {
      const Token op = Take();
      RHEEM_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      const Token op = Take();
      // A minus directly on a number literal folds into a negative literal
      // (so Pretty output like "-5" round-trips to the same constant, not
      // to 0-5); anything else becomes 0 - operand.
      if (Peek().kind == TokenKind::kNumber) {
        RHEEM_ASSIGN_OR_RETURN(SqlExprPtr lit, ParsePrimary());
        auto e = std::make_shared<SqlExpr>();
        e->kind = SqlExprKind::kLiteral;
        e->tok = op;
        e->literal = lit->literal.type() == ValueType::kDouble
                         ? Value(-lit->literal.double_unchecked())
                         : Value(-lit->literal.int64_unchecked());
        return SqlExprPtr(std::move(e));
      }
      RHEEM_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseUnary());
      auto zero = std::make_shared<SqlExpr>();
      zero->kind = SqlExprKind::kLiteral;
      zero->tok = op;
      zero->literal = Value(static_cast<int64_t>(0));
      Token minus = op;
      minus.text = "-";
      return SqlExprPtr(
          MakeBinary(minus, SqlExprPtr(std::move(zero)), std::move(inner)));
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        const Token tok = Take();
        auto e = std::make_shared<SqlExpr>();
        e->kind = SqlExprKind::kLiteral;
        e->tok = tok;
        e->literal =
            tok.is_double ? Value(tok.double_value) : Value(tok.int_value);
        return SqlExprPtr(std::move(e));
      }
      case TokenKind::kString: {
        const Token tok = Take();
        auto e = std::make_shared<SqlExpr>();
        e->kind = SqlExprKind::kLiteral;
        e->tok = tok;
        e->literal = Value(tok.raw);
        return SqlExprPtr(std::move(e));
      }
      case TokenKind::kIdent:
        return ParseIdentExpr();
      case TokenKind::kSymbol:
        if (t.text == "(") {
          Take();
          RHEEM_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
          RHEEM_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    return ErrorAt(t, "unexpected " + Describe(t) + " in expression");
  }

  Result<SqlExprPtr> ParseIdentExpr() {
    const Token tok = Take();
    // Positional reference $N.
    if (tok.raw[0] == '$') {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExprKind::kPositional;
      e->tok = tok;
      e->position =
          static_cast<int>(std::strtol(tok.raw.c_str() + 1, nullptr, 10));
      return SqlExprPtr(std::move(e));
    }
    if (tok.text == "TRUE" || tok.text == "FALSE") {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExprKind::kLiteral;
      e->tok = tok;
      e->literal = Value(tok.text == "TRUE");
      return SqlExprPtr(std::move(e));
    }
    if (tok.text == "NULL") {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExprKind::kLiteral;
      e->tok = tok;
      e->literal = Value::Null();
      return SqlExprPtr(std::move(e));
    }
    // Aggregate call?
    if (Peek().IsSymbol("(")) {
      auto agg = AggFromName(tok.text);
      if (agg.ok()) {
        Take();  // (
        auto e = std::make_shared<SqlExpr>();
        e->kind = SqlExprKind::kAggregate;
        e->tok = tok;
        e->agg = agg.ValueOrDie();
        if (TakeSymbol("*")) {
          if (e->agg != AggFunc::kCount) {
            return ErrorAt(tok, std::string(AggFuncName(e->agg)) +
                                    "(*) is not valid; only COUNT takes *");
          }
          e->agg_star = true;
        } else {
          RHEEM_ASSIGN_OR_RETURN(e->left, ParseExpr());
        }
        RHEEM_RETURN_IF_ERROR(ExpectSymbol(")"));
        return SqlExprPtr(std::move(e));
      }
      return ErrorAt(tok, "unknown function '" + tok.raw + "'");
    }
    if (IsReservedWord(tok.text)) {
      return ErrorAt(tok, "unexpected keyword " + Describe(tok) +
                              " in expression");
    }
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExprKind::kColumn;
    e->tok = tok;
    e->name = tok.raw;
    // Qualified reference table.column.
    if (Peek().IsSymbol(".")) {
      Take();
      if (Peek().kind != TokenKind::kIdent || IsReservedWord(Peek().text)) {
        return ErrorAt(Peek(),
                       "expected a column name after '" + tok.raw + ".'");
      }
      e->qualifier = tok.raw;
      const Token col = Take();
      e->name = col.raw;
      e->tok = col;
    }
    return SqlExprPtr(std::move(e));
  }

  const std::string& query_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<const SelectStmt>> ParseSelect(
    const std::string& query) {
  RHEEM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(query, std::move(tokens));
  return parser.ParseStatement();
}

Result<SqlExprPtr> ParseExpressionAst(const std::string& text) {
  RHEEM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(text, std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace sql
}  // namespace rheem

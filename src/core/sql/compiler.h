#ifndef RHEEM_CORE_SQL_COMPILER_H_
#define RHEEM_CORE_SQL_COMPILER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/api/data_quanta.h"
#include "core/sql/ast.h"
#include "core/sql/catalog.h"
#include "data/schema.h"

namespace rheem {
namespace sql {

/// A SELECT statement lowered onto a RheemJob's logical plan.
struct CompiledQuery {
  /// The statement's output (unsealed — no Collect sink yet).
  DataQuanta quanta;
  /// Output column names and types.
  Schema schema;
  /// Source-operator id -> catalog table name, for plan printouts.
  std::map<int, std::string> table_ops;
};

/// Compiles a parsed SELECT into logical operators appended to `job`'s
/// plan: FROM/JOIN become (theta-)joins over catalog sources, WHERE a
/// declarative filter, the select list a declarative projection, GROUP BY
/// plus aggregate items a Map/ReduceByKey/Map sandwich over AggSpecs, and
/// ORDER BY [LIMIT] a declarative TopK. Everything the statement means is
/// carried by typed expressions, so pushdown, selectivity estimation and
/// plan-cache fingerprints apply with no SQL-specific optimizer code.
/// Errors are InvalidArgument prefixed with 1-based "line:col" positions.
Result<CompiledQuery> CompileSelect(RheemJob* job, Catalog* catalog,
                                    const SelectStmt& stmt);

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_COMPILER_H_

#include "core/sql/catalog.h"

#include <cctype>
#include <utility>

#include "core/api/context.h"
#include "storage/hot_buffer.h"

namespace rheem {
namespace sql {

namespace {

std::string UpperName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string LowerName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Status InMemoryCatalog::Register(const std::string& name, Dataset data) {
  if (!data.has_schema()) {
    return Status::InvalidArgument("table '" + name +
                                   "' has no schema; SQL needs named, typed "
                                   "columns");
  }
  std::lock_guard<std::mutex> lock(mu_);
  tables_.insert_or_assign(UpperName(name), std::move(data));
  return Status::OK();
}

Status InMemoryCatalog::Register(const std::string& name, Dataset data,
                                 Schema schema) {
  data.set_schema(std::move(schema));
  return Register(name, std::move(data));
}

Result<TableHandle> InMemoryCatalog::Load(RheemJob* job,
                                          const std::string& name) {
  Dataset data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(UpperName(name));
    if (it == tables_.end()) {
      return Status::NotFound("unknown table '" + name + "'");
    }
    data = it->second;
  }
  Schema schema = data.schema();
  return TableHandle{job->LoadCollection(std::move(data)), std::move(schema)};
}

Result<TableHandle> StorageCatalog::Load(RheemJob* job,
                                         const std::string& name) {
  storage::HotDataBuffer* buffer = job->context()->hot_buffer();
  if (buffer == nullptr) {
    return Status::InvalidArgument(
        "no storage attached to this context — call "
        "RheemContext::AttachStorage first");
  }
  // Identifiers are case-insensitive in the dialect but storage keys are
  // exact strings: try the query's spelling, then the lower-cased
  // conventional form.
  auto data = buffer->Load(name);
  if (!data.ok()) data = buffer->Load(LowerName(name));
  if (!data.ok()) {
    return Status::NotFound("unknown table '" + name +
                            "': " + data.status().message());
  }
  const Dataset& ds = *data.ValueOrDie();
  if (!ds.has_schema()) {
    return Status::InvalidArgument(
        "dataset '" + name +
        "' was stored without a schema; SQL needs named, typed columns");
  }
  return TableHandle{job->LoadCollection(ds), ds.schema()};
}

}  // namespace sql
}  // namespace rheem

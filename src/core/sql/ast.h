#ifndef RHEEM_CORE_SQL_AST_H_
#define RHEEM_CORE_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sql/tokenizer.h"
#include "data/value.h"

namespace rheem {
namespace sql {

/// Parsed (unresolved) expression nodes. Every node keeps the token it was
/// parsed from, so the analyzer can report errors with source positions.
enum class SqlExprKind : uint8_t {
  kColumn,      // [qualifier.]name
  kPositional,  // $N
  kLiteral,     // number / string / bool / NULL
  kUnary,       // NOT expr
  kBinary,      // arithmetic, comparison, AND/OR
  kAggregate,   // SUM/MIN/MAX/COUNT/AVG(expr) or COUNT(*)
};

enum class AggFunc : uint8_t { kSum, kMin, kMax, kCount, kAvg };

const char* AggFuncName(AggFunc f);

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<const SqlExpr>;

struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kLiteral;
  Token tok;  // name / operator / literal token

  std::string qualifier;  // kColumn: optional table qualifier ("" = none)
  std::string name;       // kColumn: column; kUnary/kBinary: op spelling
  int position = -1;      // kPositional: field index
  Value literal;          // kLiteral
  AggFunc agg = AggFunc::kSum;  // kAggregate
  bool agg_star = false;        // COUNT(*)

  SqlExprPtr left;   // kBinary; sole child of kUnary / kAggregate
  SqlExprPtr right;  // kBinary only
};

struct SelectItem {
  SqlExprPtr expr;    // null when is_star
  bool is_star = false;
  std::string alias;  // AS alias ("" = none)
  std::string text;   // source slice, the output column's default name
  Token tok;
};

struct SelectStmt;

/// FROM / JOIN operand: a named catalog table or a parenthesized subquery
/// (derived table), optionally aliased.
struct TableRef {
  std::string name;  // "" for derived tables
  std::shared_ptr<const SelectStmt> subquery;
  std::string alias;  // "" = none (derived tables default to "_subquery")
  Token tok;
};

struct JoinClause {
  TableRef table;
  SqlExprPtr on;
  Token on_tok;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  SqlExprPtr where;                   // null = none
  std::vector<SqlExprPtr> group_by;   // empty = none
  SqlExprPtr order_by;                // null = none
  bool order_ascending = true;
  Token order_tok;
  int64_t limit = -1;  // -1 = none
  Token limit_tok;
};

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_AST_H_

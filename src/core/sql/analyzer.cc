#include "core/sql/analyzer.h"

#include <cctype>

namespace rheem {
namespace sql {

namespace {

std::string UpperCopy(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

// Column lookup is case-insensitive, like identifiers everywhere else in
// the dialect: an exact match wins, otherwise the first case-folded match.
int CiIndexOf(const Schema& schema, const std::string& name) {
  auto exact = schema.IndexOf(name);
  if (exact.ok()) return exact.ValueOrDie();
  const std::string want = UpperCopy(name);
  for (int i = 0; i < static_cast<int>(schema.num_fields()); ++i) {
    if (UpperCopy(schema.field(i).name) == want) return i;
  }
  return -1;
}

}  // namespace

void Scope::AddTable(std::string name, Schema schema) {
  ScopeTable t;
  t.name = std::move(name);
  t.offset = arity();
  combined_ = tables_.empty() ? schema : Schema::Concat(combined_, schema);
  t.schema = std::move(schema);
  tables_.push_back(std::move(t));
}

Result<std::pair<int, ValueType>> Scope::Resolve(const SqlExpr& ref) const {
  if (ref.kind == SqlExprKind::kPositional) {
    if (ref.position < 0 || ref.position >= arity()) {
      return ErrorAt(ref.tok, "field $" + std::to_string(ref.position) +
                                  " out of range (row has " +
                                  std::to_string(arity()) + " fields)");
    }
    return std::make_pair(ref.position, combined_.field(ref.position).type);
  }
  if (!ref.qualifier.empty()) {
    const std::string want = UpperCopy(ref.qualifier);
    for (const ScopeTable& t : tables_) {
      if (UpperCopy(t.name) != want) continue;
      const int local = CiIndexOf(t.schema, ref.name);
      if (local < 0) {
        return ErrorAt(ref.tok, "no column '" + ref.name + "' in table '" +
                                    t.name + "'");
      }
      return std::make_pair(t.offset + local, t.schema.field(local).type);
    }
    return ErrorAt(ref.tok, "unknown table '" + ref.qualifier + "'");
  }
  // Unqualified: unique match across the visible tables.
  int found = -1;
  ValueType type = ValueType::kNull;
  for (const ScopeTable& t : tables_) {
    const int local = CiIndexOf(t.schema, ref.name);
    if (local < 0) continue;
    if (found >= 0) {
      return ErrorAt(ref.tok, "ambiguous column '" + ref.name +
                                  "'; qualify it with a table name");
    }
    found = t.offset + local;
    type = t.schema.field(local).type;
  }
  if (found >= 0) return std::make_pair(found, type);
  // Fall back to the combined schema, which reaches join-suffixed names
  // like "v_r" that no single table schema contains.
  const int i = CiIndexOf(combined_, ref.name);
  if (i >= 0) return std::make_pair(i, combined_.field(i).type);
  return ErrorAt(ref.tok, "unknown column '" + ref.name + "'");
}

bool ContainsAggregate(const SqlExpr& e) {
  if (e.kind == SqlExprKind::kAggregate) return true;
  if (e.left != nullptr && ContainsAggregate(*e.left)) return true;
  if (e.right != nullptr && ContainsAggregate(*e.right)) return true;
  return false;
}

Result<expr::ExprPtr> BuildOperator(const SqlExpr& e, expr::ExprPtr left,
                                    expr::ExprPtr right) {
  expr::ExprPtr node;
  if (e.kind == SqlExprKind::kUnary) {
    node = expr::Not(std::move(left));
  } else {
    const std::string& op = e.name;
    expr::ExprPtr l = std::move(left), r = std::move(right);
    if (op == "+") node = expr::Add(std::move(l), std::move(r));
    else if (op == "-") node = expr::Sub(std::move(l), std::move(r));
    else if (op == "*") node = expr::Mul(std::move(l), std::move(r));
    else if (op == "/") node = expr::Div(std::move(l), std::move(r));
    else if (op == "%") node = expr::Mod(std::move(l), std::move(r));
    else if (op == "=" || op == "==") node = expr::Eq(std::move(l), std::move(r));
    else if (op == "!=" || op == "<>") node = expr::Ne(std::move(l), std::move(r));
    else if (op == "<") node = expr::Lt(std::move(l), std::move(r));
    else if (op == "<=") node = expr::Le(std::move(l), std::move(r));
    else if (op == ">") node = expr::Gt(std::move(l), std::move(r));
    else if (op == ">=") node = expr::Ge(std::move(l), std::move(r));
    else if (op == "AND") node = expr::And(std::move(l), std::move(r));
    else if (op == "OR") node = expr::Or(std::move(l), std::move(r));
    else return ErrorAt(e.tok, "unsupported operator '" + op + "'");
  }
  auto check = expr::TypeCheck(*node);
  if (!check.ok()) return ErrorAt(e.tok, check.status().message());
  return node;
}

Result<expr::ExprPtr> BindExpr(const SqlExpr& e, const Scope& scope) {
  switch (e.kind) {
    case SqlExprKind::kColumn:
    case SqlExprKind::kPositional: {
      RHEEM_ASSIGN_OR_RETURN(auto resolved, scope.Resolve(e));
      // Use the schema's spelling, not the query's: "AGE" binds to "age".
      const std::string& name = scope.combined().field(resolved.first).name;
      auto f = expr::Field(resolved.first, resolved.second, name);
      auto check = expr::TypeCheck(*f);
      if (!check.ok()) {
        // E.g. a column whose declared type the IR cannot carry (null, list).
        return ErrorAt(e.tok, check.status().message());
      }
      return f;
    }
    case SqlExprKind::kLiteral:
      if (e.literal.is_null()) {
        return ErrorAt(e.tok,
                       "NULL literals are not supported: expressions are "
                       "checked with non-null static types");
      }
      return expr::Lit(e.literal);
    case SqlExprKind::kUnary: {
      RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr inner, BindExpr(*e.left, scope));
      return BuildOperator(e, std::move(inner), nullptr);
    }
    case SqlExprKind::kBinary: {
      RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr l, BindExpr(*e.left, scope));
      RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr r, BindExpr(*e.right, scope));
      return BuildOperator(e, std::move(l), std::move(r));
    }
    case SqlExprKind::kAggregate:
      return ErrorAt(e.tok, std::string(AggFuncName(e.agg)) +
                                " is an aggregate and is not allowed here");
  }
  return ErrorAt(e.tok, "unsupported expression");
}

}  // namespace sql
}  // namespace rheem

#ifndef RHEEM_CORE_SQL_TOKENIZER_H_
#define RHEEM_CORE_SQL_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace rheem {
namespace sql {

enum class TokenKind : uint8_t {
  kIdent,   // identifier or keyword; also positional references like $0
  kNumber,  // int64 or double literal
  kString,  // string literal (raw holds the decoded value)
  kSymbol,  // operator / punctuation
  kEnd,     // end of input
};

/// One lexical token with its 1-based source position. `text` is the
/// upper-cased spelling for identifiers (keyword checks are
/// case-insensitive) and the symbol spelling otherwise; `raw` preserves the
/// original spelling (for strings: the decoded value).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::string raw;
  bool is_double = false;  // numbers: literal had a '.' or an exponent
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  int col = 1;
  std::size_t offset = 0;      // byte offset of the token's first character
  std::size_t end_offset = 0;  // byte offset one past the token's last char

  /// "line:col" for error messages.
  std::string Pos() const;

  bool IsKeyword(const char* keyword) const;
  bool IsSymbol(const char* symbol) const;
};

/// Splits `query` into tokens; the trailing kEnd token carries the position
/// just past the input. Lexical errors (unterminated string, stray byte)
/// return InvalidArgument prefixed with the 1-based "line:col" position.
///
/// The dialect's lexical shape: identifiers are [A-Za-z_][A-Za-z0-9_]*,
/// positional field references are $N, comments run from "--" to end of
/// line, string literals are single-quoted with '' escaping one quote (SQL)
/// or double-quoted with backslash escapes (the spelling expr::Pretty
/// emits, accepted so printed expressions parse back).
Result<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_TOKENIZER_H_

#include "core/sql/sql.h"

#include <utility>

#include "core/api/logical_nodes.h"
#include "core/plan/plan_printer.h"
#include "core/sql/analyzer.h"

namespace rheem {
namespace sql {

std::string SqlStatement::PlanText() const {
  if (!valid()) return "";
  std::map<int, std::string> annotations;
  for (std::size_t i = 0; i < plan_->size(); ++i) {
    const Operator* op = plan_->op(i);
    std::string note;
    auto table = table_ops_.find(op->id());
    if (table != table_ops_.end()) note = "table=" + table->second;
    if (const auto* g = dynamic_cast<const GenericLogicalOp*>(op)) {
      const std::string detail = g->Detail();
      if (!detail.empty()) {
        if (!note.empty()) note += " ";
        note += detail;
      }
    }
    if (!note.empty()) annotations[op->id()] = std::move(note);
  }
  return PlanPrinter::ToText(*plan_, annotations);
}

Result<ExecutionResult> SqlStatement::Execute(
    const ExecutionOptions& options) const {
  if (!valid()) return Status::InvalidArgument("empty SqlStatement");
  return job_->context()->Execute(*plan_, options);
}

Result<Dataset> SqlStatement::Collect(const ExecutionOptions& options) const {
  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, Execute(options));
  return std::move(result.output);
}

Result<SqlStatement> Compile(RheemContext* ctx, Catalog* catalog,
                             const std::string& query) {
  RHEEM_ASSIGN_OR_RETURN(std::shared_ptr<const SelectStmt> ast,
                         ParseSelect(query));
  auto job = std::make_shared<RheemJob>(ctx);
  RHEEM_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileSelect(job.get(), catalog, *ast));
  RHEEM_ASSIGN_OR_RETURN(Plan * plan, compiled.quanta.Seal());
  SqlStatement stmt;
  stmt.job_ = std::move(job);
  stmt.plan_ = plan;
  stmt.schema_ = std::move(compiled.schema);
  stmt.table_ops_ = std::move(compiled.table_ops);
  stmt.query_ = query;
  return stmt;
}

Result<expr::ExprPtr> ParseExpression(const std::string& text,
                                      const Schema& schema) {
  RHEEM_ASSIGN_OR_RETURN(SqlExprPtr ast, ParseExpressionAst(text));
  Scope scope;
  scope.AddTable("", schema);
  return BindExpr(*ast, scope);
}

}  // namespace sql

Result<sql::SqlStatement> RheemContext::Sql(const std::string& query) {
  sql::StorageCatalog catalog;
  return sql::Compile(this, &catalog, query);
}

Result<sql::SqlStatement> RheemContext::Sql(const std::string& query,
                                            sql::Catalog& catalog) {
  return sql::Compile(this, &catalog, query);
}

}  // namespace rheem

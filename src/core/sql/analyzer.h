#ifndef RHEEM_CORE_SQL_ANALYZER_H_
#define RHEEM_CORE_SQL_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/expr/expr.h"
#include "core/sql/ast.h"
#include "data/schema.h"

namespace rheem {
namespace sql {

/// InvalidArgument prefixed with the token's 1-based "line:col" — the one
/// error shape every stage of the frontend (lexer, parser, analyzer,
/// compiler) reports, so callers and tests can rely on positions.
inline Status ErrorAt(const Token& t, const std::string& msg) {
  return Status::InvalidArgument(t.Pos() + ": " + msg);
}

/// One table visible to name resolution: its binding name (alias, or the
/// table's own name when unaliased) and the offset of its first column in
/// the combined row a join chain produces.
struct ScopeTable {
  std::string name;
  Schema schema;
  int offset = 0;
};

/// Name-resolution scope for one SELECT level: the FROM table plus every
/// joined table, left to right. Column references resolve to absolute field
/// indices in the concatenated row.
class Scope {
 public:
  void AddTable(std::string name, Schema schema);

  int arity() const { return static_cast<int>(combined_.num_fields()); }
  const std::vector<ScopeTable>& tables() const { return tables_; }

  /// Left-to-right concatenation of the table schemas with join-style "_r"
  /// suffixing of duplicate names — the schema of the combined row.
  const Schema& combined() const { return combined_; }

  /// Resolves a kColumn or kPositional reference to (absolute field index,
  /// field type). Unknown tables/columns, ambiguous unqualified names, and
  /// out-of-range positions report the reference's token position.
  Result<std::pair<int, ValueType>> Resolve(const SqlExpr& ref) const;

 private:
  std::vector<ScopeTable> tables_;
  Schema combined_;
};

/// True when the tree contains an aggregate call at any depth.
bool ContainsAggregate(const SqlExpr& e);

/// Builds the typed node for an operator SqlExpr (kUnary NOT / kBinary)
/// over already-bound children and type-checks it, reporting failures at
/// `e.tok`. Exposed so the plan compiler can rebuild grouped select items
/// whose children bind against the post-aggregation row instead of a scope.
Result<expr::ExprPtr> BuildOperator(const SqlExpr& e, expr::ExprPtr left,
                                    expr::ExprPtr right);

/// Binds a parsed expression against `scope`, producing a typed core
/// expression (core/expr). Each operator node is type-checked as it is
/// built, so type errors carry the position of the operator that failed.
/// NULL literals and aggregate calls are rejected here — the former because
/// the expression IR is checked with non-null static types, the latter
/// because grouped items are compiled by the plan compiler, not bound
/// directly.
Result<expr::ExprPtr> BindExpr(const SqlExpr& e, const Scope& scope);

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_ANALYZER_H_

#ifndef RHEEM_CORE_SQL_SQL_H_
#define RHEEM_CORE_SQL_SQL_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/api/data_quanta.h"
#include "core/sql/catalog.h"
#include "core/sql/compiler.h"
#include "core/sql/parser.h"

namespace rheem {
namespace sql {

/// \brief A compiled SQL SELECT: a sealed logical plan plus its output
/// schema.
///
/// The statement owns the RheemJob the plan was built in, so it can be
/// executed any number of times (each execution recompiles through the
/// optimizer — or hits the context's plan cache, whose fingerprints fold
/// the compiled plan's declarative payload, never the SQL text: two
/// spellings of the same query share a cache entry, and queries differing
/// only in a constant never collide).
class SqlStatement {
 public:
  SqlStatement() = default;

  bool valid() const { return plan_ != nullptr; }
  const std::string& query() const { return query_; }
  const Schema& schema() const { return schema_; }

  /// The sealed logical plan (Collect sink set).
  const Plan& plan() const { return *plan_; }
  /// Shares ownership with the statement's job — what JobServer submissions
  /// hold on to so the plan outlives the statement handle.
  std::shared_ptr<const Plan> plan_ptr() const { return job_->plan_ptr(); }

  /// One line per logical operator in topological order, annotated with
  /// source table names and each operator's declarative payload — the
  /// dialect's EXPLAIN, and the golden-test rendering.
  std::string PlanText() const;

  /// Compile + execute on the statement's context.
  Result<ExecutionResult> Execute(const ExecutionOptions& options = {}) const;
  Result<Dataset> Collect(const ExecutionOptions& options = {}) const;

 private:
  friend Result<SqlStatement> Compile(RheemContext* ctx, Catalog* catalog,
                                      const std::string& query);

  std::shared_ptr<RheemJob> job_;
  Plan* plan_ = nullptr;  // owned by *job_
  Schema schema_;
  std::map<int, std::string> table_ops_;  // source op id -> table name
  std::string query_;
};

/// Tokenize + parse + analyze + plan `query` against `catalog`, sealing the
/// result. Every error — lexical, syntactic, unknown table/column, type
/// mismatch — is InvalidArgument prefixed with the offending token's
/// 1-based "line:col" position.
Result<SqlStatement> Compile(RheemContext* ctx, Catalog* catalog,
                             const std::string& query);

/// Parses a standalone scalar/boolean expression and binds its column and
/// $N references against `schema`. This is the inverse of expr::Pretty: for
/// any type-checked tree, Pretty's output re-parses here (given the tree's
/// field names/indices resolve in `schema`) to a tree with the identical
/// canonical encoding.
Result<expr::ExprPtr> ParseExpression(const std::string& text,
                                      const Schema& schema);

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_SQL_H_

#include "core/sql/compiler.h"

#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "core/expr/expr.h"
#include "core/operators/descriptors.h"
#include "core/sql/analyzer.h"

namespace rheem {
namespace sql {

namespace {

/// A compiled FROM/JOIN operand: its dataflow, schema, and the name column
/// references resolve against (the alias, or the table's own name).
struct FromTable {
  DataQuanta quanta;
  Schema schema;
  std::string name;
};

Result<CompiledQuery> CompileSelectImpl(RheemJob* job, Catalog* catalog,
                                        const SelectStmt& stmt,
                                        std::map<int, std::string>* table_ops);

Result<FromTable> CompileTableRef(RheemJob* job, Catalog* catalog,
                                  const TableRef& ref,
                                  std::map<int, std::string>* table_ops) {
  if (ref.subquery != nullptr) {
    RHEEM_ASSIGN_OR_RETURN(
        CompiledQuery sub,
        CompileSelectImpl(job, catalog, *ref.subquery, table_ops));
    return FromTable{std::move(sub.quanta), std::move(sub.schema),
                     ref.alias.empty() ? "_subquery" : ref.alias};
  }
  auto handle = catalog->Load(job, ref.name);
  if (!handle.ok()) return ErrorAt(ref.tok, handle.status().message());
  FromTable t{std::move(handle.ValueOrDie().quanta),
              std::move(handle.ValueOrDie().schema),
              ref.alias.empty() ? ref.name : ref.alias};
  (*table_ops)[t.quanta.node_id()] = ref.name;
  return t;
}

bool FieldsAllBelow(const expr::Expr& e, int bound) {
  std::set<int> fields;
  expr::CollectFields(e, &fields);
  return fields.empty() || *fields.rbegin() < bound;
}

bool FieldsAllAtOrAbove(const expr::Expr& e, int bound) {
  std::set<int> fields;
  expr::CollectFields(e, &fields);
  return fields.empty() || *fields.begin() >= bound;
}

bool HasFields(const expr::Expr& e) { return expr::MaxFieldIndex(e) >= 0; }

/// True when `c` is an equality whose sides partition cleanly into a
/// left-row key and a right-row key; fills the keys (right re-based to the
/// right row). `need_fields` restricts to equalities that actually read
/// both rows — the first pass, so `ON 1 = 1 AND l.k = r.k` hashes on the
/// real key instead of a constant.
bool AsEquiKeys(const expr::ExprPtr& c, int left_arity, bool need_fields,
                expr::ExprPtr* left_key, expr::ExprPtr* right_key) {
  if (c->kind != expr::ExprKind::kCompare ||
      c->compare != expr::CompareKind::kEq) {
    return false;
  }
  const expr::ExprPtr& a = c->left;
  const expr::ExprPtr& b = c->right;
  if (need_fields && (!HasFields(*a) || !HasFields(*b))) return false;
  if (FieldsAllBelow(*a, left_arity) && FieldsAllAtOrAbove(*b, left_arity)) {
    *left_key = a;
    *right_key = expr::ShiftFields(b, -left_arity);
    return true;
  }
  if (FieldsAllBelow(*b, left_arity) && FieldsAllAtOrAbove(*a, left_arity)) {
    *left_key = b;
    *right_key = expr::ShiftFields(a, -left_arity);
    return true;
  }
  return false;
}

/// The output column name of a select item: explicit alias, plain column
/// name, or the item's source text.
std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == SqlExprKind::kColumn) {
    return item.expr->name;
  }
  return item.text;
}

/// Accumulates the pre-aggregation projection and the AggSpec list while
/// grouped select items are rewritten onto the post-aggregation row
/// (column 0 = group key, column i = specs[i] over pre[i]).
struct AggState {
  const Scope* scope = nullptr;
  std::string group_canonical;
  ValueType group_type = ValueType::kNull;
  std::string group_name;
  std::vector<expr::ExprPtr> pre;
  std::vector<AggSpec> specs;
  std::map<std::string, int> interned;

  int Intern(AggKind kind, expr::ExprPtr arg) {
    std::string key =
        std::string(AggKindToString(kind)) + "|" + expr::Canonical(*arg);
    auto it = interned.find(key);
    if (it != interned.end()) return it->second;
    const int column = static_cast<int>(pre.size());
    pre.push_back(std::move(arg));
    specs.push_back(AggSpec{column, kind});
    interned.emplace(std::move(key), column);
    return column;
  }
};

Result<expr::ExprPtr> RewriteGrouped(const SqlExpr& e, AggState* st) {
  if (e.kind == SqlExprKind::kAggregate) {
    if (e.agg == AggFunc::kCount) {
      if (!e.agg_star) {
        return ErrorAt(e.tok,
                       "COUNT over an expression is not supported (the "
                       "expression IR has no null-skipping); use COUNT(*)");
      }
      // COUNT(*) is SUM of the constant 1 per row.
      const int col = st->Intern(AggKind::kSum, expr::Lit(int64_t{1}));
      return expr::Field(col, ValueType::kInt64);
    }
    if (e.left == nullptr || ContainsAggregate(*e.left)) {
      return ErrorAt(e.tok, "nested aggregates are not supported");
    }
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr arg, BindExpr(*e.left, *st->scope));
    const ValueType arg_type = expr::TypeCheck(*arg).ValueOrDie();
    if ((e.agg == AggFunc::kSum || e.agg == AggFunc::kAvg) &&
        arg_type != ValueType::kInt64 && arg_type != ValueType::kDouble) {
      return ErrorAt(e.tok, std::string(AggFuncName(e.agg)) +
                                " requires a numeric argument, got " +
                                ValueTypeToString(arg_type));
    }
    if (e.agg == AggFunc::kAvg) {
      // AVG = SUM * 1.0 / COUNT: the multiplication widens an integer sum
      // to double, giving SQL's fractional average. Groups are never empty,
      // so the division cannot hit zero.
      const int sum_col = st->Intern(AggKind::kSum, arg);
      const int cnt_col = st->Intern(AggKind::kSum, expr::Lit(int64_t{1}));
      return expr::Div(
          expr::Mul(expr::Field(sum_col, arg_type), expr::Lit(1.0)),
          expr::Field(cnt_col, ValueType::kInt64));
    }
    const AggKind kind = e.agg == AggFunc::kSum   ? AggKind::kSum
                         : e.agg == AggFunc::kMin ? AggKind::kMin
                                                  : AggKind::kMax;
    const int col = st->Intern(kind, arg);
    return expr::Field(col, arg_type);
  }
  if (!ContainsAggregate(e)) {
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr bound, BindExpr(e, *st->scope));
    if (expr::Canonical(*bound) == st->group_canonical) {
      return expr::Field(0, st->group_type, st->group_name);
    }
    if (expr::MaxFieldIndex(*bound) < 0) return bound;  // constant subtree
    if (e.kind != SqlExprKind::kBinary && e.kind != SqlExprKind::kUnary) {
      return ErrorAt(e.tok, "'" + e.tok.raw +
                                "' must appear in GROUP BY or inside an "
                                "aggregate");
    }
    // Fall through: one of this operator's children may still match the
    // group expression (e.g. `k + 1` grouped by `k`).
  }
  if (e.kind == SqlExprKind::kBinary) {
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr l, RewriteGrouped(*e.left, st));
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr r, RewriteGrouped(*e.right, st));
    return BuildOperator(e, std::move(l), std::move(r));
  }
  if (e.kind == SqlExprKind::kUnary) {
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr l, RewriteGrouped(*e.left, st));
    return BuildOperator(e, std::move(l), nullptr);
  }
  return ErrorAt(e.tok, "'" + e.tok.raw +
                            "' must appear in GROUP BY or inside an "
                            "aggregate");
}

Result<CompiledQuery> CompileSelectImpl(RheemJob* job, Catalog* catalog,
                                        const SelectStmt& stmt,
                                        std::map<int, std::string>* table_ops) {
  RHEEM_ASSIGN_OR_RETURN(FromTable from,
                         CompileTableRef(job, catalog, stmt.from, table_ops));
  Scope scope;
  scope.AddTable(from.name, from.schema);
  DataQuanta q = from.quanta;

  for (const JoinClause& jc : stmt.joins) {
    RHEEM_ASSIGN_OR_RETURN(
        FromTable right, CompileTableRef(job, catalog, jc.table, table_ops));
    const int left_arity = scope.arity();
    scope.AddTable(right.name, right.schema);
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr on, BindExpr(*jc.on, scope));
    const ValueType on_type = expr::TypeCheck(*on).ValueOrDie();
    if (on_type != ValueType::kBool) {
      return ErrorAt(jc.on_tok, std::string("ON condition must be boolean, "
                                            "got ") +
                                    ValueTypeToString(on_type));
    }
    const std::vector<expr::ExprPtr> conjuncts = expr::SplitConjuncts(on);
    int equi = -1;
    expr::ExprPtr left_key, right_key;
    for (const bool need_fields : {true, false}) {
      for (std::size_t i = 0; i < conjuncts.size() && equi < 0; ++i) {
        if (AsEquiKeys(conjuncts[i], left_arity, need_fields, &left_key,
                       &right_key)) {
          equi = static_cast<int>(i);
        }
      }
      if (equi >= 0) break;
    }
    if (equi >= 0) {
      q = q.Join(right.quanta, left_key, right_key);
      std::vector<expr::ExprPtr> residual;
      for (std::size_t i = 0; i < conjuncts.size(); ++i) {
        if (static_cast<int>(i) != equi) residual.push_back(conjuncts[i]);
      }
      if (!residual.empty()) q = q.Filter(expr::AndAll(residual));
    } else {
      q = q.ThetaJoin(right.quanta, on);
    }
  }

  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return ErrorAt(stmt.where->tok, "aggregates are not allowed in WHERE");
    }
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr pred, BindExpr(*stmt.where, scope));
    const ValueType pred_type = expr::TypeCheck(*pred).ValueOrDie();
    if (pred_type != ValueType::kBool) {
      return ErrorAt(stmt.where->tok,
                     std::string("WHERE condition must be boolean, got ") +
                         ValueTypeToString(pred_type));
    }
    q = q.Filter(std::move(pred));
  }

  const bool star = stmt.items.size() == 1 && stmt.items[0].is_star;
  bool has_aggs = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (!item.is_star && ContainsAggregate(*item.expr)) has_aggs = true;
  }
  if (star && has_aggs) {
    return ErrorAt(stmt.items[0].tok,
                   "SELECT * cannot be combined with GROUP BY or aggregates");
  }

  Schema out_schema;
  if (star) {
    out_schema = scope.combined();
  } else if (!has_aggs) {
    std::vector<expr::ExprPtr> exprs;
    std::vector<rheem::Field> fields;
    for (const SelectItem& item : stmt.items) {
      RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr bound, BindExpr(*item.expr, scope));
      fields.push_back(
          rheem::Field{ItemName(item), expr::TypeCheck(*bound).ValueOrDie()});
      exprs.push_back(std::move(bound));
    }
    // A projection that reads every column in place is the identity —
    // renaming lives in the schema, so no Map node is needed.
    bool identity = exprs.size() == static_cast<std::size_t>(scope.arity());
    for (std::size_t i = 0; identity && i < exprs.size(); ++i) {
      identity = exprs[i]->kind == expr::ExprKind::kField &&
                 exprs[i]->field_index == static_cast<int>(i);
    }
    if (!identity) q = q.Map(std::move(exprs));
    out_schema = Schema(std::move(fields));
  } else {
    if (stmt.group_by.size() > 1) {
      return ErrorAt(stmt.group_by[1]->tok,
                     "only a single GROUP BY expression is supported");
    }
    AggState st;
    st.scope = &scope;
    expr::ExprPtr group;
    if (stmt.group_by.empty()) {
      // Global aggregation: group everything under the constant key 1 (the
      // post-projection drops it). Empty input yields zero rows, not one.
      group = expr::Lit(int64_t{1});
      st.group_type = ValueType::kInt64;
    } else {
      const SqlExpr& ge = *stmt.group_by[0];
      if (ContainsAggregate(ge)) {
        return ErrorAt(ge.tok, "aggregates are not allowed in GROUP BY");
      }
      RHEEM_ASSIGN_OR_RETURN(group, BindExpr(ge, scope));
      st.group_type = expr::TypeCheck(*group).ValueOrDie();
      if (ge.kind == SqlExprKind::kColumn) st.group_name = ge.name;
    }
    st.group_canonical = expr::Canonical(*group);
    st.pre.push_back(group);
    st.specs.push_back(AggSpec{0, AggKind::kFirst});
    std::vector<expr::ExprPtr> post;
    std::vector<rheem::Field> fields;
    for (const SelectItem& item : stmt.items) {
      RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr rewritten,
                             RewriteGrouped(*item.expr, &st));
      auto type = expr::TypeCheck(*rewritten);
      if (!type.ok()) return ErrorAt(item.tok, type.status().message());
      fields.push_back(rheem::Field{ItemName(item), type.ValueOrDie()});
      post.push_back(std::move(rewritten));
    }
    q = q.Map(st.pre)
            .ReduceByKey(expr::Field(0, st.group_type), st.specs)
            .Map(std::move(post));
    out_schema = Schema(std::move(fields));
  }

  if (stmt.distinct) q = q.Distinct();

  if (stmt.order_by != nullptr) {
    if (ContainsAggregate(*stmt.order_by)) {
      return ErrorAt(stmt.order_tok,
                     "aggregates are not allowed in ORDER BY; select the "
                     "aggregate and order by its output name");
    }
    // ORDER BY addresses the statement's output row, so aliases and
    // aggregate output names resolve here.
    Scope out_scope;
    out_scope.AddTable("", out_schema);
    RHEEM_ASSIGN_OR_RETURN(expr::ExprPtr key,
                           BindExpr(*stmt.order_by, out_scope));
    const int64_t k = stmt.limit >= 0 ? stmt.limit
                                      : std::numeric_limits<int64_t>::max();
    q = q.TopK(k, std::move(key), stmt.order_ascending);
  } else if (stmt.limit >= 0) {
    return ErrorAt(stmt.limit_tok,
                   "LIMIT requires ORDER BY: which rows survive would "
                   "otherwise be nondeterministic");
  }

  CompiledQuery out;
  out.quanta = q;
  out.schema = std::move(out_schema);
  return out;
}

}  // namespace

Result<CompiledQuery> CompileSelect(RheemJob* job, Catalog* catalog,
                                    const SelectStmt& stmt) {
  std::map<int, std::string> table_ops;
  RHEEM_ASSIGN_OR_RETURN(CompiledQuery out,
                         CompileSelectImpl(job, catalog, stmt, &table_ops));
  out.table_ops = std::move(table_ops);
  return out;
}

}  // namespace sql
}  // namespace rheem

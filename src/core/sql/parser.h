#ifndef RHEEM_CORE_SQL_PARSER_H_
#define RHEEM_CORE_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/sql/ast.h"

namespace rheem {
namespace sql {

/// Parses one SELECT statement (the whole input). Errors are
/// InvalidArgument prefixed with the offending token's 1-based "line:col".
Result<std::shared_ptr<const SelectStmt>> ParseSelect(const std::string& query);

/// Parses a standalone scalar/boolean expression (the whole input) — the
/// entry point for re-parsing expr::Pretty output and for tests that bind
/// expressions directly.
Result<SqlExprPtr> ParseExpressionAst(const std::string& text);

}  // namespace sql
}  // namespace rheem

#endif  // RHEEM_CORE_SQL_PARSER_H_

#include "core/service/net/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/sql/sql.h"
#include "data/serialization.h"

namespace rheem {
namespace net {

namespace {

/// Splits "token=tenant,token2=tenant2" into a map. Malformed entries
/// (missing '=', empty token) are skipped with a warning — a typo in the
/// config must not silently open the server.
std::map<std::string, std::string> ParseAuthTokens(const std::string& spec) {
  std::map<std::string, std::string> tokens;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == 0 || eq == std::string::npos) {
      RHEEM_LOG(Warning) << "ignoring malformed service.net.auth_tokens "
                         << "entry (want token=tenant)";
      continue;
    }
    tokens[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
  return tokens;
}

void CountFrame(FrameType type) {
  auto& registry = MetricsRegistry::Global();
  if (!registry.enabled()) return;
  registry.counter(std::string("net.frames.") + FrameTypeToString(type))
      ->Increment();
}

}  // namespace

NetServer::NetServer(RheemContext* ctx, sql::Catalog* catalog)
    : ctx_(ctx),
      catalog_(catalog),
      max_frame_bytes_(static_cast<uint32_t>(std::max<int64_t>(
          1024, ctx->config()
                    .GetInt("service.net.max_frame_bytes",
                            kDefaultMaxFrameBytes)
                    .ValueOr(kDefaultMaxFrameBytes)))),
      page_bytes_(static_cast<uint32_t>(std::max<int64_t>(
          64,
          ctx->config().GetInt("service.net.page_bytes", 64 * 1024)
              .ValueOr(64 * 1024)))),
      max_sessions_(static_cast<std::size_t>(std::max<int64_t>(
          1,
          ctx->config().GetInt("service.net.max_sessions", 256).ValueOr(256)))),
      auth_tokens_(ParseAuthTokens(
          ctx->config().GetString("service.net.auth_tokens", "").ValueOr(""))),
      tenant_max_active_jobs_(std::max<int64_t>(
          0, ctx->config()
                 .GetInt("service.net.tenant_max_active_jobs", 64)
                 .ValueOr(64))),
      drain_grace_ms_(std::max<int64_t>(
          0,
          ctx->config().GetInt("service.net.drain_grace_ms", 200).ValueOr(200))) {
  // Pages must fit inside one frame with room for the PAGE envelope.
  if (page_bytes_ + 1024 > max_frame_bytes_) {
    page_bytes_ = max_frame_bytes_ - 1024;
  }
}

NetServer::~NetServer() { Shutdown(/*drain=*/true); }

Result<int> NetServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::AlreadyExists("NetServer already started");

  const std::string host =
      ctx_->config().GetString("service.net.host", "127.0.0.1")
          .ValueOr("127.0.0.1");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad service.net.host: " + host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind(" + host + ":" + std::to_string(port) +
                           ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("listen() failed: ") +
                           std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("getsockname() failed: ") +
                           std::strerror(err));
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  started_ = true;
  stopping_ = false;
  acceptor_ = std::thread([this]() { AcceptLoop(); });
  return port_;
}

int NetServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

void NetServer::AcceptLoop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      // Transient accept failure (e.g. EMFILE): keep serving.
      continue;
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    if (sessions_.size() >= max_sessions_) {
      // Connection-level backpressure, mirroring the JobServer's admission
      // refusals: tell the peer why, then hang up.
      std::string payload;
      ErrorFrame::FromStatus(
          Status::ResourceExhausted(
              "session limit reached (service.net.max_sessions=" +
              std::to_string(max_sessions_) + ")"))
          .Encode(&payload);
      (void)WriteFrame(fd, FrameType::kError, payload, max_frame_bytes_);
      ::close(fd);
      CountIfEnabled(MetricsRegistry::Global().counter("net.sessions_refused"),
                     1);
      continue;
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->fd = fd;
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    session->peer = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
    Session* raw = session.get();
    ++sessions_opened_;
    CountIfEnabled(MetricsRegistry::Global().counter("net.sessions_opened"), 1);
    sessions_[session->id] = std::move(session);
    raw->thread = std::thread([this, raw]() { SessionLoop(raw); });
  }
}

void NetServer::SessionLoop(Session* session) {
  auto& registry = MetricsRegistry::Global();
  for (;;) {
    auto frame = ReadFrame(session->fd, max_frame_bytes_);
    if (!frame.ok()) {
      // EOF or a frame we refuse to buffer; either way the stream is over.
      if (frame.status().message() != "connection closed") {
        std::lock_guard<std::mutex> lock(mu_);
        ++protocol_errors_;
        CountIfEnabled(registry.counter("net.protocol_errors"), 1);
      }
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++frames_received_;
    }
    CountIfEnabled(registry.counter("net.frames_received"), 1);
    CountFrame(frame->type);
    if (frame->type == FrameType::kBye) {
      if (frame->payload.empty()) (void)SendReply(session, FrameType::kOk, "");
      break;  // clean close
    }
    Status st = HandleFrame(session, *frame);
    // Application-level failures (quota, bad SQL, unknown job) were
    // reported as ERROR frames and the connection stays usable; only a
    // protocol violation poisons the stream.
    if (st.IsIoError()) break;
  }

  // Teardown: a vanished client cannot fetch results, so its unfinished
  // jobs are cancelled (a drain-shutdown waited for them to finish *before*
  // closing the socket, making this a no-op there).
  for (auto& [id, entry] : session->jobs) {
    if (!entry.handle.done()) entry.handle.Cancel();
  }
  ::close(session->fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session->id);
    // Move our own thread handle out before the Session object dies; the
    // Shutdown path joins it from finished_.
    finished_.push_back(std::move(session->thread));
    sessions_.erase(it);
    ++sessions_closed_;
  }
  CountIfEnabled(registry.counter("net.sessions_closed"), 1);
  cv_.notify_all();
}

Status NetServer::HandleFrame(Session* session, const Frame& frame) {
  TraceSpan span(std::string("frame:") + FrameTypeToString(frame.type), "net");
  Stopwatch watch;
  Status st;
  switch (frame.type) {
    case FrameType::kHello:
      st = HandleHello(session, frame.payload);
      break;
    case FrameType::kSubmit:
    case FrameType::kPoll:
    case FrameType::kCancel:
    case FrameType::kFetch:
      if (!session->authed) {
        st = Status::IoError("frame before HELLO");
        break;
      }
      if (frame.type == FrameType::kSubmit) {
        st = HandleSubmit(session, frame.payload);
      } else if (frame.type == FrameType::kPoll) {
        st = HandlePoll(session, frame.payload);
      } else if (frame.type == FrameType::kCancel) {
        st = HandleCancel(session, frame.payload);
      } else {
        st = HandleFetch(session, frame.payload);
      }
      break;
    default:
      // Server-to-client frame types arriving at the server are a protocol
      // violation.
      st = Status::IoError("unexpected frame type " +
                           std::string(FrameTypeToString(frame.type)));
      break;
  }
  if (!st.ok()) {
    if (st.IsIoError()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++protocol_errors_;
      }
      CountIfEnabled(MetricsRegistry::Global().counter("net.protocol_errors"),
                     1);
    }
    // Best effort even on a poisoned stream: tell the peer why before the
    // caller closes it.
    (void)SendError(session, st);
  }
  auto& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.histogram("net.request_us", DefaultLatencyBoundsMicros())
        ->Observe(static_cast<int64_t>(watch.ElapsedMicros()));
  }
  span.AddTag("ok", st.ok() ? "true" : "false");
  return st;
}

Status NetServer::HandleHello(Session* session, const std::string& payload) {
  if (session->authed) return Status::IoError("duplicate HELLO");
  auto hello = HelloFrame::Decode(payload);
  if (!hello.ok()) return hello.status();

  if (hello->version != kProtocolVersion) {
    return Status::Unsupported("protocol version " +
                               std::to_string(hello->version) +
                               " not supported (server speaks " +
                               std::to_string(kProtocolVersion) + ")");
  }
  std::string tenant;
  if (auth_tokens_.empty()) {
    // Open access: the claimed tenant is accepted as-is (quotas still
    // apply per tenant).
    tenant = hello->tenant.empty() ? "default" : hello->tenant;
  } else {
    auto it = auth_tokens_.find(hello->auth_token);
    if (it == auth_tokens_.end() ||
        (!hello->tenant.empty() && hello->tenant != it->second)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++auth_failures_;
      }
      CountIfEnabled(MetricsRegistry::Global().counter("net.auth_failures"), 1);
      // Deliberately uniform: no hint whether the token or tenant was wrong.
      return Status::IoError("authentication failed");
    }
    tenant = it->second;
  }
  session->authed = true;
  session->tenant = tenant;

  HelloOkFrame reply;
  reply.session_id = session->id;
  reply.tenant = tenant;
  std::string out;
  reply.Encode(&out);
  RHEEM_RETURN_IF_ERROR(SendReply(session, FrameType::kHelloOk, out));
  return Status::OK();
}

Status NetServer::CheckTenantQuota(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return Status::Cancelled("server is draining");
  auto& handles = tenant_jobs_[tenant];
  handles.erase(std::remove_if(handles.begin(), handles.end(),
                               [](const JobHandle& h) { return h.done(); }),
                handles.end());
  if (static_cast<int64_t>(handles.size()) >= tenant_max_active_jobs_) {
    ++quota_rejections_;
    CountIfEnabled(MetricsRegistry::Global().counter("net.quota_rejections"),
                   1);
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' has " + std::to_string(handles.size()) +
        " active jobs (service.net.tenant_max_active_jobs=" +
        std::to_string(tenant_max_active_jobs_) + "); retry later");
  }
  return Status::OK();
}

Status NetServer::HandleSubmit(Session* session, const std::string& payload) {
  auto submit = SubmitFrame::Decode(payload);
  if (!submit.ok()) return submit.status();

  // Admission before work: quota refusals must not pay a SQL compile.
  if (Status st = CheckTenantQuota(session->tenant); !st.ok()) {
    return st;
  }

  auto compiled = sql::Compile(ctx_, catalog_, submit->text);
  if (!compiled.ok()) return compiled.status();
  sql::SqlStatement stmt = std::move(compiled).ValueOrDie();

  JobOptions options;
  options.deadline = std::chrono::milliseconds(submit->deadline_ms);
  options.use_plan_cache = submit->use_plan_cache;
  options.use_result_cache = submit->use_result_cache;
  // plan_ptr() shares ownership with the statement's job: the JobServer
  // keeps plan and job alive until the record dies, exactly like SubmitSql.
  auto handle = ctx_->job_server().Submit(stmt.plan_ptr(), options);
  if (!handle.ok()) return handle.status();  // backpressure surfaces here

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Raced a drain: the drain snapshot won't wait for this job, so it
      // must not enter the session's retained set.
      handle->Cancel();
      return Status::Cancelled("server is draining");
    }
    tenant_jobs_[session->tenant].push_back(*handle);
    ++submits_;
  }
  CountIfEnabled(MetricsRegistry::Global().counter("net.submits"), 1);

  JobEntry entry;
  entry.handle = *handle;
  entry.schema = stmt.schema();
  session->jobs[handle->id()] = std::move(entry);

  SubmitOkFrame reply;
  reply.job_id = handle->id();
  reply.schema = stmt.schema();
  std::string out;
  reply.Encode(&out);
  return SendReply(session, FrameType::kSubmitOk, out);
}

void NetServer::MaterializeResult(JobEntry* entry) {
  if (entry->materialized) return;
  auto result = entry->handle.Wait();  // done: returns without blocking
  entry->materialized = true;
  if (!result.ok()) {
    entry->result_status = result.status();
    return;
  }
  entry->result = std::move(result).ValueOrDie().output;

  // Page table: whole rows packed up to page_bytes, at least one row per
  // page so a single oversized row still ships (inside one frame).
  entry->page_starts.push_back(0);
  int64_t page_fill = 0;
  for (std::size_t i = 0; i < entry->result.size(); ++i) {
    const int64_t row_bytes = Serializer::EncodedSize(entry->result.at(i));
    if (page_fill > 0 && page_fill + row_bytes > page_bytes_) {
      entry->page_starts.push_back(i);
      page_fill = 0;
    }
    page_fill += row_bytes;
  }
  entry->page_starts.push_back(entry->result.size());
}

Status NetServer::HandlePoll(Session* session, const std::string& payload) {
  auto poll = JobIdFrame::Decode(payload);
  if (!poll.ok()) return poll.status();
  auto it = session->jobs.find(poll->job_id);
  if (it == session->jobs.end()) {
    return Status::NotFound("unknown job id " + std::to_string(poll->job_id));
  }
  JobEntry& entry = it->second;

  StatusFrame reply;
  reply.job_id = poll->job_id;
  reply.done = entry.handle.done();
  reply.state = static_cast<uint8_t>(entry.handle.state());
  if (reply.done) {
    MaterializeResult(&entry);
    if (entry.result_status.ok()) {
      reply.rows = entry.result.size();
      reply.pages = entry.page_starts.size() - 1;
    } else {
      reply.code = static_cast<uint8_t>(entry.result_status.code());
      reply.message = entry.result_status.message();
      if (reply.message.size() > kMaxMessageBytes) {
        reply.message.resize(kMaxMessageBytes);
      }
    }
  }
  std::string out;
  reply.Encode(&out);
  return SendReply(session, FrameType::kStatus, out);
}

Status NetServer::HandleCancel(Session* session, const std::string& payload) {
  auto cancel = JobIdFrame::Decode(payload);
  if (!cancel.ok()) return cancel.status();
  auto it = session->jobs.find(cancel->job_id);
  if (it == session->jobs.end()) {
    return Status::NotFound("unknown job id " + std::to_string(cancel->job_id));
  }
  it->second.handle.Cancel();
  return SendReply(session, FrameType::kOk, "");
}

Status NetServer::HandleFetch(Session* session, const std::string& payload) {
  auto fetch = FetchFrame::Decode(payload);
  if (!fetch.ok()) return fetch.status();
  auto it = session->jobs.find(fetch->job_id);
  if (it == session->jobs.end()) {
    return Status::NotFound("unknown job id " + std::to_string(fetch->job_id));
  }
  JobEntry& entry = it->second;
  if (!entry.handle.done()) {
    return Status::InvalidArgument("job " + std::to_string(fetch->job_id) +
                                   " still running; poll until done");
  }
  MaterializeResult(&entry);
  if (!entry.result_status.ok()) return entry.result_status;

  const uint64_t pages = entry.page_starts.size() - 1;
  if (fetch->page >= pages) {
    return Status::OutOfRange("page " + std::to_string(fetch->page) +
                              " out of range (job has " +
                              std::to_string(pages) + " pages)");
  }
  const std::size_t begin = entry.page_starts[fetch->page];
  const std::size_t end = entry.page_starts[fetch->page + 1];

  // Only this page's rows are copied and encoded: per-request memory is
  // bounded by page_bytes no matter how large the full result is.
  std::vector<Record> rows(entry.result.records().begin() + begin,
                           entry.result.records().begin() + end);
  PageFrame reply;
  reply.job_id = fetch->job_id;
  reply.page = fetch->page;
  reply.last = fetch->page + 1 == pages;
  reply.dataset_bytes = Serializer::EncodeDataset(Dataset(std::move(rows)));

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pages_served_;
  }
  auto& registry = MetricsRegistry::Global();
  CountIfEnabled(registry.counter("net.pages_served"), 1);
  CountIfEnabled(registry.counter("net.rows_streamed"),
                 static_cast<int64_t>(end - begin));

  std::string out;
  reply.Encode(&out);
  return SendReply(session, FrameType::kPage, out);
}

Status NetServer::SendReply(Session* session, FrameType type,
                            const std::string& payload) {
  Status st = WriteFrame(session->fd, type, payload, max_frame_bytes_);
  if (st.ok()) {
    CountIfEnabled(MetricsRegistry::Global().counter("net.bytes_written"),
                   static_cast<int64_t>(payload.size() + 5));
  }
  return st;
}

Status NetServer::SendError(Session* session, const Status& status) {
  std::string payload;
  ErrorFrame::FromStatus(status).Encode(&payload);
  return SendReply(session, FrameType::kError, payload);
}

void NetServer::Shutdown(bool drain) {
  std::vector<JobHandle> to_drain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    // Wake the acceptor: shutdown() interrupts a blocked accept() where a
    // bare close() may not.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (drain) {
      for (auto& [tenant, handles] : tenant_jobs_) {
        to_drain.insert(to_drain.end(), handles.begin(), handles.end());
      }
    } else {
      for (auto& [tenant, handles] : tenant_jobs_) {
        for (JobHandle& h : handles) h.Cancel();
      }
    }
  }
  if (acceptor_.joinable()) acceptor_.join();

  if (drain) {
    // Phase 1, jobs: every session-submitted job resolves (new submissions
    // are already refused), mirroring JobServer::Shutdown(drain=true).
    for (JobHandle& h : to_drain) (void)h.Wait();
    // Phase 2, sessions: clients get a grace window to fetch results and
    // say BYE before the sockets go away.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(drain_grace_ms_),
                 [this]() { return sessions_.empty(); });
  }

  // Force-close whatever is left; session threads unblock and exit.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      ::shutdown(session->fd, SHUT_RDWR);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return sessions_.empty(); });
  }

  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    started_ = false;
    port_ = 0;
    tenant_jobs_.clear();
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  NetServerStats s;
  s.sessions_opened = sessions_opened_;
  s.sessions_closed = sessions_closed_;
  s.sessions_active = sessions_.size();
  s.frames_received = frames_received_;
  s.submits = submits_;
  s.auth_failures = auth_failures_;
  s.quota_rejections = quota_rejections_;
  s.protocol_errors = protocol_errors_;
  s.pages_served = pages_served_;
  return s;
}

}  // namespace net
}  // namespace rheem

#include "core/service/net/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/serialization.h"

namespace rheem {
namespace net {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, int port,
                       const std::string& auth_token,
                       const std::string& tenant) {
  if (fd_ >= 0) return Status::AlreadyExists("client already connected");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect(" + host + ":" + std::to_string(port) +
                           ") failed: " + std::strerror(err));
  }
  fd_ = fd;

  HelloFrame hello;
  hello.auth_token = auth_token;
  hello.tenant = tenant;
  std::string payload;
  hello.Encode(&payload);
  auto reply = RoundTrip(FrameType::kHello, payload);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply->type != FrameType::kHelloOk) {
    Close();
    return Status::IoError("expected HELLO_OK, got " +
                           std::string(FrameTypeToString(reply->type)));
  }
  auto ok = HelloOkFrame::Decode(reply->payload);
  if (!ok.ok()) {
    Close();
    return ok.status();
  }
  session_id_ = ok->session_id;
  tenant_ = ok->tenant;
  return Status::OK();
}

Result<uint64_t> Client::SubmitSql(const std::string& query,
                                   int64_t deadline_ms, Schema* schema,
                                   bool use_plan_cache, bool use_result_cache) {
  SubmitFrame submit;
  submit.deadline_ms = deadline_ms;
  submit.use_plan_cache = use_plan_cache;
  submit.use_result_cache = use_result_cache;
  submit.text = query;
  std::string payload;
  submit.Encode(&payload);
  RHEEM_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(FrameType::kSubmit, payload));
  if (reply.type != FrameType::kSubmitOk) {
    return Status::IoError("expected SUBMIT_OK, got " +
                           std::string(FrameTypeToString(reply.type)));
  }
  RHEEM_ASSIGN_OR_RETURN(SubmitOkFrame ok, SubmitOkFrame::Decode(reply.payload));
  if (schema != nullptr) *schema = ok.schema;
  return ok.job_id;
}

Result<StatusFrame> Client::Poll(uint64_t job_id) {
  JobIdFrame poll;
  poll.job_id = job_id;
  std::string payload;
  poll.Encode(&payload);
  RHEEM_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kPoll, payload));
  if (reply.type != FrameType::kStatus) {
    return Status::IoError("expected STATUS, got " +
                           std::string(FrameTypeToString(reply.type)));
  }
  return StatusFrame::Decode(reply.payload);
}

Result<StatusFrame> Client::WaitDone(uint64_t job_id) {
  // Adaptive backoff: tight at first (most jobs are short), easing to 10ms
  // so a long job does not busy-spin the connection.
  int64_t sleep_us = 100;
  for (;;) {
    RHEEM_ASSIGN_OR_RETURN(StatusFrame status, Poll(job_id));
    if (status.done) return status;
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    sleep_us = std::min<int64_t>(sleep_us * 2, 10000);
  }
}

Status Client::Cancel(uint64_t job_id) {
  JobIdFrame cancel;
  cancel.job_id = job_id;
  std::string payload;
  cancel.Encode(&payload);
  RHEEM_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kCancel, payload));
  if (reply.type != FrameType::kOk) {
    return Status::IoError("expected OK, got " +
                           std::string(FrameTypeToString(reply.type)));
  }
  return Status::OK();
}

Result<Dataset> Client::FetchPage(uint64_t job_id, uint64_t page, bool* last) {
  FetchFrame fetch;
  fetch.job_id = job_id;
  fetch.page = page;
  std::string payload;
  fetch.Encode(&payload);
  RHEEM_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kFetch, payload));
  if (reply.type != FrameType::kPage) {
    return Status::IoError("expected PAGE, got " +
                           std::string(FrameTypeToString(reply.type)));
  }
  RHEEM_ASSIGN_OR_RETURN(
      PageFrame pf, PageFrame::Decode(reply.payload, max_frame_bytes_));
  if (pf.job_id != job_id || pf.page != page) {
    return Status::IoError("PAGE reply for wrong job/page");
  }
  if (last != nullptr) *last = pf.last;
  return Serializer::DecodeDataset(pf.dataset_bytes);
}

Result<Dataset> Client::FetchAll(uint64_t job_id) {
  RHEEM_ASSIGN_OR_RETURN(StatusFrame status, WaitDone(job_id));
  if (status.code != 0) {
    return Status(static_cast<StatusCode>(status.code), status.message);
  }
  std::vector<Record> rows;
  bool last = false;
  for (uint64_t page = 0; !last; ++page) {
    RHEEM_ASSIGN_OR_RETURN(Dataset chunk, FetchPage(job_id, page, &last));
    for (auto& r : chunk.mutable_records()) rows.push_back(std::move(r));
  }
  return Dataset(std::move(rows));
}

Status Client::Bye() {
  if (fd_ < 0) return Status::OK();
  auto reply = RoundTrip(FrameType::kBye, "");
  Close();
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kOk) {
    return Status::IoError("expected OK, got " +
                           std::string(FrameTypeToString(reply->type)));
  }
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_id_ = 0;
  tenant_.clear();
}

Result<Frame> Client::RoundTrip(FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::IoError("client not connected");
  Status st = WriteFrame(fd_, type, payload, max_frame_bytes_);
  if (!st.ok()) {
    Close();
    return st;
  }
  auto reply = ReadFrame(fd_, max_frame_bytes_);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply->type == FrameType::kError) {
    // Application-level failure: the connection stays usable.
    RHEEM_ASSIGN_OR_RETURN(ErrorFrame err, ErrorFrame::Decode(reply->payload));
    return err.ToStatus();
  }
  return reply;
}

}  // namespace net
}  // namespace rheem

#ifndef RHEEM_CORE_SERVICE_NET_SERVER_H_
#define RHEEM_CORE_SERVICE_NET_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/api/context.h"
#include "core/service/job_server.h"
#include "core/service/net/wire.h"

namespace rheem {

namespace sql {
class Catalog;
}  // namespace sql

namespace net {

/// One consistent snapshot of a NetServer's life so far.
struct NetServerStats {
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  std::size_t sessions_active = 0;
  int64_t frames_received = 0;
  int64_t submits = 0;
  int64_t auth_failures = 0;
  int64_t quota_rejections = 0;
  int64_t protocol_errors = 0;
  int64_t pages_served = 0;
};

/// \brief The network face of the job service: a TCP server speaking the
/// length-prefixed binary protocol of core/service/net/wire.h, turning the
/// in-process JobServer into something many applications can share — the
/// paper's one-engine-for-many-apps deployment made reachable over a socket.
///
/// Thread model: one acceptor thread plus one blocking thread per
/// connection (a session). A session must HELLO first — the auth token
/// resolves to a tenant — then SUBMITs SQL (compiled by the PR-8 frontend
/// and admitted through the context's JobServer), POLLs, CANCELs, and
/// FETCHes results page by page: each PAGE re-encodes only that page's rows
/// through Serializer, so server memory per request stays bounded by
/// `service.net.page_bytes` regardless of result size.
///
/// Admission layers, outermost first:
///   1. `service.net.max_sessions` caps concurrent connections;
///   2. per-tenant quota `service.net.tenant_max_active_jobs` caps a
///      tenant's not-yet-finished jobs across all its sessions;
///   3. the JobServer's own queue-depth backpressure (ResourceExhausted)
///      applies as for in-process submissions.
///
/// Shutdown(drain=true) mirrors JobServer::Shutdown: stop accepting, reject
/// new SUBMITs, wait for every session-submitted job to resolve, give
/// sessions `service.net.drain_grace_ms` to fetch and say BYE, then close.
/// drain=false cancels session jobs and closes immediately.
///
/// Every frame type is counted (`net.frames.<type>`) and traced
/// (span "frame:<type>", category "net"); protocol violations — malformed
/// payloads, oversized frames, unknown types — are counted in
/// `net.protocol_errors` and poison the connection (ERROR frame, then
/// close), never the server.
///
/// Config keys (read from the context's Config at construction):
///   service.net.host               (string, default "127.0.0.1")
///   service.net.max_frame_bytes    (int, default 4 MiB)
///   service.net.page_bytes         (int, default 64 KiB) FETCH page target
///   service.net.max_sessions       (int, default 256)
///   service.net.auth_tokens        (string, default "" = open access)
///       comma list of "token=tenant" pairs; non-empty makes HELLO require
///       a listed token, and the session runs as that token's tenant
///   service.net.tenant_max_active_jobs (int, default 64) 0 = reject all
///   service.net.drain_grace_ms     (int, default 200)
class NetServer {
 public:
  /// `ctx` supplies the config and the JobServer; `catalog` resolves table
  /// names in submitted SQL. Both are borrowed and must outlive Shutdown().
  NetServer(RheemContext* ctx, sql::Catalog* catalog);
  ~NetServer();  // Shutdown(/*drain=*/true)

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds `service.net.host`:`port` (0 = ephemeral), starts the acceptor
  /// and returns the bound port. AlreadyExists when called twice.
  Result<int> Start(int port = 0);

  /// The bound port; 0 before Start().
  int port() const;

  /// Stops accepting and tears sessions down (see class comment). Safe to
  /// call twice; the destructor drains.
  void Shutdown(bool drain = true);

  NetServerStats stats() const;

 private:
  /// Paging + lifetime state for one job retained by a session. The handle
  /// keeps the JobServer record (and through it the compiled statement)
  /// alive until the session drops it.
  struct JobEntry {
    JobHandle handle;
    Schema schema;
    bool materialized = false;
    Status result_status;  // terminal status once materialized
    Dataset result;        // owned copy of the output once materialized
    /// Row index where each page begins, plus a final sentinel = row count;
    /// pages pack whole rows up to `page_bytes` (at least one row each).
    std::vector<std::size_t> page_starts;
  };

  struct Session {
    uint64_t id = 0;
    int fd = -1;
    std::string peer;  // "ip:port" for logs
    std::thread thread;
    bool authed = false;
    std::string tenant;
    std::map<uint64_t, JobEntry> jobs;  // keyed by JobServer job id
  };

  void AcceptLoop();
  void SessionLoop(Session* session);
  /// Handles one decoded frame; IoError return poisons the connection.
  Status HandleFrame(Session* session, const Frame& frame);

  Status HandleHello(Session* session, const std::string& payload);
  Status HandleSubmit(Session* session, const std::string& payload);
  Status HandlePoll(Session* session, const std::string& payload);
  Status HandleCancel(Session* session, const std::string& payload);
  Status HandleFetch(Session* session, const std::string& payload);

  /// Waits for the entry's job (it must be done), copies the output once
  /// and computes the page table.
  void MaterializeResult(JobEntry* entry);

  /// Admission-time per-tenant quota: prunes finished handles and refuses
  /// when `tenant` already has `tenant_max_active_jobs_` unfinished jobs.
  Status CheckTenantQuota(const std::string& tenant);

  Status SendReply(Session* session, FrameType type,
                   const std::string& payload);
  /// ERROR frame for an application-level failure; the connection survives.
  Status SendError(Session* session, const Status& status);

  RheemContext* ctx_;        // not owned
  sql::Catalog* catalog_;    // not owned
  uint32_t max_frame_bytes_;
  uint32_t page_bytes_;
  std::size_t max_sessions_;
  std::map<std::string, std::string> auth_tokens_;  // token -> tenant
  int64_t tenant_max_active_jobs_;
  int64_t drain_grace_ms_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // session teardown progress
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  bool stopping_ = false;  // no new connections or submissions
  std::thread acceptor_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> finished_;  // session threads awaiting join
  /// Unfinished jobs per tenant, pruned at admission time.
  std::map<std::string, std::vector<JobHandle>> tenant_jobs_;

  int64_t sessions_opened_ = 0;
  int64_t sessions_closed_ = 0;
  int64_t frames_received_ = 0;
  int64_t submits_ = 0;
  int64_t auth_failures_ = 0;
  int64_t quota_rejections_ = 0;
  int64_t protocol_errors_ = 0;
  int64_t pages_served_ = 0;
};

}  // namespace net
}  // namespace rheem

#endif  // RHEEM_CORE_SERVICE_NET_SERVER_H_

#include "core/service/net/wire.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace rheem {
namespace net {

namespace {

constexpr std::size_t kHeaderBytes = 5;  // u32 payload_len + u8 type

bool IsKnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kSubmit:
    case FrameType::kPoll:
    case FrameType::kCancel:
    case FrameType::kFetch:
    case FrameType::kBye:
    case FrameType::kHelloOk:
    case FrameType::kSubmitOk:
    case FrameType::kStatus:
    case FrameType::kPage:
    case FrameType::kOk:
    case FrameType::kError:
      return true;
  }
  return false;
}

/// Reads exactly `n` bytes into `out`; IoError on EOF or socket failure.
/// `*clean_eof` (optional) reports EOF before the first byte.
Status ReadExact(int fd, std::size_t n, char* out, bool* clean_eof = nullptr) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (clean_eof != nullptr && got == 0) *clean_eof = true;
      return Status::IoError(got == 0 ? "connection closed"
                                      : "connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("socket read failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status WriteExact(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not SIGPIPE.
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("socket write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

const char* FrameTypeToString(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kSubmit: return "submit";
    case FrameType::kPoll: return "poll";
    case FrameType::kCancel: return "cancel";
    case FrameType::kFetch: return "fetch";
    case FrameType::kBye: return "bye";
    case FrameType::kHelloOk: return "hello_ok";
    case FrameType::kSubmitOk: return "submit_ok";
    case FrameType::kStatus: return "status";
    case FrameType::kPage: return "page";
    case FrameType::kOk: return "ok";
    case FrameType::kError: return "error";
  }
  return "?";
}

// --- primitives -------------------------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

Result<uint8_t> PayloadReader::U8() {
  if (remaining() < 1) return Status::IoError("truncated u8");
  return static_cast<uint8_t>(buf_[offset_++]);
}

Result<uint32_t> PayloadReader::U32() {
  if (remaining() < 4) return Status::IoError("truncated u32");
  uint32_t v = 0;
  std::memcpy(&v, buf_.data() + offset_, 4);
  offset_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::U64() {
  if (remaining() < 8) return Status::IoError("truncated u64");
  uint64_t v = 0;
  std::memcpy(&v, buf_.data() + offset_, 8);
  offset_ += 8;
  return v;
}

Result<int64_t> PayloadReader::I64() {
  RHEEM_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<std::string> PayloadReader::Str(uint32_t max_len) {
  RHEEM_ASSIGN_OR_RETURN(uint32_t len, U32());
  // Both bounds checked before the allocation: the declared length is
  // untrusted and must neither over-read nor over-allocate.
  if (len > max_len) {
    return Status::IoError("string length " + std::to_string(len) +
                           " exceeds limit " + std::to_string(max_len));
  }
  if (len > remaining()) {
    return Status::IoError("truncated string payload");
  }
  std::string s(buf_.data() + offset_, len);
  offset_ += len;
  return s;
}

Status PayloadReader::ExpectEnd() const {
  if (offset_ != buf_.size()) {
    return Status::IoError("payload has " +
                           std::to_string(buf_.size() - offset_) +
                           " trailing bytes");
  }
  return Status::OK();
}

// --- typed frames -----------------------------------------------------------

void HelloFrame::Encode(std::string* out) const {
  PutU32(version, out);
  PutStr(auth_token, out);
  PutStr(tenant, out);
}

Result<HelloFrame> HelloFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  HelloFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.version, r.U32());
  RHEEM_ASSIGN_OR_RETURN(f.auth_token, r.Str(kMaxAuthBytes));
  RHEEM_ASSIGN_OR_RETURN(f.tenant, r.Str(kMaxAuthBytes));
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void SubmitFrame::Encode(std::string* out) const {
  PutU8(static_cast<uint8_t>(kind), out);
  PutI64(deadline_ms, out);
  uint8_t flags = 0;
  if (use_plan_cache) flags |= 0x1;
  if (use_result_cache) flags |= 0x2;
  PutU8(flags, out);
  PutStr(text, out);
}

Result<SubmitFrame> SubmitFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  SubmitFrame f;
  RHEEM_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind != static_cast<uint8_t>(SubmitKind::kSql)) {
    return Status::IoError("unknown submit payload kind " +
                           std::to_string(kind));
  }
  f.kind = SubmitKind::kSql;
  RHEEM_ASSIGN_OR_RETURN(f.deadline_ms, r.I64());
  RHEEM_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
  if ((flags & ~0x3u) != 0) {
    return Status::IoError("unknown submit flags " + std::to_string(flags));
  }
  f.use_plan_cache = (flags & 0x1) != 0;
  f.use_result_cache = (flags & 0x2) != 0;
  RHEEM_ASSIGN_OR_RETURN(f.text, r.Str(kMaxSqlBytes));
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void JobIdFrame::Encode(std::string* out) const { PutU64(job_id, out); }

Result<JobIdFrame> JobIdFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  JobIdFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.job_id, r.U64());
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void FetchFrame::Encode(std::string* out) const {
  PutU64(job_id, out);
  PutU64(page, out);
}

Result<FetchFrame> FetchFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  FetchFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.job_id, r.U64());
  RHEEM_ASSIGN_OR_RETURN(f.page, r.U64());
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void HelloOkFrame::Encode(std::string* out) const {
  PutU32(version, out);
  PutU64(session_id, out);
  PutStr(tenant, out);
}

Result<HelloOkFrame> HelloOkFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  HelloOkFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.version, r.U32());
  RHEEM_ASSIGN_OR_RETURN(f.session_id, r.U64());
  RHEEM_ASSIGN_OR_RETURN(f.tenant, r.Str(kMaxAuthBytes));
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void SubmitOkFrame::Encode(std::string* out) const {
  PutU64(job_id, out);
  PutU32(static_cast<uint32_t>(schema.num_fields()), out);
  for (const Field& field : schema.fields()) {
    PutStr(field.name, out);
    PutU8(static_cast<uint8_t>(field.type), out);
  }
}

Result<SubmitOkFrame> SubmitOkFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  SubmitOkFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.job_id, r.U64());
  RHEEM_ASSIGN_OR_RETURN(uint32_t ncols, r.U32());
  // Each column needs at least its 4-byte name length + 1-byte type.
  if (ncols > r.remaining() / 5) {
    return Status::IoError("column count " + std::to_string(ncols) +
                           " exceeds remaining payload");
  }
  std::vector<Field> fields;
  fields.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Field field;
    RHEEM_ASSIGN_OR_RETURN(field.name, r.Str(kMaxAuthBytes));
    RHEEM_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    if (type > static_cast<uint8_t>(ValueType::kDoubleList)) {
      return Status::IoError("unknown column type tag " + std::to_string(type));
    }
    field.type = static_cast<ValueType>(type);
    fields.push_back(std::move(field));
  }
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  f.schema = Schema(std::move(fields));
  return f;
}

void StatusFrame::Encode(std::string* out) const {
  PutU64(job_id, out);
  PutU8(state, out);
  PutU8(done ? 1 : 0, out);
  PutU8(code, out);
  PutStr(message, out);
  PutU64(rows, out);
  PutU64(pages, out);
}

Result<StatusFrame> StatusFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  StatusFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.job_id, r.U64());
  RHEEM_ASSIGN_OR_RETURN(f.state, r.U8());
  if (f.state > 4) {  // JobState::kCancelled
    return Status::IoError("unknown job state " + std::to_string(f.state));
  }
  RHEEM_ASSIGN_OR_RETURN(uint8_t done, r.U8());
  if (done > 1) return Status::IoError("non-boolean done flag");
  f.done = done != 0;
  RHEEM_ASSIGN_OR_RETURN(f.code, r.U8());
  if (f.code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::IoError("unknown status code " + std::to_string(f.code));
  }
  RHEEM_ASSIGN_OR_RETURN(f.message, r.Str(kMaxMessageBytes));
  RHEEM_ASSIGN_OR_RETURN(f.rows, r.U64());
  RHEEM_ASSIGN_OR_RETURN(f.pages, r.U64());
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void PageFrame::Encode(std::string* out) const {
  PutU64(job_id, out);
  PutU64(page, out);
  PutU8(last ? 1 : 0, out);
  PutStr(dataset_bytes, out);
}

Result<PageFrame> PageFrame::Decode(const std::string& payload,
                                    uint32_t max_page_bytes) {
  PayloadReader r(payload);
  PageFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.job_id, r.U64());
  RHEEM_ASSIGN_OR_RETURN(f.page, r.U64());
  RHEEM_ASSIGN_OR_RETURN(uint8_t last, r.U8());
  if (last > 1) return Status::IoError("non-boolean last flag");
  f.last = last != 0;
  RHEEM_ASSIGN_OR_RETURN(f.dataset_bytes, r.Str(max_page_bytes));
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

void ErrorFrame::Encode(std::string* out) const {
  PutU8(code, out);
  PutStr(message, out);
}

Result<ErrorFrame> ErrorFrame::Decode(const std::string& payload) {
  PayloadReader r(payload);
  ErrorFrame f;
  RHEEM_ASSIGN_OR_RETURN(f.code, r.U8());
  if (f.code == 0 ||
      f.code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::IoError("invalid error code " + std::to_string(f.code));
  }
  RHEEM_ASSIGN_OR_RETURN(f.message, r.Str(kMaxMessageBytes));
  RHEEM_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Status ErrorFrame::ToStatus() const {
  return Status(static_cast<StatusCode>(code), message);
}

ErrorFrame ErrorFrame::FromStatus(const Status& status) {
  ErrorFrame f;
  f.code = static_cast<uint8_t>(status.ok() ? StatusCode::kInternal
                                            : status.code());
  f.message = status.message();
  if (f.message.size() > kMaxMessageBytes) {
    f.message.resize(kMaxMessageBytes);
  }
  return f;
}

// --- frame I/O --------------------------------------------------------------

Status WriteFrame(int fd, FrameType type, const std::string& payload,
                  uint32_t max_frame) {
  if (payload.size() > max_frame) {
    return Status::Internal("frame payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds max_frame_bytes " +
                            std::to_string(max_frame));
  }
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU8(static_cast<uint8_t>(type), &frame);
  frame.append(payload);
  return WriteExact(fd, frame.data(), frame.size());
}

Result<Frame> ReadFrame(int fd, uint32_t max_frame) {
  char header[kHeaderBytes];
  RHEEM_RETURN_IF_ERROR(ReadExact(fd, kHeaderBytes, header));
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, header, 4);
  const uint8_t type = static_cast<uint8_t>(header[4]);
  if (!IsKnownFrameType(type)) {
    return Status::IoError("unknown frame type " + std::to_string(type));
  }
  if (payload_len > max_frame) {
    // Unrecoverable: the stream cannot be resynchronized past a frame we
    // refuse to buffer, so the caller must close the connection.
    return Status::IoError("frame payload of " + std::to_string(payload_len) +
                           " bytes exceeds max_frame_bytes " +
                           std::to_string(max_frame));
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload.resize(payload_len);
  if (payload_len > 0) {
    RHEEM_RETURN_IF_ERROR(ReadExact(fd, payload_len, f.payload.data()));
  }
  return f;
}

}  // namespace net
}  // namespace rheem

#ifndef RHEEM_CORE_SERVICE_NET_WIRE_H_
#define RHEEM_CORE_SERVICE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace rheem {
namespace net {

/// \brief The job service's length-prefixed binary wire protocol.
///
/// Every message is one frame:
///
///   frame   := u32 payload_len | u8 frame_type | payload[payload_len]
///
/// (all integers little-endian; strings are `u32 len | bytes`, "str" below).
/// Result pages reuse the Serializer dataset encoding, so the record codec —
/// hardened against truncation, bit flips and allocation bombs — is shared
/// between storage, platform boundaries and the network.
///
/// Frame payloads (see docs/service_protocol.md for the full grammar):
///   HELLO     := u32 version | str auth_token | str tenant
///   SUBMIT    := u8 kind(1=SQL) | i64 deadline_ms | u8 flags | str text
///   POLL      := u64 job_id
///   CANCEL    := u64 job_id
///   FETCH     := u64 job_id | u64 page
///   BYE       := (empty)
///   HELLO_OK  := u32 version | u64 session_id | str tenant
///   SUBMIT_OK := u64 job_id | u32 ncols | (str name | u8 type)*
///   STATUS    := u64 job_id | u8 state | u8 done | u8 code | str message
///                | u64 rows | u64 pages
///   PAGE      := u64 job_id | u64 page | u8 last | str dataset_bytes
///   OK        := (empty)
///   ERROR     := u8 code | str message
///
/// Decoders treat payload bytes as untrusted: every length is bounded by
/// the remaining payload before any allocation, enum values are validated,
/// and trailing bytes after a complete payload are rejected.
enum class FrameType : uint8_t {
  // client -> server
  kHello = 0x01,
  kSubmit = 0x02,
  kPoll = 0x03,
  kCancel = 0x04,
  kFetch = 0x05,
  kBye = 0x06,
  // server -> client
  kHelloOk = 0x81,
  kSubmitOk = 0x82,
  kStatus = 0x83,
  kPage = 0x84,
  kOk = 0x85,
  kError = 0x86,
};

const char* FrameTypeToString(FrameType t);

/// Protocol version spoken by this tree. A HELLO with a different version
/// is rejected (there is exactly one version so far).
constexpr uint32_t kProtocolVersion = 1;

/// Hard ceilings applied while *decoding* untrusted payloads (the server
/// additionally bounds whole frames by `service.net.max_frame_bytes`).
constexpr uint32_t kMaxAuthBytes = 256;        // token / tenant strings
constexpr uint32_t kMaxSqlBytes = 1u << 20;    // submitted statement text
constexpr uint32_t kMaxMessageBytes = 1u << 16;  // error/status messages

/// Default whole-frame bound (`service.net.max_frame_bytes`); a declared
/// payload length above the bound poisons the stream and closes it.
constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

// --- little-endian primitives ----------------------------------------------

void PutU8(uint8_t v, std::string* out);
void PutU32(uint32_t v, std::string* out);
void PutU64(uint64_t v, std::string* out);
void PutI64(int64_t v, std::string* out);
void PutStr(const std::string& s, std::string* out);  // u32 len | bytes

/// Bounds-checked cursor over one untrusted frame payload. Every getter
/// fails with IoError instead of over-reading; Str() validates the declared
/// length against both the remaining payload and the caller's ceiling
/// before allocating.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : buf_(payload) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<std::string> Str(uint32_t max_len);

  std::size_t remaining() const { return buf_.size() - offset_; }

  /// IoError unless the payload was consumed exactly — torn or concatenated
  /// payloads surface as errors, mirroring Serializer::DecodeDataset.
  Status ExpectEnd() const;

 private:
  const std::string& buf_;
  std::size_t offset_ = 0;
};

// --- typed frames -----------------------------------------------------------

struct HelloFrame {
  uint32_t version = kProtocolVersion;
  std::string auth_token;
  std::string tenant;

  void Encode(std::string* out) const;
  static Result<HelloFrame> Decode(const std::string& payload);
};

/// SUBMIT payload kinds. Plans travel as SQL text (the PR-8 frontend is the
/// network plan format); the tag leaves room for a future binary plan codec.
enum class SubmitKind : uint8_t { kSql = 1 };

struct SubmitFrame {
  SubmitKind kind = SubmitKind::kSql;
  /// Wall-clock budget in ms; 0 = none, negative = already expired (the
  /// job resolves DeadlineExceeded server-side without compiling).
  int64_t deadline_ms = 0;
  bool use_plan_cache = true;
  bool use_result_cache = true;
  std::string text;  // SQL statement

  void Encode(std::string* out) const;
  static Result<SubmitFrame> Decode(const std::string& payload);
};

struct JobIdFrame {  // POLL and CANCEL
  uint64_t job_id = 0;

  void Encode(std::string* out) const;
  static Result<JobIdFrame> Decode(const std::string& payload);
};

struct FetchFrame {
  uint64_t job_id = 0;
  uint64_t page = 0;

  void Encode(std::string* out) const;
  static Result<FetchFrame> Decode(const std::string& payload);
};

struct HelloOkFrame {
  uint32_t version = kProtocolVersion;
  uint64_t session_id = 0;
  std::string tenant;  // resolved tenant the session was admitted as

  void Encode(std::string* out) const;
  static Result<HelloOkFrame> Decode(const std::string& payload);
};

struct SubmitOkFrame {
  uint64_t job_id = 0;
  Schema schema;  // result schema of the compiled statement

  void Encode(std::string* out) const;
  static Result<SubmitOkFrame> Decode(const std::string& payload);
};

struct StatusFrame {
  uint64_t job_id = 0;
  uint8_t state = 0;  // JobState numeric value
  bool done = false;
  uint8_t code = 0;  // StatusCode of the result (0 = OK / still running)
  std::string message;
  uint64_t rows = 0;   // result rows, valid once done && code == 0
  uint64_t pages = 0;  // result pages, valid once done && code == 0

  void Encode(std::string* out) const;
  static Result<StatusFrame> Decode(const std::string& payload);
};

struct PageFrame {
  uint64_t job_id = 0;
  uint64_t page = 0;
  bool last = false;
  /// One Serializer::EncodeDataset frame holding this page's rows.
  std::string dataset_bytes;

  /// `max_page_bytes` bounds the embedded dataset blob on decode.
  void Encode(std::string* out) const;
  static Result<PageFrame> Decode(const std::string& payload,
                                  uint32_t max_page_bytes);
};

struct ErrorFrame {
  uint8_t code = 0;  // StatusCode numeric value, never 0
  std::string message;

  void Encode(std::string* out) const;
  static Result<ErrorFrame> Decode(const std::string& payload);

  Status ToStatus() const;
  static ErrorFrame FromStatus(const Status& status);
};

// --- frame I/O over a connected socket --------------------------------------

/// Blocking exact-length write of one frame (header + payload). EINTR-safe;
/// IoError on a closed or failed socket. `payload` must be shorter than
/// `max_frame` (the writer enforces the same bound the peer will).
Status WriteFrame(int fd, FrameType type, const std::string& payload,
                  uint32_t max_frame = kDefaultMaxFrameBytes);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Blocking read of one frame. A declared payload length above `max_frame`
/// is unrecoverable (the stream cannot be resynchronized) and returns
/// IoError, as do EOF and torn frames. A clean EOF *at a frame boundary*
/// returns IoError with message "connection closed".
Result<Frame> ReadFrame(int fd, uint32_t max_frame = kDefaultMaxFrameBytes);

}  // namespace net
}  // namespace rheem

#endif  // RHEEM_CORE_SERVICE_NET_WIRE_H_

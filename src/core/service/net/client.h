#ifndef RHEEM_CORE_SERVICE_NET_CLIENT_H_
#define RHEEM_CORE_SERVICE_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/service/net/wire.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace rheem {
namespace net {

/// \brief A small blocking client for the NetServer wire protocol — what the
/// examples and the multi-process soak bench speak, and the reference for
/// anyone writing a client in another language.
///
/// Not thread-safe: one Client per thread (the protocol itself is strictly
/// request/response per connection). Every call surfaces the server's ERROR
/// frames as the Status they encode, so a quota refusal comes back as
/// ResourceExhausted and a bad query as InvalidArgument, exactly like the
/// in-process API.
class Client {
 public:
  Client() = default;
  ~Client();  // closes without BYE if still connected

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the HELLO handshake. `tenant` may be empty: with
  /// auth enabled the session runs as the token's tenant; with open access
  /// it runs as "default".
  Status Connect(const std::string& host, int port,
                 const std::string& auth_token = "",
                 const std::string& tenant = "");

  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }
  /// The tenant the server admitted this session as.
  const std::string& tenant() const { return tenant_; }

  /// Submits a SQL statement; returns the job id and fills `schema` (when
  /// non-null) with the result schema. `deadline_ms` 0 = no deadline.
  Result<uint64_t> SubmitSql(const std::string& query, int64_t deadline_ms = 0,
                             Schema* schema = nullptr,
                             bool use_plan_cache = true,
                             bool use_result_cache = true);

  /// One POLL round trip.
  Result<StatusFrame> Poll(uint64_t job_id);

  /// Polls until the job is done. Returns the final STATUS frame (whose
  /// code/message carry the failure, if any); does not treat job failure as
  /// a transport error.
  Result<StatusFrame> WaitDone(uint64_t job_id);

  Status Cancel(uint64_t job_id);

  /// Fetches one result page (the embedded dataset decoded). The job must
  /// be done and succeeded.
  Result<Dataset> FetchPage(uint64_t job_id, uint64_t page, bool* last = nullptr);

  /// WaitDone + fetch every page, concatenated. Fails with the job's
  /// terminal status if it did not succeed.
  Result<Dataset> FetchAll(uint64_t job_id);

  /// Polite close: BYE, await OK, close the socket. Safe when already
  /// closed.
  Status Bye();

  /// Closes the socket without BYE.
  void Close();

 private:
  /// Writes `type` and reads the reply frame; decodes ERROR replies into
  /// their Status. Any transport failure closes the connection.
  Result<Frame> RoundTrip(FrameType type, const std::string& payload);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::string tenant_;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace net
}  // namespace rheem

#endif  // RHEEM_CORE_SERVICE_NET_CLIENT_H_

#ifndef RHEEM_CORE_SERVICE_PLAN_CACHE_H_
#define RHEEM_CORE_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/api/context.h"

namespace rheem {

/// \brief Thread-safe LRU cache of compiled jobs keyed by plan fingerprint.
///
/// Cross-platform optimization (estimate -> enumerate -> stage-split) is
/// expensive relative to small jobs; a serving layer sees the same query
/// shapes again and again, so the JobServer caches the CompiledJob and skips
/// the whole optimizer on a hit (RHEEMix-style plan reuse). Entries are
/// shared const: several in-flight jobs may execute one cached plan
/// concurrently — execution never mutates a compiled plan.
///
/// Keys come from PlanFingerprint + the submission options; see
/// Operator::FingerprintToken for what "same plan" means (equal structure,
/// parameters and UDF metadata — closure bodies are assumed to follow).
class PlanCache {
 public:
  struct Stats {
    /// Hit/miss counts since construction or the last Clear().
    int64_t hits = 0;
    int64_t misses = 0;
    /// Hit/miss counts over the cache's whole lifetime (survive Clear()).
    int64_t lifetime_hits = 0;
    int64_t lifetime_misses = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  /// capacity 0 disables the cache (every Lookup misses, Insert drops).
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached job and refreshes its recency, or nullptr (a miss).
  std::shared_ptr<const CompiledJob> Lookup(uint64_t key);

  /// Inserts (or refreshes) an entry, evicting the least recently used one
  /// beyond capacity.
  void Insert(uint64_t key, std::shared_ptr<const CompiledJob> job);

  Stats stats() const;

  /// Empties the cache and resets the current hit/miss counters, so stats()
  /// after a Clear() describes only post-clear traffic. Lifetime totals are
  /// kept separately in Stats::lifetime_hits / lifetime_misses.
  void Clear();

 private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const CompiledJob>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t lifetime_hits_ = 0;
  int64_t lifetime_misses_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_SERVICE_PLAN_CACHE_H_

#include "core/service/plan_cache.h"

namespace rheem {

std::shared_ptr<const CompiledJob> PlanCache::Lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    ++lifetime_misses_;
    return nullptr;
  }
  ++hits_;
  ++lifetime_hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->second;
}

void PlanCache::Insert(uint64_t key, std::shared_ptr<const CompiledJob> job) {
  if (capacity_ == 0 || job == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(job);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(job));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.lifetime_hits = lifetime_hits_;
  s.lifetime_misses = lifetime_misses_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  // A cleared cache starts its statistics over: stale hit/miss counts would
  // misreport the post-clear hit rate. Lifetime totals keep the history.
  hits_ = 0;
  misses_ = 0;
}

}  // namespace rheem

#ifndef RHEEM_CORE_SERVICE_JOB_SERVER_H_
#define RHEEM_CORE_SERVICE_JOB_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/api/context.h"
#include "core/executor/cancellation.h"
#include "core/executor/result_cache.h"
#include "core/service/plan_cache.h"

namespace rheem {

namespace sql {
class Catalog;  // core/sql/catalog.h
}  // namespace sql

/// Lifecycle of a submitted job.
enum class JobState {
  kQueued,     // admitted, waiting for a worker
  kRunning,    // compiling or executing
  kSucceeded,
  kFailed,     // compile/execute error (incl. deadline exceeded)
  kCancelled,
};

const char* JobStateToString(JobState state);

/// Per-submission knobs: the usual ExecutionOptions plus serving concerns.
struct JobOptions {
  ExecutionOptions exec;
  /// Wall-clock budget measured from Submit(); 0 = none. An overdue job
  /// stops at its next stage boundary with DeadlineExceeded (queued jobs
  /// past their deadline never start). A *negative* budget is already
  /// expired: the submission resolves DeadlineExceeded immediately without
  /// being queued or compiled.
  std::chrono::milliseconds deadline{0};
  /// Disable to force a fresh compile for this submission (e.g. when the
  /// caller knows its UDF closures differ from a structurally equal plan).
  bool use_plan_cache = true;
  /// Disable to bypass the server's materialized-result cache for this
  /// submission: no cached stage outputs are reused and none of this job's
  /// outputs are published. Same escape hatch as use_plan_cache for callers
  /// whose UDF closures violate the FingerprintToken contract.
  bool use_result_cache = true;
};

namespace internal {

/// Shared state between a JobHandle and the worker running the job.
struct JobRecord {
  uint64_t id = 0;
  const Plan* plan = nullptr;  // not owned; must outlive completion
  /// Optional: set for owning submissions (shared-plan / SQL), keeping
  /// `plan` alive until the record dies even if the caller drops its
  /// handle. Null for borrowed-plan submissions.
  std::shared_ptr<const void> plan_owner;
  JobOptions options;
  std::chrono::steady_clock::time_point submitted_at{};
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  CancelToken token;
  std::atomic<JobState> state{JobState::kQueued};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<ExecutionResult> result{Status::Internal("job still pending")};
};

}  // namespace internal

/// \brief Future-like handle to a submitted job. Copyable; all copies refer
/// to the same job.
class JobHandle {
 public:
  JobHandle() = default;  // empty handle; valid() is false

  bool valid() const { return rec_ != nullptr; }
  uint64_t id() const { return rec_ ? rec_->id : 0; }
  JobState state() const;

  /// Requests cooperative cancellation: a queued job never starts, a
  /// running one stops at its next stage boundary.
  void Cancel();

  /// True once the job has finished (any terminal state).
  bool done() const;

  /// Blocks until the job finishes and returns its result. An empty handle
  /// returns InvalidArgument.
  Result<ExecutionResult> Wait() const;

  /// Blocks up to `timeout`; true when the job finished in time.
  bool WaitFor(std::chrono::milliseconds timeout) const;

 private:
  friend class JobServer;
  explicit JobHandle(std::shared_ptr<internal::JobRecord> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<internal::JobRecord> rec_;
};

/// Counters describing a server's life so far (one consistent snapshot).
struct JobServerStats {
  int64_t submitted = 0;
  int64_t rejected = 0;   // admission refusals (queue full / shut down)
  int64_t succeeded = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  std::size_t queued = 0;   // currently waiting
  std::size_t running = 0;  // currently in a worker
  PlanCache::Stats cache;
  ResultCache::Stats result_cache;
};

/// \brief The serving layer above RheemContext: accepts concurrent job
/// submissions, admission-controls them, compiles through the plan cache and
/// runs them on worker threads (paper §4.2's Executor, lifted from one job
/// at a time to a multi-tenant service).
///
/// Submit() is the only entry point: it either admits the job — bounded by
/// `service.queue_depth` waiting jobs on top of `service.max_concurrent`
/// running ones — and returns a JobHandle, or rejects it immediately with
/// ResourceExhausted so callers get backpressure instead of unbounded
/// queueing. Worker threads drive the CrossPlatformExecutor; within each
/// job, independent stages additionally fan out onto the shared
/// DefaultThreadPool().
///
/// Shutdown(true) (also the destructor) drains: no new admissions, queued
/// and running jobs finish. Shutdown(false) cancels everything in flight
/// first. Every admitted job's handle always resolves.
///
/// Config keys (read from the context's Config at construction):
///   service.max_concurrent       (int, default 4)  worker threads
///   service.queue_depth          (int, default 16) max waiting jobs
///   service.plan_cache_capacity  (int, default 64) 0 disables the cache
///   executor.result_cache_capacity_bytes (int, default 64MiB): budget of the
///       cross-job materialized-result cache; 0 disables result reuse
class JobServer {
 public:
  explicit JobServer(RheemContext* ctx);
  ~JobServer();  // Shutdown(/*drain=*/true)

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Admits a job or rejects it (ResourceExhausted when the queue is full,
  /// Cancelled after shutdown). `logical_plan` is borrowed and must stay
  /// alive until the returned handle resolves.
  Result<JobHandle> Submit(const Plan& logical_plan, JobOptions options = {});

  /// Owning submission: the server shares ownership of the plan, so the
  /// caller may drop every reference immediately (fire-and-forget).
  Result<JobHandle> Submit(std::shared_ptr<const Plan> logical_plan,
                           JobOptions options = {});

  /// SQL text as a first-class submission: compiles `query` against
  /// `catalog` (core/sql) on the server's context and admits the plan,
  /// keeping the compiled statement alive until the job resolves. Compile
  /// errors (with "line:col" positions) are returned synchronously;
  /// admission control applies as for Submit().
  Result<JobHandle> SubmitSql(const std::string& query, sql::Catalog& catalog,
                              JobOptions options = {});

  /// Cancels every queued and running job (their handles resolve with
  /// Cancelled). The server keeps accepting new work.
  void CancelAll();

  /// Stops admissions and joins the workers. drain=true lets in-flight and
  /// queued jobs finish; drain=false cancels them first. Idempotent.
  void Shutdown(bool drain = true);

  JobServerStats stats() const;
  PlanCache& plan_cache() { return cache_; }
  ResultCache& result_cache() { return result_cache_; }

 private:
  Result<JobHandle> SubmitImpl(const Plan& logical_plan,
                               std::shared_ptr<const void> plan_owner,
                               JobOptions options);
  void WorkerLoop();
  Result<ExecutionResult> RunJob(
      const std::shared_ptr<internal::JobRecord>& job);
  Result<ExecutionResult> RunJobInner(
      const std::shared_ptr<internal::JobRecord>& job, uint64_t job_span_id);
  /// Stores the terminal state and bumps the server/process counters.
  void SettleState(const std::shared_ptr<internal::JobRecord>& job,
                   const Result<ExecutionResult>& result);
  /// Publishes the result and wakes Wait()ers. Called only after the job
  /// left running_, so stats().running is 0 once every handle resolved.
  void Resolve(const std::shared_ptr<internal::JobRecord>& job,
               Result<ExecutionResult> result);

  RheemContext* ctx_;  // not owned
  std::size_t max_concurrent_;
  std::size_t queue_depth_;
  std::string trace_path_;  // "" = no per-job Chrome trace writes
  PlanCache cache_;
  ResultCache result_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<internal::JobRecord>> queue_;
  std::vector<std::shared_ptr<internal::JobRecord>> running_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  uint64_t next_id_ = 1;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t succeeded_ = 0;
  int64_t failed_ = 0;
  int64_t cancelled_ = 0;
};

}  // namespace rheem

#endif  // RHEEM_CORE_SERVICE_JOB_SERVER_H_

#include "core/service/job_server.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/executor/executor.h"
#include "core/optimizer/fingerprint.h"
#include "core/optimizer/stats_catalog.h"
#include "core/sql/sql.h"

namespace rheem {
namespace {

/// Balances a gauge across every exit path of RunJob (Finish is reached via
/// three early returns). A null gauge (metrics disabled) is a no-op.
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1);
  }
  ~GaugeGuard() {
    if (gauge_ != nullptr) gauge_->Add(-1);
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  Gauge* gauge_;
};

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobState JobHandle::state() const {
  return rec_ ? rec_->state.load() : JobState::kCancelled;
}

void JobHandle::Cancel() {
  if (rec_ != nullptr) rec_->token.Cancel();
}

bool JobHandle::done() const {
  if (rec_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(rec_->mu);
  return rec_->done;
}

Result<ExecutionResult> JobHandle::Wait() const {
  if (rec_ == nullptr) {
    return Status::InvalidArgument("Wait() on an empty JobHandle");
  }
  std::unique_lock<std::mutex> lock(rec_->mu);
  rec_->cv.wait(lock, [this]() { return rec_->done; });
  return rec_->result;
}

bool JobHandle::WaitFor(std::chrono::milliseconds timeout) const {
  if (rec_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(rec_->mu);
  return rec_->cv.wait_for(lock, timeout, [this]() { return rec_->done; });
}

JobServer::JobServer(RheemContext* ctx)
    : ctx_(ctx),
      max_concurrent_(static_cast<std::size_t>(std::max<int64_t>(
          1, ctx->config().GetInt("service.max_concurrent", 4).ValueOr(4)))),
      queue_depth_(static_cast<std::size_t>(std::max<int64_t>(
          0, ctx->config().GetInt("service.queue_depth", 16).ValueOr(16)))),
      trace_path_(ctx->config().GetString("trace.path", "").ValueOr("")),
      cache_(static_cast<std::size_t>(std::max<int64_t>(
          0,
          ctx->config().GetInt("service.plan_cache_capacity", 64).ValueOr(64)))),
      result_cache_(ctx->config()
                        .GetInt("executor.result_cache_capacity_bytes",
                                64ll * 1024 * 1024)
                        .ValueOr(64ll * 1024 * 1024)) {
  ApplyObservabilityConfig(ctx->config());
  workers_.reserve(max_concurrent_);
  for (std::size_t i = 0; i < max_concurrent_; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

JobServer::~JobServer() { Shutdown(/*drain=*/true); }

Result<JobHandle> JobServer::Submit(const Plan& logical_plan,
                                    JobOptions options) {
  return SubmitImpl(logical_plan, nullptr, std::move(options));
}

Result<JobHandle> JobServer::Submit(std::shared_ptr<const Plan> logical_plan,
                                    JobOptions options) {
  if (logical_plan == nullptr) {
    return Status::InvalidArgument("null plan submitted");
  }
  const Plan& plan = *logical_plan;
  return SubmitImpl(plan, std::move(logical_plan), std::move(options));
}

Result<JobHandle> JobServer::SubmitSql(const std::string& query,
                                       sql::Catalog& catalog,
                                       JobOptions options) {
  RHEEM_ASSIGN_OR_RETURN(sql::SqlStatement stmt,
                         sql::Compile(ctx_, &catalog, query));
  auto owner = std::make_shared<sql::SqlStatement>(std::move(stmt));
  return SubmitImpl(owner->plan(), owner, std::move(options));
}

Result<JobHandle> JobServer::SubmitImpl(const Plan& logical_plan,
                                        std::shared_ptr<const void> plan_owner,
                                        JobOptions options) {
  auto rec = std::make_shared<internal::JobRecord>();
  rec->plan = &logical_plan;
  rec->plan_owner = std::move(plan_owner);
  rec->options = std::move(options);
  rec->submitted_at = std::chrono::steady_clock::now();
  if (rec->options.deadline.count() > 0) {
    rec->has_deadline = true;
    rec->deadline = std::chrono::steady_clock::now() + rec->options.deadline;
  }
  // A deadline that expired before the job was even submitted (negative
  // budget) can never be met: resolve it here, spending no queue slot, no
  // compile and no spans. Previously a negative budget fell through the
  // `count() > 0` guard above and ran as if it had *no* deadline at all.
  if (rec->options.deadline.count() < 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        ++rejected_;
        CountIfEnabled(
            MetricsRegistry::Global().counter("service.jobs_rejected"), 1);
        return Status::Cancelled("JobServer is shut down");
      }
      rec->id = next_id_++;
      ++submitted_;
      ++failed_;
    }
    auto& registry = MetricsRegistry::Global();
    CountIfEnabled(registry.counter("service.jobs_submitted"), 1);
    CountIfEnabled(registry.counter("service.jobs_failed"), 1);
    rec->state.store(JobState::kFailed);
    Resolve(rec, Status::DeadlineExceeded(
                     "job deadline expired before submission (budget " +
                     std::to_string(rec->options.deadline.count()) + "ms)"));
    return JobHandle(rec);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++rejected_;
      CountIfEnabled(MetricsRegistry::Global().counter("service.jobs_rejected"),
                     1);
      return Status::Cancelled("JobServer is shut down");
    }
    // `queue_depth_` bounds jobs *waiting* beyond the workers: queued jobs
    // an idle worker will pick up immediately are capacity, not backlog —
    // so depth 0 still admits up to max_concurrent in flight.
    const std::size_t idle_workers = max_concurrent_ - running_.size();
    if (queue_.size() >= queue_depth_ + idle_workers) {
      ++rejected_;
      CountIfEnabled(MetricsRegistry::Global().counter("service.jobs_rejected"),
                     1);
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(queue_.size()) +
          " waiting, " + std::to_string(running_.size()) +
          " running, service.queue_depth=" + std::to_string(queue_depth_) +
          "); retry later");
    }
    rec->id = next_id_++;
    ++submitted_;
    queue_.push_back(rec);
  }
  auto& registry = MetricsRegistry::Global();
  CountIfEnabled(registry.counter("service.jobs_submitted"), 1);
  cv_.notify_one();
  return JobHandle(rec);
}

void JobServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<internal::JobRecord> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = queue_.front();
      queue_.pop_front();
      running_.push_back(job);
    }
    Result<ExecutionResult> result = RunJob(job);
    // The job's root span is closed by now, so it (and everything under it)
    // lands in the file; jobs still running in other workers are skipped as
    // open spans and picked up by a later rewrite.
    if (!trace_path_.empty() && Tracer::Global().enabled()) {
      if (Status st = Tracer::Global().WriteChromeTrace(trace_path_);
          !st.ok()) {
        RHEEM_LOG(Warning) << "failed to write trace to " << trace_path_
                           << ": " << st.ToString();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job));
    }
    // Resolve the handle only after the bookkeeping above: a caller whose
    // Wait() returns must observe stats().running without this job.
    Resolve(job, std::move(result));
    cv_.notify_all();
  }
}

Result<ExecutionResult> JobServer::RunJob(
    const std::shared_ptr<internal::JobRecord>& job) {
  job->state.store(JobState::kRunning);

  auto& registry = MetricsRegistry::Global();
  Gauge* running_gauge = nullptr;
  if (registry.enabled()) {
    const int64_t wait_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - job->submitted_at)
            .count();
    registry.histogram("service.queue_wait_us", DefaultLatencyBoundsMicros())
        ->Observe(wait_us);
    running_gauge = registry.gauge("service.jobs_running");
  }
  GaugeGuard running_guard(running_gauge);

  // Root span of the job's trace tree: compile and execute nest below it.
  TraceSpan job_span("job", "service");
  job_span.AddTag("job_id", static_cast<int64_t>(job->id));
  Result<ExecutionResult> result = RunJobInner(job, job_span.id());
  SettleState(job, result);
  job_span.AddTag("state", JobStateToString(job->state.load()));
  // Surface progressive re-optimization on the job span: operators browsing
  // a trace see which jobs re-planned mid-flight and why.
  if (result.ok() && result->metrics.reoptimizations > 0) {
    job_span.AddTag("reoptimizations", result->metrics.reoptimizations);
    for (std::size_t i = 0; i < result->decisions.size(); ++i) {
      job_span.AddTag("reopt_" + std::to_string(i + 1),
                      result->decisions[i]);
    }
  }
  return result;
}

Result<ExecutionResult> JobServer::RunJobInner(
    const std::shared_ptr<internal::JobRecord>& job, uint64_t job_span_id) {
  StopCondition stop;
  stop.token = &job->token;
  stop.deadline = job->deadline;
  stop.has_deadline = job->has_deadline;
  // A job cancelled or overdue while it sat in the queue never starts.
  if (Status st = stop.Check(); !st.ok()) return st;

  // Compile, going through the plan cache when allowed: a hit skips
  // translation, rewrites, estimation, enumeration and stage-splitting.
  std::shared_ptr<const CompiledJob> compiled;
  bool cache_hit = false;
  const ExecutionOptions& eo = job->options.exec;
  {
    TraceSpan compile_span("compile", "service", job_span_id);
    if (job->options.use_plan_cache) {
      auto plan_fp = PlanFingerprint::Compute(*job->plan);
      if (plan_fp.ok()) {
        uint64_t key = *plan_fp;
        key = PlanFingerprint::Mix(key, eo.force_platform);
        key =
            PlanFingerprint::Mix(key, static_cast<uint64_t>(eo.movement_aware));
        key = PlanFingerprint::Mix(
            key, static_cast<uint64_t>(eo.apply_logical_rewrites));
        compiled = cache_.Lookup(key);
        cache_hit = compiled != nullptr;
        if (compiled == nullptr) {
          auto fresh = ctx_->Compile(*job->plan, eo);
          if (!fresh.ok()) return fresh.status();
          compiled = std::make_shared<const CompiledJob>(
              std::move(fresh).ValueOrDie());
          cache_.Insert(key, compiled);
        }
      }
    }
    if (compiled == nullptr) {  // cache disabled or plan not fingerprintable
      auto fresh = ctx_->Compile(*job->plan, eo);
      if (!fresh.ok()) return fresh.status();
      compiled =
          std::make_shared<const CompiledJob>(std::move(fresh).ValueOrDie());
    }
    compile_span.AddTag("cache_hit", cache_hit ? "true" : "false");
  }
  auto& registry = MetricsRegistry::Global();
  CountIfEnabled(registry.counter(cache_hit ? "service.plan_cache_hits"
                                            : "service.plan_cache_misses"),
                 1);

  CrossPlatformExecutor executor(ctx_->config());
  if (eo.monitor != nullptr) executor.set_monitor(eo.monitor);
  executor.EnableFailover(&ctx_->platforms(), &ctx_->movement_model());
  executor.set_stop_condition(stop);
  // Learned statistics: every job run through the service feeds the
  // context's catalog, so the fleet's estimates sharpen under traffic.
  executor.set_stats_catalog(ctx_->stats_catalog());
  // Materialized-result reuse across jobs: stages whose outputs another job
  // already computed (same sub-plan fingerprint) are skipped entirely.
  if (job->options.use_result_cache) {
    executor.set_result_cache(&result_cache_);
  }
  return executor.Execute(compiled->eplan);
}

void JobServer::SettleState(const std::shared_ptr<internal::JobRecord>& job,
                            const Result<ExecutionResult>& result) {
  JobState terminal;
  if (result.ok()) {
    terminal = JobState::kSucceeded;
  } else if (result.status().IsCancelled()) {
    terminal = JobState::kCancelled;
  } else {
    terminal = JobState::kFailed;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (terminal) {
      case JobState::kSucceeded: ++succeeded_; break;
      case JobState::kCancelled: ++cancelled_; break;
      default: ++failed_; break;
    }
  }
  auto& registry = MetricsRegistry::Global();
  switch (terminal) {
    case JobState::kSucceeded:
      CountIfEnabled(registry.counter("service.jobs_succeeded"), 1);
      break;
    case JobState::kCancelled:
      CountIfEnabled(registry.counter("service.jobs_cancelled"), 1);
      break;
    default:
      CountIfEnabled(registry.counter("service.jobs_failed"), 1);
      break;
  }
  job->state.store(terminal);
}

void JobServer::Resolve(const std::shared_ptr<internal::JobRecord>& job,
                        Result<ExecutionResult> result) {
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->result = std::move(result);
    job->done = true;
  }
  job->cv.notify_all();
}

void JobServer::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& job : queue_) job->token.Cancel();
  for (const auto& job : running_) job->token.Cancel();
}

void JobServer::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
    if (!drain) {
      for (const auto& job : queue_) job->token.Cancel();
      for (const auto& job : running_) job->token.Cancel();
    }
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // Persist learned statistics so the next process plans with everything
  // this one observed ("the fleet gets smarter across restarts"). Failures
  // only cost the learning, never the shutdown.
  StatisticsCatalog* stats = ctx_->stats_catalog();
  const std::string stats_path =
      ctx_->config().GetString("stats.path", "").ValueOr("");
  const bool autosave =
      ctx_->config().GetBool("stats.autosave", true).ValueOr(true);
  if (stats != nullptr && autosave && !stats_path.empty()) {
    if (Status saved = stats->SaveToFile(stats_path); !saved.ok()) {
      RHEEM_LOG(Warning) << "failed to save stats catalog to " << stats_path
                         << ": " << saved.ToString();
    }
  }
}

JobServerStats JobServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JobServerStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.succeeded = succeeded_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.queued = queue_.size();
  s.running = running_.size();
  s.cache = cache_.stats();
  s.result_cache = result_cache_.stats();
  return s;
}

}  // namespace rheem

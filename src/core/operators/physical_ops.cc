#include "core/operators/physical_ops.h"

#include "core/expr/expr.h"
#include "core/optimizer/fingerprint.h"

namespace rheem {

std::string CollectionSourceOp::FingerprintToken() const {
  return kind_name() + "|data=" +
         std::to_string(PlanFingerprint::OfDataset(data_));
}

std::string RepeatOp::FingerprintToken() const {
  std::string t = kind_name() + "|iters=" + std::to_string(num_iterations_);
  if (body_ != nullptr) {
    t += "|body=" + std::to_string(PlanFingerprint::Compute(*body_).ValueOr(0));
  }
  return t;
}

std::string DoWhileOp::FingerprintToken() const {
  std::string t = kind_name() + "|max=" + std::to_string(max_iterations_);
  if (body_ != nullptr) {
    t += "|body=" + std::to_string(PlanFingerprint::Compute(*body_).ValueOr(0));
  }
  return t;
}

// Declarative payloads fold their canonical encoding so the executor's
// result cache (keyed on physical fingerprints) distinguishes plans that
// differ only in an expression constant. Closure-only operators keep the
// bare kind token: their parameters are invisible, by construction.
std::string MapOp::FingerprintToken() const {
  std::string t = kind_name();
  if (!udf_.projection.empty()) {
    t += "|proj=";
    for (const auto& f : udf_.projection) t += expr::Canonical(*f) + ";";
  }
  return t;
}

std::string FilterOp::FingerprintToken() const {
  std::string t = kind_name();
  if (udf_.expr != nullptr) t += "|expr=" + expr::Canonical(*udf_.expr);
  return t;
}

std::string JoinOp::FingerprintToken() const {
  std::string t = kind_name();
  if (left_key_.expr != nullptr) {
    t += "|lk=" + expr::Canonical(*left_key_.expr);
  }
  if (right_key_.expr != nullptr) {
    t += "|rk=" + expr::Canonical(*right_key_.expr);
  }
  return t;
}

std::string ThetaJoinOp::FingerprintToken() const {
  std::string t = kind_name();
  if (condition_.pair_expr != nullptr) {
    t += "|expr=" + expr::Canonical(*condition_.pair_expr);
  }
  return t;
}

std::string DeclarativeDetail(const PhysicalOperator& op) {
  switch (op.kind()) {
    case OpKind::kFilter: {
      const auto& udf = static_cast<const FilterOp&>(op).udf();
      if (udf.expr != nullptr) return "filter=" + expr::Pretty(*udf.expr);
      return "";
    }
    case OpKind::kMap: {
      const auto& udf = static_cast<const MapOp&>(op).udf();
      if (udf.projection.empty()) return "";
      std::string out = "map=[";
      for (std::size_t i = 0; i < udf.projection.size(); ++i) {
        if (i > 0) out += ", ";
        out += expr::Pretty(*udf.projection[i]);
      }
      return out + "]";
    }
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(op);
      if (j.left_key().expr == nullptr || j.right_key().expr == nullptr) {
        return "";
      }
      return "join=(" + expr::Pretty(*j.left_key().expr) + ", " +
             expr::Pretty(*j.right_key().expr) + ")";
    }
    case OpKind::kThetaJoin: {
      const auto& udf = static_cast<const ThetaJoinOp&>(op).condition();
      if (udf.pair_expr != nullptr) {
        return "theta=" + expr::Pretty(*udf.pair_expr);
      }
      return "";
    }
    default:
      return "";
  }
}

bool HasOpaqueUdf(const PhysicalOperator& op) {
  switch (op.kind()) {
    case OpKind::kFilter:
      return static_cast<const FilterOp&>(op).udf().expr == nullptr;
    case OpKind::kMap:
      return static_cast<const MapOp&>(op).udf().projection.empty();
    case OpKind::kFlatMap:
    case OpKind::kBroadcastMap:
    case OpKind::kGlobalReduce:
      return true;
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(op);
      return j.left_key().expr == nullptr || j.right_key().expr == nullptr;
    }
    case OpKind::kThetaJoin:
      return static_cast<const ThetaJoinOp&>(op).condition().pair_expr ==
             nullptr;
    case OpKind::kSort:
    case OpKind::kTopK:
    case OpKind::kReduceByKey:
    case OpKind::kGroupByKey:
      return true;  // key/reduce/group closures
    default:
      return false;
  }
}

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kCollectionSource: return "CollectionSource";
    case OpKind::kStageInput: return "StageInput";
    case OpKind::kLoopState: return "LoopState";
    case OpKind::kLoopData: return "LoopData";
    case OpKind::kMap: return "Map";
    case OpKind::kFlatMap: return "FlatMap";
    case OpKind::kFilter: return "Filter";
    case OpKind::kProject: return "Project";
    case OpKind::kDistinct: return "Distinct";
    case OpKind::kSort: return "Sort";
    case OpKind::kSample: return "Sample";
    case OpKind::kZipWithId: return "ZipWithId";
    case OpKind::kReduceByKey: return "ReduceByKey";
    case OpKind::kGroupByKey: return "GroupByKey";
    case OpKind::kGlobalReduce: return "GlobalReduce";
    case OpKind::kCount: return "Count";
    case OpKind::kTopK: return "TopK";
    case OpKind::kBroadcastMap: return "BroadcastMap";
    case OpKind::kJoin: return "Join";
    case OpKind::kThetaJoin: return "ThetaJoin";
    case OpKind::kIEJoin: return "IEJoin";
    case OpKind::kCrossProduct: return "CrossProduct";
    case OpKind::kUnion: return "Union";
    case OpKind::kIntersect: return "Intersect";
    case OpKind::kSubtract: return "Subtract";
    case OpKind::kRepeat: return "Repeat";
    case OpKind::kDoWhile: return "DoWhile";
    case OpKind::kCollect: return "Collect";
  }
  return "?";
}

Result<OpKind> OpKindFromString(const std::string& name) {
  static const OpKind kAll[] = {
      OpKind::kCollectionSource, OpKind::kStageInput, OpKind::kLoopState,
      OpKind::kLoopData,         OpKind::kMap,        OpKind::kFlatMap,
      OpKind::kFilter,           OpKind::kProject,    OpKind::kDistinct,
      OpKind::kSort,             OpKind::kSample,     OpKind::kZipWithId,
      OpKind::kReduceByKey,      OpKind::kGroupByKey, OpKind::kGlobalReduce,
      OpKind::kCount,            OpKind::kBroadcastMap, OpKind::kJoin,
      OpKind::kThetaJoin,        OpKind::kIEJoin,     OpKind::kCrossProduct,
      OpKind::kUnion,            OpKind::kRepeat,     OpKind::kDoWhile,
      OpKind::kIntersect,        OpKind::kSubtract,   OpKind::kTopK,
      OpKind::kCollect};
  for (OpKind kind : kAll) {
    if (name == OpKindToString(kind)) return kind;
  }
  return Status::NotFound("unknown operator kind '" + name + "'");
}

}  // namespace rheem

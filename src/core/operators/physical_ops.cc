#include "core/operators/physical_ops.h"

#include "core/optimizer/fingerprint.h"

namespace rheem {

std::string CollectionSourceOp::FingerprintToken() const {
  return kind_name() + "|data=" +
         std::to_string(PlanFingerprint::OfDataset(data_));
}

std::string RepeatOp::FingerprintToken() const {
  std::string t = kind_name() + "|iters=" + std::to_string(num_iterations_);
  if (body_ != nullptr) {
    t += "|body=" + std::to_string(PlanFingerprint::Compute(*body_).ValueOr(0));
  }
  return t;
}

std::string DoWhileOp::FingerprintToken() const {
  std::string t = kind_name() + "|max=" + std::to_string(max_iterations_);
  if (body_ != nullptr) {
    t += "|body=" + std::to_string(PlanFingerprint::Compute(*body_).ValueOr(0));
  }
  return t;
}

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kCollectionSource: return "CollectionSource";
    case OpKind::kStageInput: return "StageInput";
    case OpKind::kLoopState: return "LoopState";
    case OpKind::kLoopData: return "LoopData";
    case OpKind::kMap: return "Map";
    case OpKind::kFlatMap: return "FlatMap";
    case OpKind::kFilter: return "Filter";
    case OpKind::kProject: return "Project";
    case OpKind::kDistinct: return "Distinct";
    case OpKind::kSort: return "Sort";
    case OpKind::kSample: return "Sample";
    case OpKind::kZipWithId: return "ZipWithId";
    case OpKind::kReduceByKey: return "ReduceByKey";
    case OpKind::kGroupByKey: return "GroupByKey";
    case OpKind::kGlobalReduce: return "GlobalReduce";
    case OpKind::kCount: return "Count";
    case OpKind::kTopK: return "TopK";
    case OpKind::kBroadcastMap: return "BroadcastMap";
    case OpKind::kJoin: return "Join";
    case OpKind::kThetaJoin: return "ThetaJoin";
    case OpKind::kIEJoin: return "IEJoin";
    case OpKind::kCrossProduct: return "CrossProduct";
    case OpKind::kUnion: return "Union";
    case OpKind::kIntersect: return "Intersect";
    case OpKind::kSubtract: return "Subtract";
    case OpKind::kRepeat: return "Repeat";
    case OpKind::kDoWhile: return "DoWhile";
    case OpKind::kCollect: return "Collect";
  }
  return "?";
}

Result<OpKind> OpKindFromString(const std::string& name) {
  static const OpKind kAll[] = {
      OpKind::kCollectionSource, OpKind::kStageInput, OpKind::kLoopState,
      OpKind::kLoopData,         OpKind::kMap,        OpKind::kFlatMap,
      OpKind::kFilter,           OpKind::kProject,    OpKind::kDistinct,
      OpKind::kSort,             OpKind::kSample,     OpKind::kZipWithId,
      OpKind::kReduceByKey,      OpKind::kGroupByKey, OpKind::kGlobalReduce,
      OpKind::kCount,            OpKind::kBroadcastMap, OpKind::kJoin,
      OpKind::kThetaJoin,        OpKind::kIEJoin,     OpKind::kCrossProduct,
      OpKind::kUnion,            OpKind::kRepeat,     OpKind::kDoWhile,
      OpKind::kIntersect,        OpKind::kSubtract,   OpKind::kTopK,
      OpKind::kCollect};
  for (OpKind kind : kAll) {
    if (name == OpKindToString(kind)) return kind;
  }
  return Status::NotFound("unknown operator kind '" + name + "'");
}

}  // namespace rheem

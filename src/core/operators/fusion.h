#ifndef RHEEM_CORE_OPERATORS_FUSION_H_
#define RHEEM_CORE_OPERATORS_FUSION_H_

#include <unordered_set>
#include <vector>

#include "core/operators/kernels.h"
#include "core/operators/physical_ops.h"

namespace rheem {
namespace fusion {

/// \brief Pipeline-fusion planning over a stage's operator list.
///
/// Record-at-a-time operators (Map, Filter, FlatMap, Project) compose without
/// semantic interaction — Hueske et al.'s "Opening the Black Boxes" result —
/// so a chain of them can run as one kernels::FusedPipeline pass with no
/// intermediate Dataset materialization. The planner here is shared by the
/// javasim walker (fuses whole-Dataset chains) and the sparksim walker
/// (fuses per partition, leaving every shuffle boundary intact).

/// True when `op` is a record-at-a-time physical operator FusedPipeline can
/// absorb. Stateful record-wise ops (ZipWithId: global ids; Sample: one RNG
/// stream) are deliberately excluded.
bool IsFusable(const Operator& op);

/// One execution unit of a stage: a single operator evaluated normally, or a
/// maximal fusable chain evaluated as one FusedPipeline pass.
struct FusionUnit {
  std::vector<Operator*> ops;
  bool fused() const { return ops.size() > 1; }
};

/// Partitions `ops` (already topologically ordered) into execution units.
/// Consecutive list entries A, B merge when both are fusable, B's only input
/// is A, A feeds no other operator in `ops`, and A's id is not in `preserve`
/// (operator outputs that must stay addressable: stage outputs, loop sinks).
/// With `enable` false every operator is its own unit — the exact unfused
/// execution order.
std::vector<FusionUnit> PlanFusionUnits(
    const std::vector<Operator*>& ops,
    const std::unordered_set<int>& preserve, bool enable);

/// Converts a fusable chain into FusedPipeline steps (one per operator).
std::vector<kernels::FusedStep> StepsFor(const std::vector<Operator*>& chain);

}  // namespace fusion
}  // namespace rheem

#endif  // RHEEM_CORE_OPERATORS_FUSION_H_

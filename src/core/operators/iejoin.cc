#include "core/operators/iejoin.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace rheem {
namespace kernels {

namespace {

struct Entry {
  Value a;
  Value b;
  const Record* record;
};

Status CheckColumns(const IEJoinSpec& spec, const Dataset& left,
                    const Dataset& right) {
  auto check = [](const Dataset& ds, int col, const char* side) -> Status {
    if (col < 0) {
      return Status::InvalidArgument(std::string("negative IEJoin column on ") +
                                     side);
    }
    for (const auto& r : ds.records()) {
      if (static_cast<std::size_t>(col) >= r.size()) {
        return Status::OutOfRange(std::string("IEJoin column ") +
                                  std::to_string(col) + " out of range on " +
                                  side);
      }
    }
    return Status::OK();
  };
  RHEEM_RETURN_IF_ERROR(check(left, spec.left_col1, "left"));
  RHEEM_RETURN_IF_ERROR(check(left, spec.left_col2, "left"));
  RHEEM_RETURN_IF_ERROR(check(right, spec.right_col1, "right"));
  RHEEM_RETURN_IF_ERROR(check(right, spec.right_col2, "right"));
  return Status::OK();
}

/// Word-packed bit array supporting set + prefix scan.
class BitArray {
 public:
  explicit BitArray(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  void Set(std::size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }

  /// Invokes fn(position) for every set bit in [0, upper).
  template <typename Fn>
  void ScanPrefix(std::size_t upper, Fn&& fn) const {
    if (upper > n_) upper = n_;
    const std::size_t full_words = upper >> 6;
    for (std::size_t w = 0; w < full_words; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int tz = std::countr_zero(bits);
        fn((w << 6) + static_cast<std::size_t>(tz));
        bits &= bits - 1;
      }
    }
    const std::size_t rem = upper & 63;
    if (rem != 0) {
      uint64_t bits = words_[full_words] & ((uint64_t{1} << rem) - 1);
      while (bits != 0) {
        const int tz = std::countr_zero(bits);
        fn((full_words << 6) + static_cast<std::size_t>(tz));
        bits &= bits - 1;
      }
    }
  }

 private:
  std::size_t n_;
  std::vector<uint64_t> words_;
};

}  // namespace

Result<Dataset> IEJoin(const IEJoinSpec& spec, const Dataset& left,
                       const Dataset& right) {
  RHEEM_RETURN_IF_ERROR(CheckColumns(spec, left, right));
  if (left.empty() || right.empty()) return Dataset();

  // Normalize both predicates by (possibly) flipping comparison direction:
  //   predicate 1 becomes  l.a <(=) r.a   in the flipped-a order
  //   predicate 2 becomes  l.b >(=) r.b   in the flipped-b order
  const bool flip_a = (spec.op1 == CompareOp::kGreater ||
                       spec.op1 == CompareOp::kGreaterEqual);
  const bool flip_b = (spec.op2 == CompareOp::kLess ||
                       spec.op2 == CompareOp::kLessEqual);
  const bool strict1 = (spec.op1 == CompareOp::kLess ||
                        spec.op1 == CompareOp::kGreater);
  const bool strict2 = (spec.op2 == CompareOp::kGreater ||
                        spec.op2 == CompareOp::kLess);

  auto cmp_a = [flip_a](const Value& x, const Value& y) {
    return flip_a ? y.Compare(x) : x.Compare(y);
  };
  auto cmp_b = [flip_b](const Value& x, const Value& y) {
    return flip_b ? y.Compare(x) : x.Compare(y);
  };

  std::vector<Entry> ls;
  ls.reserve(left.size());
  for (const auto& r : left.records()) {
    ls.push_back(Entry{r[static_cast<std::size_t>(spec.left_col1)],
                       r[static_cast<std::size_t>(spec.left_col2)], &r});
  }
  std::vector<Entry> rs;
  rs.reserve(right.size());
  for (const auto& r : right.records()) {
    rs.push_back(Entry{r[static_cast<std::size_t>(spec.right_col1)],
                       r[static_cast<std::size_t>(spec.right_col2)], &r});
  }

  // L1: indices of L ascending by a (the primary sort of the algorithm).
  const std::size_t n = ls.size();
  std::vector<std::size_t> l1(n);
  for (std::size_t i = 0; i < n; ++i) l1[i] = i;
  std::stable_sort(l1.begin(), l1.end(), [&](std::size_t x, std::size_t y) {
    return cmp_a(ls[x].a, ls[y].a) < 0;
  });
  // Permutation: original L index -> position in L1.
  std::vector<std::size_t> pos1(n);
  for (std::size_t p = 0; p < n; ++p) pos1[l1[p]] = p;

  // Secondary sort: L and R descending by b, so that as we walk R the set
  // {l : l.b > r.b} only grows and can be recorded in the bit array.
  std::vector<std::size_t> lb(n);
  for (std::size_t i = 0; i < n; ++i) lb[i] = i;
  std::stable_sort(lb.begin(), lb.end(), [&](std::size_t x, std::size_t y) {
    return cmp_b(ls[x].b, ls[y].b) > 0;
  });
  std::vector<std::size_t> rb(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) rb[i] = i;
  std::stable_sort(rb.begin(), rb.end(), [&](std::size_t x, std::size_t y) {
    return cmp_b(rs[x].b, rs[y].b) > 0;
  });

  BitArray bits(n);
  std::vector<Record> out;
  std::size_t lptr = 0;
  for (std::size_t ri : rb) {
    const Entry& r = rs[ri];
    // Admit every l whose b-value qualifies against this (and, because rb is
    // descending, every later) r.
    while (lptr < n) {
      const int c = cmp_b(ls[lb[lptr]].b, r.b);
      const bool qualifies = strict2 ? (c > 0) : (c >= 0);
      if (!qualifies) break;
      bits.Set(pos1[lb[lptr]]);
      ++lptr;
    }
    // Offset into the primary sort: first position whose a-value fails the
    // first predicate against r.a (the algorithm's offset array, computed by
    // binary search instead of a merged pre-pass).
    const std::size_t upper = static_cast<std::size_t>(
        std::partition_point(l1.begin(), l1.end(),
                             [&](std::size_t x) {
                               const int c = cmp_a(ls[x].a, r.a);
                               return strict1 ? (c < 0) : (c <= 0);
                             }) -
        l1.begin());
    bits.ScanPrefix(upper, [&](std::size_t p) {
      out.push_back(Record::Concat(*ls[l1[p]].record, *r.record));
    });
  }
  return Dataset(std::move(out));
}

Result<Dataset> IEJoinNestedLoopReference(const IEJoinSpec& spec,
                                          const Dataset& left,
                                          const Dataset& right) {
  RHEEM_RETURN_IF_ERROR(CheckColumns(spec, left, right));
  std::vector<Record> out;
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      const bool p1 = EvalCompare(spec.op1, l[static_cast<std::size_t>(spec.left_col1)],
                                  r[static_cast<std::size_t>(spec.right_col1)]);
      if (!p1) continue;
      const bool p2 = EvalCompare(spec.op2, l[static_cast<std::size_t>(spec.left_col2)],
                                  r[static_cast<std::size_t>(spec.right_col2)]);
      if (p2) out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

}  // namespace kernels
}  // namespace rheem

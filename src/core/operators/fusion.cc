#include "core/operators/fusion.h"

#include <unordered_map>

namespace rheem {
namespace fusion {

bool IsFusable(const Operator& op) {
  const auto* p = dynamic_cast<const PhysicalOperator*>(&op);
  if (p == nullptr) return false;
  switch (p->kind()) {
    case OpKind::kMap:
    case OpKind::kFilter:
    case OpKind::kFlatMap:
    case OpKind::kProject:
      return true;
    default:
      return false;
  }
}

std::vector<FusionUnit> PlanFusionUnits(
    const std::vector<Operator*>& ops,
    const std::unordered_set<int>& preserve, bool enable) {
  std::vector<FusionUnit> units;
  if (!enable) {
    units.reserve(ops.size());
    for (Operator* op : ops) units.push_back(FusionUnit{{op}});
    return units;
  }
  // Consumer counts within this operator list. Consumers outside the list
  // (later stages, the driver) address results by id and are covered by
  // `preserve`.
  std::unordered_map<int, int> consumers;
  for (Operator* op : ops) {
    for (Operator* in : op->inputs()) ++consumers[in->id()];
  }
  for (Operator* op : ops) {
    const bool extend =
        !units.empty() && units.back().ops.size() >= 1 && IsFusable(*op) &&
        IsFusable(*units.back().ops.back()) && op->inputs().size() == 1 &&
        op->inputs()[0] == units.back().ops.back() &&
        consumers[units.back().ops.back()->id()] == 1 &&
        preserve.count(units.back().ops.back()->id()) == 0;
    if (extend) {
      units.back().ops.push_back(op);
    } else {
      units.push_back(FusionUnit{{op}});
    }
  }
  return units;
}

std::vector<kernels::FusedStep> StepsFor(const std::vector<Operator*>& chain) {
  std::vector<kernels::FusedStep> steps;
  steps.reserve(chain.size());
  for (Operator* base : chain) {
    const auto& op = static_cast<const PhysicalOperator&>(*base);
    switch (op.kind()) {
      case OpKind::kMap:
        steps.push_back(kernels::FusedStep::OfMap(
            static_cast<const MapOp&>(op).udf()));
        break;
      case OpKind::kFilter:
        steps.push_back(kernels::FusedStep::OfFilter(
            static_cast<const FilterOp&>(op).udf()));
        break;
      case OpKind::kFlatMap:
        steps.push_back(kernels::FusedStep::OfFlatMap(
            static_cast<const FlatMapOp&>(op).udf()));
        break;
      case OpKind::kProject:
        steps.push_back(kernels::FusedStep::OfProject(
            static_cast<const ProjectOp&>(op).columns()));
        break;
      default:
        break;  // PlanFusionUnits never puts other kinds in a chain
    }
  }
  return steps;
}

}  // namespace fusion
}  // namespace rheem

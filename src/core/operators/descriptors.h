#ifndef RHEEM_CORE_OPERATORS_DESCRIPTORS_H_
#define RHEEM_CORE_OPERATORS_DESCRIPTORS_H_

#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "common/result.h"
#include "data/dataset.h"
#include "data/record.h"
#include "data/value.h"

namespace rheem {

namespace expr {
class Expr;
}  // namespace expr

/// Optional declarative form of a UDF (core/expr/expr.h). When set, the
/// closure `fn` was compiled from this tree, and the optimizer may inspect,
/// push down, fingerprint, and estimate the operator instead of treating it
/// as a black box. Null for hand-written closures.
using DeclaredExpr = std::shared_ptr<const expr::Expr>;

/// \brief Optimizer-facing metadata attached to every UDF.
///
/// The paper (§4.2) requires the multi-platform optimizer to treat UDF
/// operators as first-class citizens, in the spirit of Manimal/PACTs/SOFA.
/// Since we cannot introspect a std::function, developers annotate their
/// UDFs; the cardinality estimator and cost models consume these hints.
struct UdfMeta {
  /// Expected output quanta per input quantum (filters <1, flat maps >=1).
  double selectivity = 1.0;
  /// Relative CPU weight of one invocation; 1.0 = a few arithmetic ops.
  double cost_factor = 1.0;

  static UdfMeta Selective(double selectivity, double cost_factor = 1.0) {
    return UdfMeta{selectivity, cost_factor};
  }
  static UdfMeta Expensive(double cost_factor) {
    return UdfMeta{1.0, cost_factor};
  }
};

/// Record -> Record transformation (Map).
struct MapUdf {
  std::function<Record(const Record&)> fn;
  UdfMeta meta;
  /// Non-empty: declarative projection — output field i is projection[i]
  /// evaluated over the input record.
  std::vector<DeclaredExpr> projection;
};

/// Record -> zero or more Records (FlatMap).
struct FlatMapUdf {
  std::function<std::vector<Record>(const Record&)> fn;
  UdfMeta meta;
};

/// Record -> keep/drop decision (Filter).
struct PredicateUdf {
  std::function<bool(const Record&)> fn;
  UdfMeta meta{0.5, 1.0};
  /// Non-null: declarative boolean predicate equivalent to `fn`.
  DeclaredExpr expr;
};

/// Record -> grouping/join key.
struct KeyUdf {
  std::function<Value(const Record&)> fn;
  UdfMeta meta;
  /// Non-null: declarative key-extraction expression equivalent to `fn`.
  DeclaredExpr expr;
};

/// Column-wise aggregate kinds for declarative reductions. kFirst keeps the
/// first-seen value (in input order), the others follow Value semantics:
/// kSum stays int64 for int64 columns and widens to double otherwise,
/// kMin/kMax pick an operand by Value::Compare (ties keep the accumulator).
enum class AggKind : uint8_t { kFirst, kSum, kMin, kMax };

const char* AggKindToString(AggKind k);

/// One output column of a declarative reduction: `kind` applied to input
/// column `column`.
struct AggSpec {
  int column = 0;
  AggKind kind = AggKind::kFirst;
};

/// Commutative+associative pairwise combiner (ReduceByKey, GlobalReduce).
struct ReduceUdf {
  std::function<Record(const Record&, const Record&)> fn;
  UdfMeta meta;
  /// Non-empty: declarative column-wise aggregate equivalent to `fn`
  /// (output column i is aggs[i].kind over input column i), which lets the
  /// kernels run the reduction columnar instead of folding boxed records.
  std::vector<AggSpec> aggs;
};

/// Compiles a column-wise aggregate spec into a Reduce descriptor whose
/// closure combines records field-by-field, keeping `aggs` visible so the
/// kernels (and fingerprints) see through the closure. Requires
/// aggs[i].column == i: a pairwise reduction keeps record arity and column
/// positions, so every output column must read its own position.
Result<ReduceUdf> MakeAggReduceUdf(std::vector<AggSpec> aggs);

/// Whole-group processor: (key, members) -> output records (GroupByKey).
struct GroupUdf {
  std::function<std::vector<Record>(const Value&, const std::vector<Record>&)> fn;
  UdfMeta meta;
};

/// (main record, broadcast side input) -> Record. Models Spark-style
/// broadcast variables; the side input is materialized once per task.
struct BroadcastMapUdf {
  std::function<Record(const Record&, const Dataset&)> fn;
  UdfMeta meta;
};

/// Pairwise join predicate for theta joins.
struct ThetaUdf {
  std::function<bool(const Record&, const Record&)> fn;
  UdfMeta meta{0.1, 1.0};
  /// Non-null: declarative pair predicate over the concatenation
  /// (left ++ right) — fields [0, |left|) address the left record.
  DeclaredExpr pair_expr;
};

/// Loop continuation test over the loop's state dataset (DoWhile).
struct LoopConditionUdf {
  std::function<bool(const Dataset& state, int iteration)> fn;
};

/// Comparison operators usable in IEJoin / theta-join specifications.
enum class CompareOp { kLess, kLessEqual, kGreater, kGreaterEqual };

const char* CompareOpToString(CompareOp op);

/// Evaluates `a op b`.
bool EvalCompare(CompareOp op, const Value& a, const Value& b);

/// \brief Specification of an inequality join on two column pairs:
///   left[left_col1] op1 right[right_col1] AND left[left_col2] op2 right[right_col2]
///
/// This is the shape the IEJoin algorithm [Khayyat et al., PVLDB'15]
/// accelerates; the paper adds IEJoin to RHEEM's physical-operator pool as
/// its extensibility showcase (§5.1).
struct IEJoinSpec {
  int left_col1 = 0;
  CompareOp op1 = CompareOp::kLess;
  int right_col1 = 0;
  int left_col2 = 0;
  CompareOp op2 = CompareOp::kGreater;
  int right_col2 = 0;
};

}  // namespace rheem

#endif  // RHEEM_CORE_OPERATORS_DESCRIPTORS_H_

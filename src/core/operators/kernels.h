#ifndef RHEEM_CORE_OPERATORS_KERNELS_H_
#define RHEEM_CORE_OPERATORS_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/operators/descriptors.h"
#include "data/batch.h"
#include "data/dataset.h"

namespace rheem {
namespace kernels {

/// \brief Platform-neutral evaluation kernels for the physical operator pool.
///
/// Execution operators are platform-*dependent* wrappers (paper §3.1): the
/// javasim platform applies a kernel to its whole input eagerly; sparksim
/// applies the same kernel per partition and adds shuffles around the
/// key-based ones; relsim substitutes its own relational engine where it can.
/// Centralizing the data-path logic here keeps the three platforms honest:
/// they differ in *execution strategy* (the thing the paper studies), not in
/// operator semantics.
///
/// Kernels are morsel-parallel: inputs larger than one morsel are split into
/// contiguous chunks executed on a ThreadPool, with per-morsel outputs
/// concatenated in morsel order (or per-morsel partial accumulators merged in
/// morsel order). Output is *identical* to the serial path for every kernel
/// — parallelism changes wall time, never results. See
/// docs/parallel_kernels.md for the determinism argument per kernel.

/// Execution knobs threaded through every parallelizable kernel.
///
/// Config keys (read by KernelOptions::FromConfig):
///   kernels.parallel     (bool,  default true)  enable morsel parallelism
///   kernels.morsel_size  (int,   default 16384) records per morsel
///   kernels.columnar     (bool,  default true)  allow columnar batch paths
struct KernelOptions {
  bool parallel = true;
  /// Allow eligible kernels to convert to a columnar Batch and execute
  /// column-at-a-time (see docs/parallel_kernels.md for eligibility and the
  /// row fallback rules). Orthogonal to `parallel`: the serial columnar
  /// path is what the 1.5x single-thread bench gate measures.
  bool columnar = true;
  std::size_t morsel_size = 16384;
  /// Pool for morsel execution; nullptr means DefaultThreadPool().
  ThreadPool* pool = nullptr;

  static KernelOptions FromConfig(const Config& config,
                                  ThreadPool* pool = nullptr);
  static KernelOptions Serial() {
    KernelOptions o;
    o.parallel = false;
    return o;
  }
};

/// Process-wide columnar master switch, initialized from the environment:
/// RHEEM_FORCE_ROW=1 forces the row path everywhere (used by the fuzz
/// differential to replay a plan on both engines). SetColumnarEnabled
/// overrides it at runtime; both engines are byte-identical by contract.
bool ColumnarEnabled();
void SetColumnarEnabled(bool enabled);

/// \brief Cumulative per-kernel timing counters (thread-safe, process-wide).
///
/// `parallel_cpu_micros` is the summed thread-CPU time of all morsel bodies
/// and `critical_path_micros` the sum over calls of the slowest morsel; both
/// are zero for serial-path calls. They let benches model the latency a
/// `w`-wide pool would achieve even when the host has fewer cores — the same
/// virtual-clock substitution the sparksim TaskScheduler performs
/// (DESIGN.md §3).
struct KernelTiming {
  std::string kernel;
  int64_t invocations = 0;
  int64_t records_in = 0;
  int64_t wall_micros = 0;           // measured end-to-end on this host
  int64_t parallel_cpu_micros = 0;   // Σ thread-CPU time of morsel bodies
  int64_t critical_path_micros = 0;  // Σ per-call max morsel CPU time
  int64_t serial_micros = 0;         // wall time outside the morsel loop
};

/// Snapshot of all kernels invoked since the last reset (zero rows omitted).
std::vector<KernelTiming> SnapshotKernelTimings();
void ResetKernelTimings();

/// Latency a `workers`-wide pool would achieve for the recorded calls:
/// serial + max(parallel_cpu / workers, critical_path).
int64_t ModeledMicrosAtWidth(const KernelTiming& t, std::size_t workers);

Result<Dataset> Map(const MapUdf& udf, const Dataset& in,
                    const KernelOptions& opts = {});
Result<Dataset> FlatMap(const FlatMapUdf& udf, const Dataset& in,
                        const KernelOptions& opts = {});
Result<Dataset> Filter(const PredicateUdf& udf, const Dataset& in,
                       const KernelOptions& opts = {});
Result<Dataset> Project(const std::vector<int>& columns, const Dataset& in,
                        const KernelOptions& opts = {});
Result<Dataset> Distinct(const Dataset& in);
Result<Dataset> SortByKey(const KeyUdf& key, const Dataset& in,
                          const KernelOptions& opts = {});
/// Bernoulli sample. The keep decision for a record is a pure function of
/// (seed, index_offset + position), so partitioned callers that pass each
/// partition's global start offset reproduce exactly the records a single
/// whole-dataset call keeps.
Result<Dataset> Sample(double fraction, uint64_t seed, const Dataset& in,
                       const KernelOptions& opts = {},
                       uint64_t index_offset = 0);

/// Appends ids [first_id, first_id + in.size()) as a trailing int64 field.
Result<Dataset> ZipWithId(int64_t first_id, const Dataset& in,
                          const KernelOptions& opts = {});

/// Hash-based key/combine aggregation; emits one record per key (the reduced
/// record, key not re-attached — reducers see full records). The parallel
/// path folds per-morsel partial maps merged in morsel order; identical to
/// serial for associative reducers (the ReduceUdf contract).
Result<Dataset> ReduceByKey(const KeyUdf& key, const ReduceUdf& reduce,
                            const Dataset& in, const KernelOptions& opts = {});

/// Hash-grouping, then the whole-group UDF per key (iteration order is the
/// first-seen key order to keep results deterministic).
Result<Dataset> HashGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in, const KernelOptions& opts = {});

/// Sort-grouping: sorts by key then runs the group UDF over runs.
Result<Dataset> SortGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in, const KernelOptions& opts = {});

/// Pairwise reduction of the whole input to <=1 record.
Result<Dataset> GlobalReduce(const ReduceUdf& reduce, const Dataset& in,
                             const KernelOptions& opts = {});

Result<Dataset> Count(const Dataset& in, const KernelOptions& opts = {});

Result<Dataset> BroadcastMap(const BroadcastMapUdf& udf, const Dataset& main,
                             const Dataset& broadcast,
                             const KernelOptions& opts = {});

/// Build-side = right input (hashed); probe-side = left. The parallel path
/// builds a partitioned hash table and probes left morsels concurrently.
Result<Dataset> HashJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                         const Dataset& left, const Dataset& right,
                         const KernelOptions& opts = {});

Result<Dataset> SortMergeJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                              const Dataset& left, const Dataset& right);

/// O(|L|*|R|) nested-loop evaluation of an arbitrary pair predicate.
Result<Dataset> ThetaJoin(const ThetaUdf& condition, const Dataset& left,
                          const Dataset& right);

Result<Dataset> CrossProduct(const Dataset& left, const Dataset& right);

Result<Dataset> Union(const Dataset& left, const Dataset& right);

/// Set intersection with distinct output (first-seen order of `left`).
Result<Dataset> Intersect(const Dataset& left, const Dataset& right);

/// Distinct records of `left` not present in `right` (first-seen order).
Result<Dataset> Subtract(const Dataset& left, const Dataset& right);

/// The k records with the smallest keys (ascending=false: largest), emitted
/// in key order; ties resolved by input order. O(n log k) heap selection.
Result<Dataset> TopK(const KeyUdf& key, int64_t k, bool ascending,
                     const Dataset& in);

/// \brief One step of a fused record-at-a-time pipeline.
///
/// Hueske et al. ("Opening the Black Boxes in Data Flow Optimization") show
/// map/filter/flatmap/project chains can be evaluated in a single pass with
/// unchanged semantics; FusedPipeline is that pass. Each input record is
/// driven through every step in order with no intermediate Dataset
/// materialization.
struct FusedStep {
  enum class Kind { kMap, kFilter, kFlatMap, kProject };
  Kind kind = Kind::kMap;
  MapUdf map;
  PredicateUdf filter;
  FlatMapUdf flat_map;
  std::vector<int> columns;

  static FusedStep OfMap(MapUdf udf);
  static FusedStep OfFilter(PredicateUdf udf);
  static FusedStep OfFlatMap(FlatMapUdf udf);
  static FusedStep OfProject(std::vector<int> columns);
};

/// Evaluates the fused chain over `in` (morsel-parallel like Map). An empty
/// chain is the identity. Output is identical to applying the steps as
/// separate kernels in sequence.
Result<Dataset> FusedPipeline(const std::vector<FusedStep>& steps,
                              const Dataset& in,
                              const KernelOptions& opts = {});

// ---------------------------------------------------------------------------
// Batch-level kernels
// ---------------------------------------------------------------------------
//
// Operate directly on a columnar Batch with no Dataset conversion at either
// end, so a caller that already holds batches pays the boundary cost exactly
// once per pipeline. All are morsel-parallel under `opts` and byte-identical
// (after ToDataset) to the corresponding row kernels. They require the
// declarative UDF forms — a Batch has no records to feed a closure without
// boxing, which is precisely what this API avoids; Unsupported otherwise.

/// Narrows the batch's selection vector to the rows the declarative
/// predicate accepts (in selection order). Columns are untouched.
Status FilterBatch(const PredicateUdf& udf, Batch* batch,
                   const KernelOptions& opts = {});

/// Evaluates the declarative projection over the selected rows and returns a
/// dense output batch (one column per projection expression, no selection).
Result<Batch> MapBatch(const MapUdf& udf, const Batch& in,
                       const KernelOptions& opts = {});

/// Columnar grouped aggregation over the selected rows: requires a
/// declarative key and a column-wise aggregate spec (ReduceUdf::aggs), and
/// key/aggregate columns that meet the vectorization rules (no nulls,
/// numeric aggregates, non-NaN keys) — Unsupported otherwise, so callers
/// can fall back to the row kernel. Emits one record per key, sorted by key
/// like the row ReduceByKey.
Result<Dataset> ReduceByKeyBatch(const KeyUdf& key, const ReduceUdf& reduce,
                                 const Batch& in,
                                 const KernelOptions& opts = {});

}  // namespace kernels
}  // namespace rheem

#endif  // RHEEM_CORE_OPERATORS_KERNELS_H_

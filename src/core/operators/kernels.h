#ifndef RHEEM_CORE_OPERATORS_KERNELS_H_
#define RHEEM_CORE_OPERATORS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/operators/descriptors.h"
#include "data/dataset.h"

namespace rheem {
namespace kernels {

/// \brief Platform-neutral evaluation kernels for the physical operator pool.
///
/// Execution operators are platform-*dependent* wrappers (paper §3.1): the
/// javasim platform applies a kernel to its whole input eagerly; sparksim
/// applies the same kernel per partition and adds shuffles around the
/// key-based ones; relsim substitutes its own relational engine where it can.
/// Centralizing the data-path logic here keeps the three platforms honest:
/// they differ in *execution strategy* (the thing the paper studies), not in
/// operator semantics.

Result<Dataset> Map(const MapUdf& udf, const Dataset& in);
Result<Dataset> FlatMap(const FlatMapUdf& udf, const Dataset& in);
Result<Dataset> Filter(const PredicateUdf& udf, const Dataset& in);
Result<Dataset> Project(const std::vector<int>& columns, const Dataset& in);
Result<Dataset> Distinct(const Dataset& in);
Result<Dataset> SortByKey(const KeyUdf& key, const Dataset& in);
Result<Dataset> Sample(double fraction, uint64_t seed, const Dataset& in);

/// Appends ids [first_id, first_id + in.size()) as a trailing int64 field.
Result<Dataset> ZipWithId(int64_t first_id, const Dataset& in);

/// Hash-based key/combine aggregation; emits one record per key (the reduced
/// record, key not re-attached — reducers see full records).
Result<Dataset> ReduceByKey(const KeyUdf& key, const ReduceUdf& reduce,
                            const Dataset& in);

/// Hash-grouping, then the whole-group UDF per key (iteration order is the
/// key order to keep results deterministic).
Result<Dataset> HashGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in);

/// Sort-grouping: sorts by key then runs the group UDF over runs.
Result<Dataset> SortGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in);

/// Pairwise reduction of the whole input to <=1 record.
Result<Dataset> GlobalReduce(const ReduceUdf& reduce, const Dataset& in);

Result<Dataset> Count(const Dataset& in);

Result<Dataset> BroadcastMap(const BroadcastMapUdf& udf, const Dataset& main,
                             const Dataset& broadcast);

/// Build-side = right input (hashed); probe-side = left.
Result<Dataset> HashJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                         const Dataset& left, const Dataset& right);

Result<Dataset> SortMergeJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                              const Dataset& left, const Dataset& right);

/// O(|L|*|R|) nested-loop evaluation of an arbitrary pair predicate.
Result<Dataset> ThetaJoin(const ThetaUdf& condition, const Dataset& left,
                          const Dataset& right);

Result<Dataset> CrossProduct(const Dataset& left, const Dataset& right);

Result<Dataset> Union(const Dataset& left, const Dataset& right);

/// Set intersection with distinct output (first-seen order of `left`).
Result<Dataset> Intersect(const Dataset& left, const Dataset& right);

/// Distinct records of `left` not present in `right` (first-seen order).
Result<Dataset> Subtract(const Dataset& left, const Dataset& right);

/// The k records with the smallest keys (ascending=false: largest), emitted
/// in key order; ties resolved by input order. O(n log k) heap selection.
Result<Dataset> TopK(const KeyUdf& key, int64_t k, bool ascending,
                     const Dataset& in);

}  // namespace kernels
}  // namespace rheem

#endif  // RHEEM_CORE_OPERATORS_KERNELS_H_

#ifndef RHEEM_CORE_OPERATORS_IEJOIN_H_
#define RHEEM_CORE_OPERATORS_IEJOIN_H_

#include "common/result.h"
#include "core/operators/descriptors.h"
#include "data/dataset.h"

namespace rheem {
namespace kernels {

/// \brief IEJoin: fast inequality join on two column-pair predicates
/// [Khayyat et al., "Lightning Fast and Space Efficient Inequality Joins",
/// PVLDB 8(13), 2015] — the physical operator the paper adds to RHEEM's pool
/// to accelerate BigDansing's inequality rules (§5.1).
///
/// Evaluates
///   left[s.left_col1]  op1  right[s.right_col1]  AND
///   left[s.left_col2]  op2  right[s.right_col2]
/// and emits Record::Concat(l, r) for every qualifying pair.
///
/// Implementation: the predicates are normalized (by negating sort
/// directions) to `l.a < r.a AND l.b > r.b`; tuples of L are inserted into a
/// word-packed bit array in descending-b order (as in the original
/// algorithm's permutation array over the secondary sort), and each tuple of
/// R scans the bit-array prefix selected by a binary-searched offset on the
/// primary sort — O((n+m)log(n+m) + n*m/64 + |output|), versus the
/// O(n*m) predicate evaluations of a nested-loop theta join.
Result<Dataset> IEJoin(const IEJoinSpec& spec, const Dataset& left,
                       const Dataset& right);

/// Reference nested-loop evaluation of the same IEJoinSpec; used by property
/// tests to cross-check IEJoin and by benchmarks as the baseline.
Result<Dataset> IEJoinNestedLoopReference(const IEJoinSpec& spec,
                                          const Dataset& left,
                                          const Dataset& right);

}  // namespace kernels
}  // namespace rheem

#endif  // RHEEM_CORE_OPERATORS_IEJOIN_H_

#ifndef RHEEM_CORE_OPERATORS_PHYSICAL_OPS_H_
#define RHEEM_CORE_OPERATORS_PHYSICAL_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/operators/descriptors.h"
#include "core/plan/operator.h"
#include "data/dataset.h"

namespace rheem {

class Plan;

/// Kinds of platform-independent physical operators in RHEEM's pool
/// (paper §3.1, "Core Layer"). Each kind may have several algorithmic
/// variants (e.g. GroupBy: hash vs sort) and, per platform, one or more
/// execution operators bound via the mapping registry.
enum class OpKind {
  // Sources / plumbing
  kCollectionSource,  // in-memory Dataset source
  kStageInput,        // placeholder for a task-atom boundary input
  kLoopState,         // placeholder: loop body's current state input
  kLoopData,          // placeholder: loop body's loop-invariant data input
  // Unary transforms
  kMap,
  kFlatMap,
  kFilter,
  kProject,
  kDistinct,
  kSort,
  kSample,
  kZipWithId,
  // Aggregations
  kReduceByKey,
  kGroupByKey,
  kGlobalReduce,
  kCount,
  kTopK,
  // Binary
  kBroadcastMap,
  kJoin,
  kThetaJoin,
  kIEJoin,
  kCrossProduct,
  kUnion,
  kIntersect,
  kSubtract,
  // Control flow
  kRepeat,
  kDoWhile,
  // Sink
  kCollect,
};

const char* OpKindToString(OpKind kind);

/// Inverse of OpKindToString; NotFound for unknown names. Used by the
/// declarative mapping loader.
Result<OpKind> OpKindFromString(const std::string& name);

enum class GroupByAlgorithm { kHash, kSort };
enum class JoinAlgorithm { kHash, kSortMerge };

/// \brief Base of all physical operators: a platform-independent algorithmic
/// decision the multi-platform optimizer later assigns to a platform.
class PhysicalOperator : public Operator {
 public:
  OpLevel level() const override { return OpLevel::kPhysical; }
  std::string kind_name() const override { return OpKindToString(kind()); }

  virtual OpKind kind() const = 0;
};

/// In-memory dataset source.
class CollectionSourceOp : public PhysicalOperator {
 public:
  explicit CollectionSourceOp(Dataset data) : data_(std::move(data)) {}
  OpKind kind() const override { return OpKind::kCollectionSource; }
  int arity() const override { return 0; }
  std::string FingerprintToken() const override;
  const Dataset& data() const { return data_; }
  Dataset* mutable_data() { return &data_; }

 private:
  Dataset data_;
};

/// Placeholder bound by the executor when a stage consumes the output of an
/// upstream stage (a task-atom boundary). `slot` is the boundary input index.
class StageInputOp : public PhysicalOperator {
 public:
  explicit StageInputOp(int slot) : slot_(slot) {}
  OpKind kind() const override { return OpKind::kStageInput; }
  int arity() const override { return 0; }
  std::string FingerprintToken() const override {
    return kind_name() + "|slot=" + std::to_string(slot_);
  }
  int slot() const { return slot_; }

 private:
  int slot_;
};

/// Loop-body placeholder: the evolving state dataset of the enclosing loop.
class LoopStateOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kLoopState; }
  int arity() const override { return 0; }
};

/// Loop-body placeholder: the loop-invariant dataset of the enclosing loop.
class LoopDataOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kLoopData; }
  int arity() const override { return 0; }
};

class MapOp : public PhysicalOperator {
 public:
  explicit MapOp(MapUdf udf) : udf_(std::move(udf)) {}
  OpKind kind() const override { return OpKind::kMap; }
  int arity() const override { return 1; }
  std::string FingerprintToken() const override;
  const MapUdf& udf() const { return udf_; }

 private:
  MapUdf udf_;
};

class FlatMapOp : public PhysicalOperator {
 public:
  explicit FlatMapOp(FlatMapUdf udf) : udf_(std::move(udf)) {}
  OpKind kind() const override { return OpKind::kFlatMap; }
  int arity() const override { return 1; }
  const FlatMapUdf& udf() const { return udf_; }

 private:
  FlatMapUdf udf_;
};

class FilterOp : public PhysicalOperator {
 public:
  explicit FilterOp(PredicateUdf udf) : udf_(std::move(udf)) {}
  OpKind kind() const override { return OpKind::kFilter; }
  int arity() const override { return 1; }
  std::string FingerprintToken() const override;
  const PredicateUdf& udf() const { return udf_; }
  /// Used by the filter-reordering rewrite, which swaps payloads in place.
  void set_udf(PredicateUdf udf) { udf_ = std::move(udf); }

 private:
  PredicateUdf udf_;
};

/// Structural projection onto column indices; cheaper than a Map for the
/// optimizer to reason about (enables projection push-down).
class ProjectOp : public PhysicalOperator {
 public:
  explicit ProjectOp(std::vector<int> columns) : columns_(std::move(columns)) {}
  OpKind kind() const override { return OpKind::kProject; }
  int arity() const override { return 1; }
  std::string FingerprintToken() const override {
    std::string t = kind_name() + "|cols=";
    for (int c : columns_) t += std::to_string(c) + ",";
    return t;
  }
  const std::vector<int>& columns() const { return columns_; }

 private:
  std::vector<int> columns_;
};

class DistinctOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kDistinct; }
  int arity() const override { return 1; }
};

/// Sorts by an extracted key, ascending (descending via negated keys).
class SortOp : public PhysicalOperator {
 public:
  explicit SortOp(KeyUdf key) : key_(std::move(key)) {}
  OpKind kind() const override { return OpKind::kSort; }
  int arity() const override { return 1; }
  const KeyUdf& key() const { return key_; }

 private:
  KeyUdf key_;
};

/// Bernoulli sample with the given fraction and seed.
class SampleOp : public PhysicalOperator {
 public:
  SampleOp(double fraction, uint64_t seed)
      : fraction_(fraction), seed_(seed) {}
  OpKind kind() const override { return OpKind::kSample; }
  int arity() const override { return 1; }
  std::string FingerprintToken() const override {
    return kind_name() + "|frac=" + std::to_string(fraction_) +
           "|seed=" + std::to_string(seed_);
  }
  double fraction() const { return fraction_; }
  uint64_t seed() const { return seed_; }

 private:
  double fraction_;
  uint64_t seed_;
};

/// Appends a unique dense int64 id as the last field of each record.
class ZipWithIdOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kZipWithId; }
  int arity() const override { return 1; }
};

class ReduceByKeyOp : public PhysicalOperator {
 public:
  ReduceByKeyOp(KeyUdf key, ReduceUdf reduce)
      : key_(std::move(key)), reduce_(std::move(reduce)) {}
  OpKind kind() const override { return OpKind::kReduceByKey; }
  int arity() const override { return 1; }
  const KeyUdf& key() const { return key_; }
  const ReduceUdf& reduce() const { return reduce_; }

 private:
  KeyUdf key_;
  ReduceUdf reduce_;
};

/// Groups by key and runs a whole-group UDF. The algorithm variant is the
/// paper's flagship example of a physical-level decision (SortGroupBy vs
/// HashGroupBy, §3.1 Example 2); the core-layer optimizer picks one when the
/// plan leaves `algorithm` unset (see Enumerator).
class GroupByKeyOp : public PhysicalOperator {
 public:
  GroupByKeyOp(KeyUdf key, GroupUdf group,
               GroupByAlgorithm algorithm = GroupByAlgorithm::kHash)
      : key_(std::move(key)), group_(std::move(group)), algorithm_(algorithm) {}
  OpKind kind() const override { return OpKind::kGroupByKey; }
  std::string kind_name() const override {
    return algorithm_ == GroupByAlgorithm::kHash ? "HashGroupBy"
                                                 : "SortGroupBy";
  }
  int arity() const override { return 1; }
  const KeyUdf& key() const { return key_; }
  const GroupUdf& group() const { return group_; }
  GroupByAlgorithm algorithm() const { return algorithm_; }
  void set_algorithm(GroupByAlgorithm a) { algorithm_ = a; }

 private:
  KeyUdf key_;
  GroupUdf group_;
  GroupByAlgorithm algorithm_;
};

/// Reduces the whole input to a single record (empty input -> empty output).
class GlobalReduceOp : public PhysicalOperator {
 public:
  explicit GlobalReduceOp(ReduceUdf reduce) : reduce_(std::move(reduce)) {}
  OpKind kind() const override { return OpKind::kGlobalReduce; }
  int arity() const override { return 1; }
  const ReduceUdf& reduce() const { return reduce_; }

 private:
  ReduceUdf reduce_;
};

/// Emits a single record holding the input cardinality as int64.
class CountOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kCount; }
  int arity() const override { return 1; }
};

/// Map with a broadcast side input: input 0 is the main dataflow, input 1 is
/// materialized in full and handed to every UDF call (Spark-style broadcast).
class BroadcastMapOp : public PhysicalOperator {
 public:
  explicit BroadcastMapOp(BroadcastMapUdf udf) : udf_(std::move(udf)) {}
  OpKind kind() const override { return OpKind::kBroadcastMap; }
  int arity() const override { return 2; }
  const BroadcastMapUdf& udf() const { return udf_; }

 private:
  BroadcastMapUdf udf_;
};

/// Equi-join on extracted keys; output is Record::Concat(left, right).
class JoinOp : public PhysicalOperator {
 public:
  JoinOp(KeyUdf left_key, KeyUdf right_key,
         JoinAlgorithm algorithm = JoinAlgorithm::kHash)
      : left_key_(std::move(left_key)), right_key_(std::move(right_key)),
        algorithm_(algorithm) {}
  OpKind kind() const override { return OpKind::kJoin; }
  std::string kind_name() const override {
    return algorithm_ == JoinAlgorithm::kHash ? "HashJoin" : "SortMergeJoin";
  }
  int arity() const override { return 2; }
  std::string FingerprintToken() const override;
  const KeyUdf& left_key() const { return left_key_; }
  const KeyUdf& right_key() const { return right_key_; }
  JoinAlgorithm algorithm() const { return algorithm_; }
  void set_algorithm(JoinAlgorithm a) { algorithm_ = a; }

 private:
  KeyUdf left_key_;
  KeyUdf right_key_;
  JoinAlgorithm algorithm_;
};

/// General theta join evaluated by nested loops over the pair space.
class ThetaJoinOp : public PhysicalOperator {
 public:
  explicit ThetaJoinOp(ThetaUdf condition) : condition_(std::move(condition)) {}
  OpKind kind() const override { return OpKind::kThetaJoin; }
  int arity() const override { return 2; }
  std::string FingerprintToken() const override;
  const ThetaUdf& condition() const { return condition_; }

 private:
  ThetaUdf condition_;
};

/// Inequality join on two column pairs via the IEJoin algorithm — the
/// extensibility showcase the paper adds to RHEEM's operator pool (§5.1).
class IEJoinOp : public PhysicalOperator {
 public:
  explicit IEJoinOp(IEJoinSpec spec) : spec_(spec) {}
  OpKind kind() const override { return OpKind::kIEJoin; }
  int arity() const override { return 2; }
  const IEJoinSpec& spec() const { return spec_; }

 private:
  IEJoinSpec spec_;
};

class CrossProductOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kCrossProduct; }
  int arity() const override { return 2; }
};

class UnionOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kUnion; }
  int arity() const override { return 2; }
};

/// Set intersection (distinct output; a record qualifies when it appears in
/// both inputs). Matches Spark's RDD::intersection semantics.
class IntersectOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kIntersect; }
  int arity() const override { return 2; }
};

/// Set difference: distinct records of the left input absent from the right.
class SubtractOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kSubtract; }
  int arity() const override { return 2; }
};

/// The k records with the smallest keys (ascending=false: largest), output
/// in key order — a fused Sort + Limit the optimizer can cost as O(n log k).
class TopKOp : public PhysicalOperator {
 public:
  TopKOp(KeyUdf key, int64_t k, bool ascending = true)
      : key_(std::move(key)), k_(k), ascending_(ascending) {}
  OpKind kind() const override { return OpKind::kTopK; }
  int arity() const override { return 1; }
  std::string FingerprintToken() const override {
    return kind_name() + "|k=" + std::to_string(k_) +
           (ascending_ ? "|asc" : "|desc");
  }
  const KeyUdf& key() const { return key_; }
  int64_t k() const { return k_; }
  bool ascending() const { return ascending_; }

 private:
  KeyUdf key_;
  int64_t k_;
  bool ascending_;
};

/// \brief Fixed-iteration loop (the ML apps' `Loop` logical operator compiles
/// here). Inputs: 0 = initial state, 1 = loop-invariant data. The body is a
/// nested Plan reading LoopStateOp/LoopDataOp placeholders and producing the
/// next state from its sink. After `num_iterations` rounds the final state is
/// this operator's output.
class RepeatOp : public PhysicalOperator {
 public:
  RepeatOp(int num_iterations, std::shared_ptr<Plan> body)
      : num_iterations_(num_iterations), body_(std::move(body)) {}
  OpKind kind() const override { return OpKind::kRepeat; }
  int arity() const override { return 2; }
  std::string FingerprintToken() const override;
  int num_iterations() const { return num_iterations_; }
  const Plan& body() const { return *body_; }
  std::shared_ptr<Plan> body_ptr() const { return body_; }

 private:
  int num_iterations_;
  std::shared_ptr<Plan> body_;
};

/// Condition-driven loop: runs the body while `condition(state, iter)` is
/// true, up to `max_iterations` as a safety bound.
class DoWhileOp : public PhysicalOperator {
 public:
  DoWhileOp(LoopConditionUdf condition, int max_iterations,
            std::shared_ptr<Plan> body)
      : condition_(std::move(condition)), max_iterations_(max_iterations),
        body_(std::move(body)) {}
  OpKind kind() const override { return OpKind::kDoWhile; }
  int arity() const override { return 2; }
  std::string FingerprintToken() const override;
  const LoopConditionUdf& condition() const { return condition_; }
  int max_iterations() const { return max_iterations_; }
  const Plan& body() const { return *body_; }
  std::shared_ptr<Plan> body_ptr() const { return body_; }

 private:
  LoopConditionUdf condition_;
  int max_iterations_;
  std::shared_ptr<Plan> body_;
};

/// Terminal sink: materializes its input as the job result.
class CollectOp : public PhysicalOperator {
 public:
  OpKind kind() const override { return OpKind::kCollect; }
  int arity() const override { return 1; }
};

/// Pretty-printed declarative payload of `op` for EXPLAIN output and trace
/// spans — e.g. `filter=age>30 AND dept=="eng"`, `map=[$0, $1+1]`,
/// `join=($1, $0)`, `theta=$3>$8` — or "" when the operator carries no
/// expression.
std::string DeclarativeDetail(const PhysicalOperator& op);

/// True when `op` carries a UDF closure the optimizer cannot introspect
/// (i.e. a udf/key slot with no declarative expression attached).
bool HasOpaqueUdf(const PhysicalOperator& op);

}  // namespace rheem

#endif  // RHEEM_CORE_OPERATORS_PHYSICAL_OPS_H_

#include "core/operators/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/expr/expr.h"
#include "data/record.h"

namespace rheem {
namespace kernels {
namespace {

// ---------------------------------------------------------------------------
// Per-kernel timing registry
// ---------------------------------------------------------------------------

enum KernelId : int {
  kIdMap = 0,
  kIdFlatMap,
  kIdFilter,
  kIdProject,
  kIdZipWithId,
  kIdSample,
  kIdBroadcastMap,
  kIdReduceByKey,
  kIdHashGroupBy,
  kIdSortByKey,
  kIdSortGroupBy,
  kIdGlobalReduce,
  kIdCount,
  kIdHashJoin,
  kIdFusedPipeline,
  kNumKernelIds,
};

constexpr const char* kKernelNames[kNumKernelIds] = {
    "Map",         "FlatMap",     "Filter",    "Project",
    "ZipWithId",   "Sample",      "BroadcastMap", "ReduceByKey",
    "HashGroupBy", "SortByKey",   "SortGroupBy",  "GlobalReduce",
    "Count",       "HashJoin",    "FusedPipeline"};

struct TimingCell {
  std::atomic<int64_t> invocations{0};
  std::atomic<int64_t> records_in{0};
  std::atomic<int64_t> wall{0};
  std::atomic<int64_t> parallel_cpu{0};
  std::atomic<int64_t> critical{0};
  std::atomic<int64_t> serial{0};
};

TimingCell* Cells() {
  static TimingCell cells[kNumKernelIds];
  return cells;
}

// Registry mirrors of the timing cells, aggregated across kernels. Pointers
// are resolved once (the registry never invalidates them) so the enabled path
// pays one relaxed atomic add per event and the disabled path only the
// enabled() check inside CountIfEnabled.
Counter* InvocationsCounter() {
  static Counter* c = MetricsRegistry::Global().counter("kernels.invocations");
  return c;
}
Counter* RecordsInCounter() {
  static Counter* c = MetricsRegistry::Global().counter("kernels.records_in");
  return c;
}
Counter* MorselsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("kernels.morsels_executed");
  return c;
}

/// Accumulates one kernel call's timing and flushes it into the registry on
/// destruction. Morsel bodies report their thread-CPU time via AddMorselCpu
/// (any thread); the caller reports the wall time of each parallel region via
/// AddLoopWall (caller thread only). Everything not inside a parallel region
/// counts as the call's serial part.
class TimingScope {
 public:
  TimingScope(int id, std::size_t records) : id_(id), records_(records) {
    // One span per kernel invocation ("morsel level" of the trace tree); it
    // nests under whatever stage/chain span the calling thread has open.
    if (Tracer::Global().enabled()) {
      span_.emplace("kernel", "kernels");
      span_->AddTag("kernel", kKernelNames[id_]);
      span_->AddTag("records_in", static_cast<int64_t>(records_));
    }
  }

  ~TimingScope() {
    const int64_t wall = wall_.ElapsedMicros();
    TimingCell& c = Cells()[id_];
    c.invocations.fetch_add(1, std::memory_order_relaxed);
    c.records_in.fetch_add(static_cast<int64_t>(records_),
                           std::memory_order_relaxed);
    c.wall.fetch_add(wall, std::memory_order_relaxed);
    c.parallel_cpu.fetch_add(pcpu_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    c.critical.fetch_add(critical_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    c.serial.fetch_add(std::max<int64_t>(0, wall - loop_wall_),
                       std::memory_order_relaxed);
    CountIfEnabled(InvocationsCounter(), 1);
    CountIfEnabled(RecordsInCounter(), static_cast<int64_t>(records_));
  }

  void AddMorselCpu(int64_t micros) {
    pcpu_.fetch_add(micros, std::memory_order_relaxed);
    int64_t cur = critical_.load(std::memory_order_relaxed);
    while (micros > cur && !critical_.compare_exchange_weak(
                               cur, micros, std::memory_order_relaxed)) {
    }
  }

  void AddLoopWall(int64_t micros) { loop_wall_ += micros; }

 private:
  int id_;
  std::size_t records_;
  std::optional<TraceSpan> span_;  // open only while tracing is enabled
  Stopwatch wall_;
  std::atomic<int64_t> pcpu_{0};
  std::atomic<int64_t> critical_{0};
  int64_t loop_wall_ = 0;  // touched by the calling thread only
};

// ---------------------------------------------------------------------------
// Morsel helpers
// ---------------------------------------------------------------------------

using MorselRange = std::pair<std::size_t, std::size_t>;

std::vector<MorselRange> MorselRanges(std::size_t n, std::size_t morsel_size) {
  if (morsel_size == 0) morsel_size = 1;
  std::vector<MorselRange> ranges;
  ranges.reserve((n + morsel_size - 1) / morsel_size);
  for (std::size_t b = 0; b < n; b += morsel_size) {
    ranges.emplace_back(b, std::min(n, b + morsel_size));
  }
  return ranges;
}

/// Inputs of at most one morsel stay on the serial path: no task overhead for
/// small data, and every existing small-input caller keeps byte-exact
/// behavior regardless of the `kernels.parallel` setting.
bool UseParallel(const KernelOptions& opts, std::size_t n) {
  return opts.parallel && n > std::max<std::size_t>(1, opts.morsel_size);
}

ThreadPool& PoolFor(const KernelOptions& opts) {
  return opts.pool != nullptr ? *opts.pool : DefaultThreadPool();
}

/// Runs body(m, begin, end) for every morsel on the pool. Reports the first
/// failure in *morsel order*, so errors are as deterministic as the serial
/// scan (the first failing record lives in the first failing morsel).
template <typename Body>
Status RunMorsels(const KernelOptions& opts,
                  const std::vector<MorselRange>& ranges, TimingScope& scope,
                  const Body& body) {
  std::vector<Status> statuses(ranges.size());
  Stopwatch loop;
  PoolFor(opts).ParallelFor(ranges.size(), [&](std::size_t m) {
    ThreadCpuTimer cpu;
    statuses[m] = body(m, ranges[m].first, ranges[m].second);
    scope.AddMorselCpu(cpu.ElapsedMicros());
  });
  scope.AddLoopWall(loop.ElapsedMicros());
  CountIfEnabled(MorselsCounter(), static_cast<int64_t>(ranges.size()));
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

/// Splices per-morsel outputs in morsel order, reserving the final size once.
Dataset ConcatMorsels(std::vector<std::vector<Record>> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return Dataset(std::move(out));
}

/// Greedily packs consecutive groups (given per-group record counts) into
/// chunks of roughly `target` input records, so group-UDF application
/// parallelizes without spawning a task per tiny group.
std::vector<MorselRange> ChunkBySize(const std::vector<std::size_t>& sizes,
                                     std::size_t target) {
  if (target == 0) target = 1;
  std::vector<MorselRange> chunks;
  std::size_t start = 0;
  std::size_t load = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    load += sizes[i];
    if (load >= target) {
      chunks.emplace_back(start, i + 1);
      start = i + 1;
      load = 0;
    }
  }
  if (start < sizes.size()) chunks.emplace_back(start, sizes.size());
  return chunks;
}

Status CheckProjection(const std::vector<int>& columns, const Record& r) {
  for (int c : columns) {
    if (static_cast<std::size_t>(c) >= r.size()) {
      return Status::OutOfRange("projection column " + std::to_string(c) +
                                " out of range for record of arity " +
                                std::to_string(r.size()));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Columnar execution layer
// ---------------------------------------------------------------------------
//
// Eligible kernels convert their input to a columnar Batch at the operator
// boundary (conversions are counted by batch.cc in batch.conversions_total),
// evaluate declarative expressions column-at-a-time via
// expr::EvalPredicateView / EvalExprView, and box records only at the output
// boundary. Every columnar path is byte-identical to the row path; shapes
// the vectorized code cannot reproduce exactly (null or NaN keys, nulls in
// aggregate columns, mixed-type columns, ragged arity) fall back to the row
// path and count batch.fallbacks_total.

Counter* RowsVectorizedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("batch.rows_vectorized_total");
  return c;
}
Counter* BatchFallbacksCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("batch.fallbacks_total");
  return c;
}

std::atomic<bool>& ColumnarFlag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("RHEEM_FORCE_ROW");
    return env == nullptr || env[0] != '1';
  }()};
  return flag;
}

bool CanGoColumnar(const KernelOptions& opts) {
  return opts.columnar && ColumnarEnabled();
}

/// Sub-range [b, e) of a full-batch view, for per-morsel vectorized
/// evaluation over selection positions.
BatchView SubView(const BatchView& full, std::size_t b, std::size_t e) {
  BatchView v = full;
  if (full.sel != nullptr) {
    v.sel = full.sel + b;
  } else {
    v.base = full.base + b;
  }
  v.n = e - b;
  return v;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Canonical 64-bit key of a numeric/bool group value: the bits of its
/// double representation, which is exactly Value's cross-type equality class
/// (Value::Compare runs int64/double through doubles, so Value(2) and
/// Value(2.0) — or int64s beyond 2^53 whose doubles collide — merge here the
/// same way the row path's Value maps merge them). -0.0 collapses to +0.0
/// because Compare treats them as equal. NaN has no canonical key;
/// ColumnarKeyable rejects it.
uint64_t NumericKeyBits(double d) {
  if (d == 0.0) d = 0.0;  // -0.0 and +0.0 are one key
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double NumericKeyValue(const ColumnData& c, std::size_t row) {
  switch (c.type) {
    case ValueType::kInt64:
      return static_cast<double>(c.i64[row]);
    case ValueType::kDouble:
      return c.f64[row];
    case ValueType::kBool:
      return c.b8[row] != 0 ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

/// Can `c` drive a columnar group/join key? Requires a concrete scalar type
/// and no nulls or NaNs among rows row(0..n): null keys group fine in the
/// row path's Value maps, and NaN compares equal to *everything* under
/// Value::Compare — both need the row path's semantics.
template <typename RowFn>
bool ColumnarKeyable(const ColumnData& c, std::size_t n, const RowFn& row) {
  if (c.type != ValueType::kInt64 && c.type != ValueType::kDouble &&
      c.type != ValueType::kBool && c.type != ValueType::kString) {
    return false;
  }
  if (c.has_nulls()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (c.IsNull(row(i))) return false;
    }
  }
  if (c.type == ValueType::kDouble) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = c.f64[row(i)];
      if (d != d) return false;
    }
  }
  return true;
}

/// Open-addressing uint64 -> group-id table (power-of-two capacity, linear
/// probing, SplitMix64 finalizer). The per-morsel group tables are the
/// hottest structure of the columnar aggregation path; a flat table avoids
/// unordered_map's per-node allocations and pointer chasing.
class FlatU64Table {
 public:
  FlatU64Table() { Rehash(16); }

  /// Group id for `k`; assigns `next_id` (setting *inserted) when new.
  uint32_t FindOrInsert(uint64_t k, uint32_t next_id, bool* inserted) {
    if ((count_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    std::size_t i = SplitMix64(k) & mask_;
    while (slots_[i].used != 0) {
      if (slots_[i].key == k) {
        *inserted = false;
        return slots_[i].id;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{k, next_id, 1};
    ++count_;
    *inserted = true;
    return next_id;
  }

  /// Group id for `k`, or UINT32_MAX when absent.
  uint32_t Find(uint64_t k) const {
    std::size_t i = SplitMix64(k) & mask_;
    while (slots_[i].used != 0) {
      if (slots_[i].key == k) return slots_[i].id;
      i = (i + 1) & mask_;
    }
    return UINT32_MAX;
  }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t id = 0;
    uint8_t used = 0;
  };
  void Rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& s : old) {
      if (s.used == 0) continue;
      std::size_t i = SplitMix64(s.key) & mask_;
      while (slots_[i].used != 0) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

// --- columnar grouped aggregation (ReduceByKey core) -----------------------

/// Per-morsel (and merged) group accumulators, id-indexed parallel arrays.
/// Aggregate state is group-major: slot [g * naggs + a] holds column a of
/// group g, in the int64 or double array according to the column's type
/// (the other array's slot is dead weight, never read).
struct GroupState {
  std::vector<uint32_t> first_row;  // physical row of the first member
  std::vector<uint32_t> count;
  std::vector<double> num_rep;            // numeric/bool keys: sort value
  std::vector<uint64_t> key_bits;         // numeric/bool keys: canonical bits
  std::vector<std::string_view> str_rep;  // string keys (into the key column)
  std::vector<int64_t> acc_i;
  std::vector<double> acc_d;
  FlatU64Table ntable;
  std::unordered_map<std::string_view, uint32_t> stable;

  std::size_t size() const { return first_row.size(); }
};

/// Folds selection positions [b, e) of `in` into `st`. `keys` holds the key
/// for position p at dense index p - b. Accumulator updates mirror
/// CombineAgg exactly: int64 sums wrap via unsigned arithmetic, min/max
/// compare through doubles (Value::Compare's numeric tower) and keep the
/// accumulator on ties — which also makes NaN aggregate values keep the
/// accumulator, like Compare's "NaN equals everything".
void AccumulateGroups(const Batch& in, const ColumnData& keys,
                      const std::vector<AggSpec>& aggs, std::size_t b,
                      std::size_t e, GroupState* st) {
  const bool str_key = keys.type == ValueType::kString;
  const std::size_t naggs = aggs.size();
  for (std::size_t p = b; p < e; ++p) {
    const std::size_t row = in.RowAt(p);
    const uint32_t next = static_cast<uint32_t>(st->size());
    bool inserted = false;
    uint32_t gid;
    if (str_key) {
      auto [it, fresh] = st->stable.try_emplace(keys.StringAt(p - b), next);
      inserted = fresh;
      gid = it->second;
      if (fresh) st->str_rep.push_back(it->first);
    } else {
      const double kd = NumericKeyValue(keys, p - b);
      gid = st->ntable.FindOrInsert(NumericKeyBits(kd), next, &inserted);
      if (inserted) {
        st->num_rep.push_back(kd);
        st->key_bits.push_back(NumericKeyBits(kd));
      }
    }
    if (inserted) {
      st->first_row.push_back(static_cast<uint32_t>(row));
      st->count.push_back(1);
      for (std::size_t a = 0; a < naggs; ++a) {
        int64_t vi = 0;
        double vd = 0.0;
        if (aggs[a].kind != AggKind::kFirst) {
          const ColumnData& col = in.column(a);
          if (col.type == ValueType::kInt64) {
            vi = col.i64[row];
          } else {
            vd = col.f64[row];
          }
        }
        st->acc_i.push_back(vi);
        st->acc_d.push_back(vd);
      }
      continue;
    }
    ++st->count[gid];
    const std::size_t base = static_cast<std::size_t>(gid) * naggs;
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggKind kind = aggs[a].kind;
      if (kind == AggKind::kFirst) continue;
      const ColumnData& col = in.column(a);
      if (col.type == ValueType::kInt64) {
        const int64_t v = col.i64[row];
        int64_t& acc = st->acc_i[base + a];
        switch (kind) {
          case AggKind::kSum:
            acc = static_cast<int64_t>(static_cast<uint64_t>(acc) +
                                       static_cast<uint64_t>(v));
            break;
          case AggKind::kMin:
            if (static_cast<double>(acc) > static_cast<double>(v)) acc = v;
            break;
          case AggKind::kMax:
            if (static_cast<double>(acc) < static_cast<double>(v)) acc = v;
            break;
          default:
            break;
        }
      } else {
        const double v = col.f64[row];
        double& acc = st->acc_d[base + a];
        switch (kind) {
          case AggKind::kSum:
            acc += v;
            break;
          case AggKind::kMin:
            if (acc > v) acc = v;
            break;
          case AggKind::kMax:
            if (acc < v) acc = v;
            break;
          default:
            break;
        }
      }
    }
  }
}

/// Merges partial `p` into `g` — fn(global, partial) operand order, the same
/// order the row path's morsel merge feeds reduce.fn, so ties keep the
/// earlier-morsel accumulator. Sum/min/max apply to both acc arrays; the
/// column's dead array carries zeros on both sides and stays dead.
void MergeGroupStates(const std::vector<AggSpec>& aggs, bool str_key,
                      GroupState* g, const GroupState& p) {
  const std::size_t naggs = aggs.size();
  for (std::size_t s = 0; s < p.size(); ++s) {
    const uint32_t next = static_cast<uint32_t>(g->size());
    bool inserted = false;
    uint32_t gid;
    if (str_key) {
      auto [it, fresh] = g->stable.try_emplace(p.str_rep[s], next);
      inserted = fresh;
      gid = it->second;
      if (fresh) g->str_rep.push_back(it->first);
    } else {
      gid = g->ntable.FindOrInsert(p.key_bits[s], next, &inserted);
      if (inserted) {
        g->num_rep.push_back(p.num_rep[s]);
        g->key_bits.push_back(p.key_bits[s]);
      }
    }
    const std::size_t pb = s * naggs;
    if (inserted) {
      g->first_row.push_back(p.first_row[s]);
      g->count.push_back(p.count[s]);
      for (std::size_t a = 0; a < naggs; ++a) {
        g->acc_i.push_back(p.acc_i[pb + a]);
        g->acc_d.push_back(p.acc_d[pb + a]);
      }
      continue;
    }
    g->count[gid] += p.count[s];
    const std::size_t gb = static_cast<std::size_t>(gid) * naggs;
    for (std::size_t a = 0; a < naggs; ++a) {
      switch (aggs[a].kind) {
        case AggKind::kFirst:
          break;
        case AggKind::kSum:
          g->acc_i[gb + a] = static_cast<int64_t>(
              static_cast<uint64_t>(g->acc_i[gb + a]) +
              static_cast<uint64_t>(p.acc_i[pb + a]));
          g->acc_d[gb + a] += p.acc_d[pb + a];
          break;
        case AggKind::kMin:
          if (static_cast<double>(g->acc_i[gb + a]) >
              static_cast<double>(p.acc_i[pb + a])) {
            g->acc_i[gb + a] = p.acc_i[pb + a];
          }
          if (g->acc_d[gb + a] > p.acc_d[pb + a]) {
            g->acc_d[gb + a] = p.acc_d[pb + a];
          }
          break;
        case AggKind::kMax:
          if (static_cast<double>(g->acc_i[gb + a]) <
              static_cast<double>(p.acc_i[pb + a])) {
            g->acc_i[gb + a] = p.acc_i[pb + a];
          }
          if (g->acc_d[gb + a] < p.acc_d[pb + a]) {
            g->acc_d[gb + a] = p.acc_d[pb + a];
          }
          break;
      }
    }
  }
}

/// Boxes the merged groups in ascending key order (the row path's std::map
/// order: numerics through doubles, strings lexicographic). A single-member
/// group's "reduction" is the untouched input record, full arity.
Dataset EmitGroups(const Batch& in, const std::vector<AggSpec>& aggs,
                   bool str_key, const GroupState& g) {
  std::vector<uint32_t> order(g.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  if (str_key) {
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return g.str_rep[a] < g.str_rep[b];
    });
  } else {
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return g.num_rep[a] < g.num_rep[b];
    });
  }
  const std::size_t naggs = aggs.size();
  std::vector<Record> out;
  out.reserve(g.size());
  for (uint32_t gi : order) {
    if (g.count[gi] == 1) {
      out.push_back(in.RecordAt(g.first_row[gi]));
      continue;
    }
    std::vector<Value> fields;
    fields.reserve(naggs);
    const std::size_t base = static_cast<std::size_t>(gi) * naggs;
    for (std::size_t a = 0; a < naggs; ++a) {
      if (aggs[a].kind == AggKind::kFirst) {
        fields.push_back(in.column(a).ValueAt(g.first_row[gi]));
      } else if (in.column(a).type == ValueType::kInt64) {
        fields.push_back(Value(g.acc_i[base + a]));
      } else {
        fields.push_back(Value(g.acc_d[base + a]));
      }
    }
    out.push_back(Record(std::move(fields)));
  }
  return Dataset(std::move(out));
}

/// The shared columnar grouped-aggregation core (Dataset-level ReduceByKey
/// and ReduceByKeyBatch). Unsupported when the batch shapes don't meet the
/// vectorization rules; callers fall back to the row path.
Result<Dataset> GroupedAggregate(const expr::Expr& key_expr,
                                 const std::vector<AggSpec>& aggs,
                                 const Batch& in, const KernelOptions& opts,
                                 TimingScope& scope) {
  const std::size_t n = in.num_selected();
  if (n == 0) return Dataset();
  if (aggs.empty() || aggs.size() > in.num_columns()) {
    return Status::Unsupported("aggregate spec wider than the batch");
  }
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].column != static_cast<int>(a)) {
      return Status::Unsupported("non-positional aggregate spec");
    }
    if (aggs[a].kind == AggKind::kFirst) continue;
    const ColumnData& col = in.column(a);
    if (col.type != ValueType::kInt64 && col.type != ValueType::kDouble) {
      return Status::Unsupported("non-numeric aggregate column");
    }
    if (col.has_nulls()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (col.IsNull(in.RowAt(i))) {
          return Status::Unsupported("nulls in an aggregate column");
        }
      }
    }
  }
  std::vector<const ColumnData*> ptrs;
  const BatchView view = in.View(&ptrs);
  const auto ranges = UseParallel(opts, n)
                          ? MorselRanges(n, opts.morsel_size)
                          : std::vector<MorselRange>{{0, n}};
  std::vector<ColumnData> keys(ranges.size());
  std::vector<GroupState> partials(ranges.size());
  auto body = [&](std::size_t m, std::size_t b, std::size_t e) -> Status {
    expr::EvalExprView(key_expr, SubView(view, b, e), &keys[m]);
    auto ident = [](std::size_t i) { return i; };
    if (!ColumnarKeyable(keys[m], e - b, ident)) {
      return Status::Unsupported("key column not columnar-keyable");
    }
    AccumulateGroups(in, keys[m], aggs, b, e, &partials[m]);
    return Status::OK();
  };
  if (ranges.size() == 1) {
    RHEEM_RETURN_IF_ERROR(body(0, 0, n));
  } else {
    RHEEM_RETURN_IF_ERROR(RunMorsels(opts, ranges, scope, body));
  }
  const bool str_key = keys[0].type == ValueType::kString;
  GroupState merged = std::move(partials[0]);
  for (std::size_t m = 1; m < partials.size(); ++m) {
    MergeGroupStates(aggs, str_key, &merged, partials[m]);
  }
  CountIfEnabled(RowsVectorizedCounter(), static_cast<int64_t>(n));
  return EmitGroups(in, aggs, str_key, merged);
}

// --- columnar HashGroupBy / HashJoin ---------------------------------------

/// Columnar HashGroupBy front half: vectorized key evaluation + flat-table
/// group-id assignment + two-pass bucketing. The group-UDF phase is the same
/// boxed-record code as the row path (whole groups reach the closure either
/// way); group order is first-seen, members ascend — exactly the row path's
/// try_emplace + key_order bookkeeping.
Result<Dataset> HashGroupByColumnar(const KeyUdf& key, const GroupUdf& group,
                                    const Dataset& in,
                                    const KernelOptions& opts,
                                    TimingScope& scope) {
  const std::size_t width =
      static_cast<std::size_t>(expr::MaxFieldIndex(*key.expr) + 1);
  auto converted = Batch::FromDatasetPrefix(in, width);
  if (!converted.ok()) return converted.status();
  const Batch& batch = *converted;
  std::vector<const ColumnData*> ptrs;
  const BatchView view = batch.View(&ptrs);
  ColumnData keys;
  expr::EvalExprView(*key.expr, view, &keys);
  const std::size_t n = in.size();
  auto ident = [](std::size_t i) { return i; };
  if (!ColumnarKeyable(keys, n, ident)) {
    return Status::Unsupported("key column not columnar-keyable");
  }
  const bool str_key = keys.type == ValueType::kString;
  std::vector<uint32_t> gid(n);
  std::vector<uint32_t> first_row;
  std::vector<std::size_t> counts;
  FlatU64Table ntable;
  std::unordered_map<std::string_view, uint32_t> stable;
  for (std::size_t i = 0; i < n; ++i) {
    const uint32_t next = static_cast<uint32_t>(first_row.size());
    bool inserted = false;
    uint32_t g;
    if (str_key) {
      auto [it, fresh] = stable.try_emplace(keys.StringAt(i), next);
      inserted = fresh;
      g = it->second;
    } else {
      g = ntable.FindOrInsert(NumericKeyBits(NumericKeyValue(keys, i)), next,
                              &inserted);
    }
    if (inserted) {
      first_row.push_back(static_cast<uint32_t>(i));
      counts.push_back(0);
    }
    ++counts[g];
    gid[i] = g;
  }
  CountIfEnabled(RowsVectorizedCounter(), static_cast<int64_t>(n));
  const std::size_t num_groups = first_row.size();
  std::vector<std::size_t> offsets(num_groups + 1, 0);
  for (std::size_t g2 = 0; g2 < num_groups; ++g2) {
    offsets[g2 + 1] = offsets[g2] + counts[g2];
  }
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<uint32_t> members(n);
  for (std::size_t i = 0; i < n; ++i) {
    members[cursor[gid[i]]++] = static_cast<uint32_t>(i);
  }
  auto run_groups = [&](std::size_t gb, std::size_t ge,
                        std::vector<Record>& out) -> Status {
    for (std::size_t g2 = gb; g2 < ge; ++g2) {
      std::vector<Record> mem;
      mem.reserve(offsets[g2 + 1] - offsets[g2]);
      for (std::size_t s = offsets[g2]; s < offsets[g2 + 1]; ++s) {
        mem.push_back(in.at(members[s]));
      }
      std::vector<Record> produced =
          group.fn(keys.ValueAt(first_row[g2]), mem);
      for (auto& p : produced) out.push_back(std::move(p));
    }
    return Status::OK();
  };
  if (!UseParallel(opts, n)) {
    std::vector<Record> out;
    RHEEM_RETURN_IF_ERROR(run_groups(0, num_groups, out));
    return Dataset(std::move(out));
  }
  const auto chunks = ChunkBySize(counts, opts.morsel_size);
  std::vector<std::vector<Record>> parts(chunks.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, chunks, scope, [&](std::size_t c, std::size_t b, std::size_t e) {
        return run_groups(b, e, parts[c]);
      }));
  return ConcatMorsels(std::move(parts));
}

/// Columnar HashJoin: vectorized key evaluation on both sides, a flat
/// bits -> row-list table on the build (right) side, morsel-parallel probe.
/// Output rows are Record::Concat of the original records — probe order x
/// build input order, like the row kernel.
Result<Dataset> HashJoinColumnar(const KeyUdf& left_key,
                                 const KeyUdf& right_key, const Dataset& left,
                                 const Dataset& right,
                                 const KernelOptions& opts,
                                 TimingScope& scope) {
  const std::size_t lw =
      static_cast<std::size_t>(expr::MaxFieldIndex(*left_key.expr) + 1);
  const std::size_t rw =
      static_cast<std::size_t>(expr::MaxFieldIndex(*right_key.expr) + 1);
  auto lconv = Batch::FromDatasetPrefix(left, lw);
  if (!lconv.ok()) return lconv.status();
  auto rconv = Batch::FromDatasetPrefix(right, rw);
  if (!rconv.ok()) return rconv.status();
  std::vector<const ColumnData*> lptrs, rptrs;
  const BatchView lview = lconv->View(&lptrs);
  const BatchView rview = rconv->View(&rptrs);
  ColumnData lkeys, rkeys;
  expr::EvalExprView(*left_key.expr, lview, &lkeys);
  expr::EvalExprView(*right_key.expr, rview, &rkeys);
  auto ident = [](std::size_t i) { return i; };
  if (!ColumnarKeyable(lkeys, left.size(), ident) ||
      !ColumnarKeyable(rkeys, right.size(), ident)) {
    return Status::Unsupported("join key column not columnar-keyable");
  }
  CountIfEnabled(RowsVectorizedCounter(),
                 static_cast<int64_t>(left.size() + right.size()));
  // Value equality never crosses type classes (bool, numeric, and string
  // rank differently in Value::Compare), so class-mismatched keys join to
  // nothing — exactly what the row path's probe misses produce.
  auto cls = [](ValueType t) {
    if (t == ValueType::kString) return 2;
    if (t == ValueType::kBool) return 1;
    return 0;
  };
  if (cls(lkeys.type) != cls(rkeys.type)) return Dataset();
  const bool str_key = lkeys.type == ValueType::kString;
  FlatU64Table ntable;
  std::unordered_map<std::string_view, uint32_t> stable;
  std::vector<std::vector<uint32_t>> rows_by_id;
  for (std::size_t j = 0; j < right.size(); ++j) {
    const uint32_t next = static_cast<uint32_t>(rows_by_id.size());
    bool inserted = false;
    uint32_t id;
    if (str_key) {
      auto [it, fresh] = stable.try_emplace(rkeys.StringAt(j), next);
      inserted = fresh;
      id = it->second;
    } else {
      id = ntable.FindOrInsert(NumericKeyBits(NumericKeyValue(rkeys, j)),
                               next, &inserted);
    }
    if (inserted) rows_by_id.emplace_back();
    rows_by_id[id].push_back(static_cast<uint32_t>(j));
  }
  auto probe_range = [&](std::size_t b, std::size_t e,
                         std::vector<Record>& out) {
    for (std::size_t i = b; i < e; ++i) {
      const std::vector<uint32_t>* matches = nullptr;
      if (str_key) {
        auto it = stable.find(lkeys.StringAt(i));
        if (it != stable.end()) matches = &rows_by_id[it->second];
      } else {
        const uint32_t id =
            ntable.Find(NumericKeyBits(NumericKeyValue(lkeys, i)));
        if (id != UINT32_MAX) matches = &rows_by_id[id];
      }
      if (matches == nullptr) continue;
      for (uint32_t j : *matches) {
        out.push_back(Record::Concat(left.at(i), right.at(j)));
      }
    }
  };
  if (!UseParallel(opts, std::max(left.size(), right.size()))) {
    std::vector<Record> out;
    probe_range(0, left.size(), out);
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(left.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        probe_range(b, e, parts[m]);
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

/// Appends the `src_rows` dense rows of `src` onto `dst` (holding `dst_rows`
/// so far, out of `total_rows`). Per-morsel evaluation of one expression
/// over sub-views of the same columns always yields one output type, so a
/// type mismatch here is a logic error, not a data condition.
Status AppendColumn(ColumnData* dst, std::size_t dst_rows,
                    std::size_t total_rows, const ColumnData& src,
                    std::size_t src_rows) {
  if (dst_rows == 0) {
    dst->type = src.type;
  } else if (dst->type != src.type) {
    return Status::Internal("columnar morsel output type drift");
  }
  switch (src.type) {
    case ValueType::kInt64:
      dst->i64.insert(dst->i64.end(), src.i64.begin(), src.i64.end());
      break;
    case ValueType::kDouble:
      dst->f64.insert(dst->f64.end(), src.f64.begin(), src.f64.end());
      break;
    case ValueType::kBool:
      dst->b8.insert(dst->b8.end(), src.b8.begin(), src.b8.end());
      break;
    case ValueType::kString: {
      if (dst->str_offsets.empty()) dst->str_offsets.push_back(0);
      const uint32_t base = dst->str_offsets.back();
      for (std::size_t i = 1; i <= src_rows; ++i) {
        dst->str_offsets.push_back(base + src.str_offsets[i]);
      }
      dst->str_bytes.append(src.str_bytes);
      break;
    }
    case ValueType::kNull:
      break;  // all-null: only the bitmap below carries information
    default:
      return Status::Internal("unexpected columnar output type");
  }
  if (src.has_nulls() || src.type == ValueType::kNull) {
    for (std::size_t i = 0; i < src_rows; ++i) {
      if (src.type == ValueType::kNull || src.IsNull(i)) {
        dst->MarkNull(dst_rows + i, total_rows);
      }
    }
  }
  return Status::OK();
}

/// Decorated sort entry for the parallel run-sort + merge. Ordering by
/// (key, original index) is a total order equivalent to stable_sort by key.
struct SortEntry {
  Value key;
  std::size_t index = 0;
};

bool SortEntryLess(const SortEntry& a, const SortEntry& b) {
  const int c = a.key.Compare(b.key);
  if (c != 0) return c < 0;
  return a.index < b.index;
}

/// Parallel decorate + per-morsel sort + pairwise parallel merge. On return
/// `buf_a` and `buf_b` are sized n and the returned pointer (into one of
/// them) holds all n entries in stable key order.
template <typename KeyFn>
SortEntry* ParallelSortEntries(const KeyFn& key_fn, const Dataset& in,
                               const KernelOptions& opts, TimingScope& scope,
                               std::vector<SortEntry>& buf_a,
                               std::vector<SortEntry>& buf_b) {
  const std::size_t n = in.size();
  const auto ranges = MorselRanges(n, opts.morsel_size);
  buf_a.resize(n);
  buf_b.resize(n);
  Stopwatch sort_loop;
  PoolFor(opts).ParallelFor(ranges.size(), [&](std::size_t m) {
    ThreadCpuTimer cpu;
    const auto [b, e] = ranges[m];
    for (std::size_t i = b; i < e; ++i) {
      buf_a[i] = SortEntry{key_fn(in.at(i)), i};
    }
    std::sort(buf_a.begin() + static_cast<std::ptrdiff_t>(b),
              buf_a.begin() + static_cast<std::ptrdiff_t>(e), SortEntryLess);
    scope.AddMorselCpu(cpu.ElapsedMicros());
  });
  scope.AddLoopWall(sort_loop.ElapsedMicros());
  CountIfEnabled(MorselsCounter(), static_cast<int64_t>(ranges.size()));

  std::vector<std::size_t> bounds;
  bounds.reserve(ranges.size() + 1);
  bounds.push_back(0);
  for (const auto& r : ranges) bounds.push_back(r.second);
  SortEntry* src = buf_a.data();
  SortEntry* dst = buf_b.data();
  while (bounds.size() > 2) {
    const std::size_t runs = bounds.size() - 1;
    const std::size_t merged_runs = (runs + 1) / 2;
    Stopwatch level;
    PoolFor(opts).ParallelFor(merged_runs, [&](std::size_t p) {
      ThreadCpuTimer cpu;
      const std::size_t lo = bounds[2 * p];
      const std::size_t mid = bounds[std::min(2 * p + 1, runs)];
      const std::size_t hi = bounds[std::min(2 * p + 2, runs)];
      if (mid == hi) {
        // Odd run out: carry it to the next level unchanged.
        std::move(src + lo, src + mid, dst + lo);
      } else {
        std::merge(std::make_move_iterator(src + lo),
                   std::make_move_iterator(src + mid),
                   std::make_move_iterator(src + mid),
                   std::make_move_iterator(src + hi), dst + lo, SortEntryLess);
      }
      scope.AddMorselCpu(cpu.ElapsedMicros());
    });
    scope.AddLoopWall(level.ElapsedMicros());
    std::vector<std::size_t> next_bounds;
    next_bounds.reserve(merged_runs + 1);
    next_bounds.push_back(0);
    for (std::size_t p = 0; p < merged_runs; ++p) {
      next_bounds.push_back(bounds[std::min(2 * p + 2, runs)]);
    }
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  return src;
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelOptions / timing API
// ---------------------------------------------------------------------------

KernelOptions KernelOptions::FromConfig(const Config& config,
                                        ThreadPool* pool) {
  KernelOptions o;
  o.parallel = config.GetBool("kernels.parallel", o.parallel).ValueOr(o.parallel);
  o.columnar = config.GetBool("kernels.columnar", o.columnar).ValueOr(o.columnar);
  const int64_t morsel =
      config.GetInt("kernels.morsel_size", static_cast<int64_t>(o.morsel_size))
          .ValueOr(static_cast<int64_t>(o.morsel_size));
  if (morsel > 0) o.morsel_size = static_cast<std::size_t>(morsel);
  o.pool = pool;
  return o;
}

bool ColumnarEnabled() {
  return ColumnarFlag().load(std::memory_order_relaxed);
}

void SetColumnarEnabled(bool enabled) {
  ColumnarFlag().store(enabled, std::memory_order_relaxed);
}

std::vector<KernelTiming> SnapshotKernelTimings() {
  std::vector<KernelTiming> out;
  for (int id = 0; id < kNumKernelIds; ++id) {
    TimingCell& c = Cells()[id];
    KernelTiming t;
    t.kernel = kKernelNames[id];
    t.invocations = c.invocations.load(std::memory_order_relaxed);
    if (t.invocations == 0) continue;
    t.records_in = c.records_in.load(std::memory_order_relaxed);
    t.wall_micros = c.wall.load(std::memory_order_relaxed);
    t.parallel_cpu_micros = c.parallel_cpu.load(std::memory_order_relaxed);
    t.critical_path_micros = c.critical.load(std::memory_order_relaxed);
    t.serial_micros = c.serial.load(std::memory_order_relaxed);
    out.push_back(std::move(t));
  }
  return out;
}

void ResetKernelTimings() {
  for (int id = 0; id < kNumKernelIds; ++id) {
    TimingCell& c = Cells()[id];
    c.invocations.store(0, std::memory_order_relaxed);
    c.records_in.store(0, std::memory_order_relaxed);
    c.wall.store(0, std::memory_order_relaxed);
    c.parallel_cpu.store(0, std::memory_order_relaxed);
    c.critical.store(0, std::memory_order_relaxed);
    c.serial.store(0, std::memory_order_relaxed);
  }
}

int64_t ModeledMicrosAtWidth(const KernelTiming& t, std::size_t workers) {
  if (workers == 0) workers = 1;
  const int64_t spread =
      t.parallel_cpu_micros / static_cast<int64_t>(workers);
  return t.serial_micros + std::max(spread, t.critical_path_micros);
}

// ---------------------------------------------------------------------------
// Record-at-a-time kernels
// ---------------------------------------------------------------------------

Result<Dataset> Map(const MapUdf& udf, const Dataset& in,
                    const KernelOptions& opts) {
  if (!udf.fn) return Status::InvalidArgument("Map UDF is empty");
  TimingScope scope(kIdMap, in.size());
  // Declarative projections run columnar: one vectorized evaluation per
  // output expression over the converted batch, boxed once at the end.
  if (!udf.projection.empty() && CanGoColumnar(opts) && !in.empty()) {
    int width = 0;
    for (const auto& f : udf.projection) {
      width = std::max(width, expr::MaxFieldIndex(*f) + 1);
    }
    auto converted =
        Batch::FromDatasetPrefix(in, static_cast<std::size_t>(width));
    if (converted.ok()) {
      CountIfEnabled(RowsVectorizedCounter(), static_cast<int64_t>(in.size()));
      std::vector<const ColumnData*> ptrs;
      const BatchView view = converted->View(&ptrs);
      auto eval_range = [&](std::size_t b, std::size_t e,
                            std::vector<Record>& out) {
        const BatchView v = SubView(view, b, e);
        std::vector<ColumnData> cols(udf.projection.size());
        for (std::size_t j = 0; j < udf.projection.size(); ++j) {
          expr::EvalExprView(*udf.projection[j], v, &cols[j]);
        }
        out.reserve(out.size() + (e - b));
        for (std::size_t i = 0; i < e - b; ++i) {
          std::vector<Value> fields;
          fields.reserve(cols.size());
          for (const ColumnData& c : cols) fields.push_back(c.ValueAt(i));
          out.push_back(Record(std::move(fields)));
        }
      };
      if (!UseParallel(opts, in.size())) {
        std::vector<Record> out;
        eval_range(0, in.size(), out);
        return Dataset(std::move(out));
      }
      const auto ranges = MorselRanges(in.size(), opts.morsel_size);
      std::vector<std::vector<Record>> parts(ranges.size());
      RHEEM_RETURN_IF_ERROR(RunMorsels(
          opts, ranges, scope,
          [&](std::size_t m, std::size_t b, std::size_t e) {
            eval_range(b, e, parts[m]);
            return Status::OK();
          }));
      return ConcatMorsels(std::move(parts));
    }
    CountIfEnabled(BatchFallbacksCounter(), 1);
  }
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& r : in.records()) out.push_back(udf.fn(r));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) part.push_back(udf.fn(in.at(i)));
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> FlatMap(const FlatMapUdf& udf, const Dataset& in,
                        const KernelOptions& opts) {
  if (!udf.fn) return Status::InvalidArgument("FlatMap UDF is empty");
  TimingScope scope(kIdFlatMap, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& r : in.records()) {
      std::vector<Record> produced = udf.fn(r);
      for (auto& p : produced) out.push_back(std::move(p));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          std::vector<Record> produced = udf.fn(in.at(i));
          for (auto& p : produced) part.push_back(std::move(p));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> Filter(const PredicateUdf& udf, const Dataset& in,
                       const KernelOptions& opts) {
  if (!udf.fn && udf.expr == nullptr) {
    return Status::InvalidArgument("Filter UDF is empty");
  }
  TimingScope scope(kIdFilter, in.size());
  // Declarative predicates take the vectorized path: the expression tree is
  // evaluated column-at-a-time over the whole batch (morsel) instead of one
  // virtual call per record.
  const expr::Expr* tree = udf.expr.get();
  // True columnar path: convert the referenced column prefix once, evaluate
  // the predicate over typed vectors, gather survivors from the input.
  if (tree != nullptr && CanGoColumnar(opts) && !in.empty()) {
    const std::size_t width =
        static_cast<std::size_t>(expr::MaxFieldIndex(*tree) + 1);
    auto converted = Batch::FromDatasetPrefix(in, width);
    if (converted.ok()) {
      CountIfEnabled(RowsVectorizedCounter(), static_cast<int64_t>(in.size()));
      std::vector<const ColumnData*> ptrs;
      const BatchView view = converted->View(&ptrs);
      auto gather_range = [&](std::size_t b, std::size_t e,
                              std::vector<Record>& out) {
        std::vector<unsigned char> keep;
        expr::EvalPredicateView(*tree, SubView(view, b, e), &keep);
        std::size_t kept = 0;
        for (unsigned char k : keep) kept += k;
        out.reserve(out.size() + kept);
        for (std::size_t i = b; i < e; ++i) {
          if (keep[i - b]) out.push_back(in.at(i));
        }
      };
      if (!UseParallel(opts, in.size())) {
        std::vector<Record> out;
        gather_range(0, in.size(), out);
        return Dataset(std::move(out));
      }
      const auto ranges = MorselRanges(in.size(), opts.morsel_size);
      std::vector<std::vector<Record>> parts(ranges.size());
      RHEEM_RETURN_IF_ERROR(RunMorsels(
          opts, ranges, scope,
          [&](std::size_t m, std::size_t b, std::size_t e) {
            gather_range(b, e, parts[m]);
            return Status::OK();
          }));
      return ConcatMorsels(std::move(parts));
    }
    CountIfEnabled(BatchFallbacksCounter(), 1);
  }
  auto decide = [&](std::size_t b, std::size_t e,
                    std::vector<std::size_t>* kept) {
    if (tree != nullptr) {
      std::vector<unsigned char> keep;
      expr::EvalPredicateBatch(*tree, in.records(), b, e, &keep);
      for (std::size_t i = b; i < e; ++i) {
        if (keep[i - b]) kept->push_back(i);
      }
    } else {
      for (std::size_t i = b; i < e; ++i) {
        if (udf.fn(in.at(i))) kept->push_back(i);
      }
    }
  };
  if (!UseParallel(opts, in.size())) {
    // Index gather: decide first, then copy exactly the survivors into a
    // right-sized vector — no reallocation churn on large outputs.
    std::vector<std::size_t> kept;
    decide(0, in.size(), &kept);
    std::vector<Record> out;
    out.reserve(kept.size());
    for (std::size_t i : kept) out.push_back(in.at(i));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        std::vector<std::size_t> kept;
        decide(b, e, &kept);
        auto& part = parts[m];
        part.reserve(kept.size());
        for (std::size_t i : kept) part.push_back(in.at(i));
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> Project(const std::vector<int>& columns, const Dataset& in,
                        const KernelOptions& opts) {
  for (int c : columns) {
    if (c < 0) return Status::InvalidArgument("negative projection column");
  }
  TimingScope scope(kIdProject, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& r : in.records()) {
      RHEEM_RETURN_IF_ERROR(CheckProjection(columns, r));
      out.push_back(r.Project(columns));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          RHEEM_RETURN_IF_ERROR(CheckProjection(columns, in.at(i)));
          part.push_back(in.at(i).Project(columns));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> Distinct(const Dataset& in) {
  // Keyed by pointers into the input — records are hashed/compared in place
  // and copied exactly once, into the right-sized output.
  struct PtrHash {
    std::size_t operator()(const Record* r) const { return r->Hash(); }
  };
  struct PtrEq {
    bool operator()(const Record* a, const Record* b) const { return *a == *b; }
  };
  std::unordered_set<const Record*, PtrHash, PtrEq> seen;
  seen.reserve(in.size());
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (seen.insert(&in.at(i)).second) kept.push_back(i);
  }
  std::vector<Record> out;
  out.reserve(kept.size());
  for (std::size_t i : kept) out.push_back(in.at(i));
  return Dataset(std::move(out));
}

Result<Dataset> SortByKey(const KeyUdf& key, const Dataset& in,
                          const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("Sort key UDF is empty");
  TimingScope scope(kIdSortByKey, in.size());
  if (!UseParallel(opts, in.size())) {
    // Decorate-sort-undecorate: evaluate the key once per record.
    std::vector<std::pair<Value, const Record*>> decorated;
    decorated.reserve(in.size());
    for (const auto& r : in.records()) decorated.emplace_back(key.fn(r), &r);
    std::stable_sort(decorated.begin(), decorated.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& [k, r] : decorated) out.push_back(*r);
    return Dataset(std::move(out));
  }
  std::vector<SortEntry> buf_a, buf_b;
  const SortEntry* sorted =
      ParallelSortEntries(key.fn, in, opts, scope, buf_a, buf_b);
  std::vector<Record> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.push_back(in.at(sorted[i].index));
  }
  return Dataset(std::move(out));
}

Result<Dataset> Sample(double fraction, uint64_t seed, const Dataset& in,
                       const KernelOptions& opts, uint64_t index_offset) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("sample fraction must be in [0,1]");
  }
  TimingScope scope(kIdSample, in.size());
  // Keep/drop is a stateless function of (seed, global index) — a SplitMix64
  // finalizer driving a Bernoulli draw — so element `index_offset + i` gets
  // the same decision no matter how the input is partitioned. That is what
  // makes Sample agree byte-for-byte across javasim (one call over the whole
  // dataset) and sparksim (one call per partition with that partition's
  // global offset).
  std::vector<char> keep(in.size(), 0);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    uint64_t x = seed ^ ((index_offset + i) * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    keep[i] = (static_cast<double>(x >> 11) * 0x1.0p-53) < fraction ? 1 : 0;
    kept += keep[i];
  }
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(kept);
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (keep[i]) out.push_back(in.at(i));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        std::size_t local = 0;
        for (std::size_t i = b; i < e; ++i) local += keep[i];
        auto& part = parts[m];
        part.reserve(local);
        for (std::size_t i = b; i < e; ++i) {
          if (keep[i]) part.push_back(in.at(i));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> ZipWithId(int64_t first_id, const Dataset& in,
                          const KernelOptions& opts) {
  TimingScope scope(kIdZipWithId, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    int64_t id = first_id;
    for (const auto& r : in.records()) {
      // Build the widened field vector directly: copying the record and
      // appending would size the vector for the input arity and then
      // reallocate for the id.
      std::vector<Value> fields;
      fields.reserve(r.size() + 1);
      for (std::size_t c = 0; c < r.size(); ++c) fields.push_back(r.at(c));
      fields.push_back(Value(id++));
      out.push_back(Record(std::move(fields)));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          const Record& r = in.at(i);
          std::vector<Value> fields;
          fields.reserve(r.size() + 1);
          for (std::size_t c = 0; c < r.size(); ++c) fields.push_back(r.at(c));
          fields.push_back(Value(first_id + static_cast<int64_t>(i)));
          part.push_back(Record(std::move(fields)));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

// ---------------------------------------------------------------------------
// Aggregation kernels
// ---------------------------------------------------------------------------

Result<Dataset> ReduceByKey(const KeyUdf& key, const ReduceUdf& reduce,
                            const Dataset& in, const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("ReduceByKey key UDF is empty");
  if (!reduce.fn) return Status::InvalidArgument("ReduceByKey reduce UDF is empty");
  TimingScope scope(kIdReduceByKey, in.size());
  // Fully declarative reductions (expression key + column-wise aggregate
  // spec) run columnar: typed accumulators instead of boxed-Record folds.
  if (key.expr != nullptr && !reduce.aggs.empty() && CanGoColumnar(opts) &&
      !in.empty()) {
    auto converted = Batch::FromDataset(in);
    if (converted.ok()) {
      auto columnar =
          GroupedAggregate(*key.expr, reduce.aggs, *converted, opts, scope);
      if (columnar.ok()) return columnar;
    }
    // Inconvertible input or an ineligible shape: the row path below is the
    // semantic ground truth.
    CountIfEnabled(BatchFallbacksCounter(), 1);
  }
  // std::map keeps output deterministic across platforms and partitionings.
  if (!UseParallel(opts, in.size())) {
    std::map<Value, Record> acc;
    for (const auto& r : in.records()) {
      Value k = key.fn(r);
      auto it = acc.find(k);
      if (it == acc.end()) {
        acc.emplace(std::move(k), r);
      } else {
        it->second = reduce.fn(it->second, r);
      }
    }
    std::vector<Record> out;
    out.reserve(acc.size());
    for (auto& [k, v] : acc) out.push_back(std::move(v));
    return Dataset(std::move(out));
  }
  // Per-morsel partial maps folded in input order, merged in morsel order:
  // for the associative/commutative combiners ReduceUdf requires, the result
  // equals the serial left fold; output order (sorted by key) is identical.
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::map<Value, Record>> partials(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& acc = partials[m];
        for (std::size_t i = b; i < e; ++i) {
          const Record& r = in.at(i);
          Value k = key.fn(r);
          auto it = acc.find(k);
          if (it == acc.end()) {
            acc.emplace(std::move(k), r);
          } else {
            it->second = reduce.fn(it->second, r);
          }
        }
        return Status::OK();
      }));
  std::map<Value, Record> acc = std::move(partials[0]);
  for (std::size_t m = 1; m < partials.size(); ++m) {
    for (auto& [k, v] : partials[m]) {
      auto it = acc.find(k);
      if (it == acc.end()) {
        acc.emplace(k, std::move(v));
      } else {
        it->second = reduce.fn(it->second, v);
      }
    }
  }
  std::vector<Record> out;
  out.reserve(acc.size());
  for (auto& [k, v] : acc) out.push_back(std::move(v));
  return Dataset(std::move(out));
}

Result<Dataset> HashGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in, const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("GroupBy key UDF is empty");
  if (!group.fn) return Status::InvalidArgument("GroupBy group UDF is empty");
  TimingScope scope(kIdHashGroupBy, in.size());
  if (key.expr != nullptr && CanGoColumnar(opts) && !in.empty()) {
    auto columnar = HashGroupByColumnar(key, group, in, opts, scope);
    if (columnar.ok()) return columnar;
    CountIfEnabled(BatchFallbacksCounter(), 1);
  }
  using IndexGroups =
      std::unordered_map<Value, std::vector<std::size_t>, ValueHasher>;
  if (!UseParallel(opts, in.size())) {
    // Group by index, materializing each member list once, right-sized, at
    // the point of the UDF call.
    IndexGroups groups;
    groups.reserve(in.size());
    // Track first-seen order of keys for deterministic output.
    std::vector<const Value*> key_order;
    for (std::size_t i = 0; i < in.size(); ++i) {
      Value k = key.fn(in.at(i));
      auto [it, inserted] = groups.try_emplace(std::move(k));
      if (inserted) key_order.push_back(&it->first);
      it->second.push_back(i);
    }
    std::vector<Record> out;
    for (const Value* k : key_order) {
      const std::vector<std::size_t>& idx = groups.at(*k);
      std::vector<Record> members;
      members.reserve(idx.size());
      for (std::size_t i : idx) members.push_back(in.at(i));
      std::vector<Record> produced = group.fn(*k, members);
      for (auto& p : produced) out.push_back(std::move(p));
    }
    return Dataset(std::move(out));
  }
  // Phase 1: per-morsel index groups with local first-seen key order.
  struct Partial {
    IndexGroups groups;
    std::vector<const Value*> order;
  };
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<Partial> partials(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        Partial& p = partials[m];
        p.groups.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          Value k = key.fn(in.at(i));
          auto [it, inserted] = p.groups.try_emplace(std::move(k));
          if (inserted) p.order.push_back(&it->first);
          it->second.push_back(i);
        }
        return Status::OK();
      }));
  // Phase 2 (serial): merge in morsel order. Global key order = first-seen
  // order over the input, member indices ascend per key — exactly serial.
  IndexGroups merged;
  merged.reserve(in.size());
  std::vector<const Value*> key_order;
  for (const Partial& p : partials) {
    for (const Value* k : p.order) {
      auto src = p.groups.find(*k);
      auto [it, inserted] = merged.try_emplace(*k);
      if (inserted) key_order.push_back(&it->first);
      it->second.insert(it->second.end(), src->second.begin(),
                        src->second.end());
    }
  }
  // Phase 3: apply the group UDF over key chunks in parallel; chunking is
  // deterministic (by member counts), output concatenated in key order.
  std::vector<std::size_t> sizes;
  sizes.reserve(key_order.size());
  for (const Value* k : key_order) sizes.push_back(merged.at(*k).size());
  const auto chunks = ChunkBySize(sizes, opts.morsel_size);
  std::vector<std::vector<Record>> parts(chunks.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, chunks, scope, [&](std::size_t c, std::size_t b, std::size_t e) {
        auto& part = parts[c];
        for (std::size_t ki = b; ki < e; ++ki) {
          const Value* k = key_order[ki];
          const std::vector<std::size_t>& idx = merged.at(*k);
          std::vector<Record> members;
          members.reserve(idx.size());
          for (std::size_t i : idx) members.push_back(in.at(i));
          std::vector<Record> produced = group.fn(*k, members);
          for (auto& p : produced) part.push_back(std::move(p));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> SortGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in, const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("GroupBy key UDF is empty");
  if (!group.fn) return Status::InvalidArgument("GroupBy group UDF is empty");
  TimingScope scope(kIdSortGroupBy, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<std::pair<Value, const Record*>> decorated;
    decorated.reserve(in.size());
    for (const auto& r : in.records()) decorated.emplace_back(key.fn(r), &r);
    std::stable_sort(decorated.begin(), decorated.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    std::vector<Record> out;
    std::size_t i = 0;
    while (i < decorated.size()) {
      std::size_t j = i;
      std::vector<Record> members;
      while (j < decorated.size() &&
             decorated[j].first.Compare(decorated[i].first) == 0) {
        members.push_back(*decorated[j].second);
        ++j;
      }
      std::vector<Record> produced = group.fn(decorated[i].first, members);
      for (auto& p : produced) out.push_back(std::move(p));
      i = j;
    }
    return Dataset(std::move(out));
  }
  std::vector<SortEntry> buf_a, buf_b;
  const SortEntry* sorted =
      ParallelSortEntries(key.fn, in, opts, scope, buf_a, buf_b);
  // Serial run-boundary scan, then the group UDF over run chunks in parallel.
  std::vector<MorselRange> runs;
  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t j = i + 1;
    while (j < in.size() && sorted[j].key.Compare(sorted[i].key) == 0) ++j;
    runs.emplace_back(i, j);
    i = j;
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(runs.size());
  for (const auto& r : runs) sizes.push_back(r.second - r.first);
  const auto chunks = ChunkBySize(sizes, opts.morsel_size);
  std::vector<std::vector<Record>> parts(chunks.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, chunks, scope, [&](std::size_t c, std::size_t b, std::size_t e) {
        auto& part = parts[c];
        for (std::size_t g = b; g < e; ++g) {
          const auto [s0, s1] = runs[g];
          std::vector<Record> members;
          members.reserve(s1 - s0);
          for (std::size_t k = s0; k < s1; ++k) {
            members.push_back(in.at(sorted[k].index));
          }
          std::vector<Record> produced = group.fn(sorted[s0].key, members);
          for (auto& p : produced) part.push_back(std::move(p));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> GlobalReduce(const ReduceUdf& reduce, const Dataset& in,
                             const KernelOptions& opts) {
  if (!reduce.fn) return Status::InvalidArgument("GlobalReduce UDF is empty");
  if (in.empty()) return Dataset();
  TimingScope scope(kIdGlobalReduce, in.size());
  if (!UseParallel(opts, in.size())) {
    Record acc = in.at(0);
    for (std::size_t i = 1; i < in.size(); ++i) {
      acc = reduce.fn(acc, in.at(i));
    }
    return Dataset(std::vector<Record>{std::move(acc)});
  }
  // Per-morsel left folds combined left-to-right: equal to the serial fold
  // by associativity alone (operand order is preserved).
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<Record> partials(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        Record acc = in.at(b);
        for (std::size_t i = b + 1; i < e; ++i) {
          acc = reduce.fn(acc, in.at(i));
        }
        partials[m] = std::move(acc);
        return Status::OK();
      }));
  Record acc = std::move(partials[0]);
  for (std::size_t m = 1; m < partials.size(); ++m) {
    acc = reduce.fn(acc, partials[m]);
  }
  return Dataset(std::vector<Record>{std::move(acc)});
}

Result<Dataset> Count(const Dataset& in, const KernelOptions& opts) {
  (void)opts;  // counting a materialized Dataset is O(1)
  TimingScope scope(kIdCount, in.size());
  return Dataset(std::vector<Record>{
      Record({Value(static_cast<int64_t>(in.size()))})});
}

Result<Dataset> BroadcastMap(const BroadcastMapUdf& udf, const Dataset& main,
                             const Dataset& broadcast,
                             const KernelOptions& opts) {
  if (!udf.fn) return Status::InvalidArgument("BroadcastMap UDF is empty");
  TimingScope scope(kIdBroadcastMap, main.size());
  if (!UseParallel(opts, main.size())) {
    std::vector<Record> out;
    out.reserve(main.size());
    for (const auto& r : main.records()) out.push_back(udf.fn(r, broadcast));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(main.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          part.push_back(udf.fn(main.at(i), broadcast));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

// ---------------------------------------------------------------------------
// Join kernels
// ---------------------------------------------------------------------------

Result<Dataset> HashJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                         const Dataset& left, const Dataset& right,
                         const KernelOptions& opts) {
  if (!left_key.fn || !right_key.fn) {
    return Status::InvalidArgument("Join key UDF is empty");
  }
  TimingScope scope(kIdHashJoin, left.size() + right.size());
  if (left_key.expr != nullptr && right_key.expr != nullptr &&
      CanGoColumnar(opts) && !left.empty() && !right.empty()) {
    auto columnar =
        HashJoinColumnar(left_key, right_key, left, right, opts, scope);
    if (columnar.ok()) return columnar;
    CountIfEnabled(BatchFallbacksCounter(), 1);
  }
  if (!UseParallel(opts, std::max(left.size(), right.size()))) {
    std::unordered_map<Value, std::vector<const Record*>, ValueHasher> build;
    build.reserve(right.size());
    for (const auto& r : right.records()) {
      build[right_key.fn(r)].push_back(&r);
    }
    std::vector<Record> out;
    for (const auto& l : left.records()) {
      auto it = build.find(left_key.fn(l));
      if (it == build.end()) continue;
      for (const Record* r : it->second) {
        out.push_back(Record::Concat(l, *r));
      }
    }
    return Dataset(std::move(out));
  }
  // Partitioned build: all rows of a key hash to one partition and are
  // appended in input order, so the per-key match lists — and therefore the
  // probe output — are independent of the partition count.
  const std::size_t P =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   PoolFor(opts).num_threads() + 1, 64));
  std::vector<Value> rkeys(right.size());
  std::vector<std::size_t> rpart(right.size());
  const auto rranges = MorselRanges(right.size(), opts.morsel_size);
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, rranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        (void)m;
        for (std::size_t i = b; i < e; ++i) {
          rkeys[i] = right_key.fn(right.at(i));
          rpart[i] = ValueHasher{}(rkeys[i]) % P;
        }
        return Status::OK();
      }));
  std::vector<std::size_t> counts(P, 0);
  for (std::size_t p : rpart) ++counts[p];
  std::vector<std::vector<std::size_t>> part_rows(P);
  for (std::size_t p = 0; p < P; ++p) part_rows[p].reserve(counts[p]);
  for (std::size_t i = 0; i < rpart.size(); ++i) {
    part_rows[rpart[i]].push_back(i);
  }
  using Table =
      std::unordered_map<Value, std::vector<std::size_t>, ValueHasher>;
  std::vector<Table> tables(P);
  Stopwatch build_loop;
  PoolFor(opts).ParallelFor(P, [&](std::size_t p) {
    ThreadCpuTimer cpu;
    Table& t = tables[p];
    t.reserve(part_rows[p].size());
    for (std::size_t i : part_rows[p]) t[rkeys[i]].push_back(i);
    scope.AddMorselCpu(cpu.ElapsedMicros());
  });
  scope.AddLoopWall(build_loop.ElapsedMicros());
  const auto lranges = MorselRanges(left.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(lranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, lranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        for (std::size_t i = b; i < e; ++i) {
          const Record& l = left.at(i);
          Value k = left_key.fn(l);
          const Table& t = tables[ValueHasher{}(k) % P];
          auto it = t.find(k);
          if (it == t.end()) continue;
          for (std::size_t j : it->second) {
            part.push_back(Record::Concat(l, right.at(j)));
          }
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> SortMergeJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                              const Dataset& left, const Dataset& right) {
  if (!left_key.fn || !right_key.fn) {
    return Status::InvalidArgument("Join key UDF is empty");
  }
  std::vector<std::pair<Value, const Record*>> ls, rs;
  ls.reserve(left.size());
  rs.reserve(right.size());
  for (const auto& r : left.records()) ls.emplace_back(left_key.fn(r), &r);
  for (const auto& r : right.records()) rs.emplace_back(right_key.fn(r), &r);
  auto less = [](const auto& a, const auto& b) {
    return a.first.Compare(b.first) < 0;
  };
  std::stable_sort(ls.begin(), ls.end(), less);
  std::stable_sort(rs.begin(), rs.end(), less);

  std::vector<Record> out;
  std::size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    const int c = ls[i].first.Compare(rs[j].first);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Emit the full run x run block.
      std::size_t i_end = i;
      while (i_end < ls.size() && ls[i_end].first.Compare(ls[i].first) == 0) ++i_end;
      std::size_t j_end = j;
      while (j_end < rs.size() && rs[j_end].first.Compare(rs[j].first) == 0) ++j_end;
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          out.push_back(Record::Concat(*ls[a].second, *rs[b].second));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> ThetaJoin(const ThetaUdf& condition, const Dataset& left,
                          const Dataset& right) {
  if (!condition.fn && condition.pair_expr == nullptr) {
    return Status::InvalidArgument("ThetaJoin UDF is empty");
  }
  std::vector<Record> out;
  // The declarative path skips materializing Concat(l, r) for rejected
  // pairs: the expression evaluates over the implicit concatenation.
  const expr::Expr* tree = condition.pair_expr.get();
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      const bool match = tree != nullptr ? expr::EvalPredicatePair(*tree, l, r)
                                         : condition.fn(l, r);
      if (match) out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> CrossProduct(const Dataset& left, const Dataset& right) {
  std::vector<Record> out;
  out.reserve(left.size() * right.size());
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> Union(const Dataset& left, const Dataset& right) {
  std::vector<Record> out;
  out.reserve(left.size() + right.size());
  for (const auto& r : left.records()) out.push_back(r);
  for (const auto& r : right.records()) out.push_back(r);
  return Dataset(std::move(out));
}

Result<Dataset> Intersect(const Dataset& left, const Dataset& right) {
  std::unordered_map<Record, bool, RecordHasher> in_right;
  in_right.reserve(right.size());
  for (const auto& r : right.records()) in_right.emplace(r, true);
  std::unordered_map<Record, bool, RecordHasher> emitted;
  std::vector<Record> out;
  for (const auto& r : left.records()) {
    if (in_right.count(r) == 0) continue;
    auto [it, inserted] = emitted.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> Subtract(const Dataset& left, const Dataset& right) {
  std::unordered_map<Record, bool, RecordHasher> in_right;
  in_right.reserve(right.size());
  for (const auto& r : right.records()) in_right.emplace(r, true);
  std::unordered_map<Record, bool, RecordHasher> emitted;
  std::vector<Record> out;
  for (const auto& r : left.records()) {
    if (in_right.count(r) > 0) continue;
    auto [it, inserted] = emitted.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> TopK(const KeyUdf& key, int64_t k, bool ascending,
                     const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("TopK key UDF is empty");
  if (k < 0) return Status::InvalidArgument("TopK wants k >= 0");
  if (k == 0) return Dataset();
  // Decorated entries carry the input index to keep ties deterministic.
  struct Entry {
    Value key;
    std::size_t index;
  };
  // `better(a, b)`: should a be kept over b? Heaping with this comparator
  // leaves the *worst* retained entry on top, ready for replacement.
  auto better = [ascending](const Entry& a, const Entry& b) {
    const int c = a.key.Compare(b.key);
    if (c != 0) return ascending ? c < 0 : c > 0;
    return a.index < b.index;  // earlier input wins ties
  };
  std::vector<Entry> heap;
  // k may be a "no limit" sentinel (e.g. SQL ORDER BY without LIMIT compiles
  // to TopK with k = INT64_MAX); never reserve beyond the input size.
  heap.reserve(std::min<std::size_t>(static_cast<std::size_t>(k), in.size()));
  for (std::size_t i = 0; i < in.size(); ++i) {
    Entry e{key.fn(in.at(i)), i};
    if (heap.size() < static_cast<std::size_t>(k)) {
      heap.push_back(std::move(e));
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(e, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = std::move(e);
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), better);
  // sort_heap leaves the sequence ordered best-first under `better`.
  std::vector<Record> out;
  out.reserve(heap.size());
  for (const Entry& e : heap) out.push_back(in.at(e.index));
  return Dataset(std::move(out));
}

// ---------------------------------------------------------------------------
// Fused pipeline
// ---------------------------------------------------------------------------

FusedStep FusedStep::OfMap(MapUdf udf) {
  FusedStep s;
  s.kind = Kind::kMap;
  s.map = std::move(udf);
  return s;
}

FusedStep FusedStep::OfFilter(PredicateUdf udf) {
  FusedStep s;
  s.kind = Kind::kFilter;
  s.filter = std::move(udf);
  return s;
}

FusedStep FusedStep::OfFlatMap(FlatMapUdf udf) {
  FusedStep s;
  s.kind = Kind::kFlatMap;
  s.flat_map = std::move(udf);
  return s;
}

FusedStep FusedStep::OfProject(std::vector<int> columns) {
  FusedStep s;
  s.kind = Kind::kProject;
  s.columns = std::move(columns);
  return s;
}

namespace {

Status ValidateSteps(const std::vector<FusedStep>& steps) {
  for (const FusedStep& s : steps) {
    switch (s.kind) {
      case FusedStep::Kind::kMap:
        if (!s.map.fn) return Status::InvalidArgument("Map UDF is empty");
        break;
      case FusedStep::Kind::kFilter:
        if (!s.filter.fn && s.filter.expr == nullptr)
          return Status::InvalidArgument("Filter UDF is empty");
        break;
      case FusedStep::Kind::kFlatMap:
        if (!s.flat_map.fn)
          return Status::InvalidArgument("FlatMap UDF is empty");
        break;
      case FusedStep::Kind::kProject:
        for (int c : s.columns) {
          if (c < 0) return Status::InvalidArgument("negative projection column");
        }
        break;
    }
  }
  return Status::OK();
}

/// Drives one record through steps[s..], appending survivors to `out` —
/// depth-first, so emission order matches running the kernels one at a time.
Status DriveRecord(const std::vector<FusedStep>& steps, std::size_t s,
                   const Record& r, std::vector<Record>& out) {
  if (s == steps.size()) {
    out.push_back(r);
    return Status::OK();
  }
  const FusedStep& step = steps[s];
  const bool last = (s + 1 == steps.size());
  switch (step.kind) {
    case FusedStep::Kind::kMap: {
      Record next = step.map.fn(r);
      if (last) {
        out.push_back(std::move(next));
        return Status::OK();
      }
      return DriveRecord(steps, s + 1, next, out);
    }
    case FusedStep::Kind::kFilter: {
      const bool keep = step.filter.expr != nullptr
                            ? expr::EvalPredicate(*step.filter.expr, r)
                            : step.filter.fn(r);
      if (!keep) return Status::OK();
      return DriveRecord(steps, s + 1, r, out);
    }
    case FusedStep::Kind::kFlatMap: {
      std::vector<Record> produced = step.flat_map.fn(r);
      for (Record& p : produced) {
        if (last) {
          out.push_back(std::move(p));
        } else {
          RHEEM_RETURN_IF_ERROR(DriveRecord(steps, s + 1, p, out));
        }
      }
      return Status::OK();
    }
    case FusedStep::Kind::kProject: {
      RHEEM_RETURN_IF_ERROR(CheckProjection(step.columns, r));
      Record next = r.Project(step.columns);
      if (last) {
        out.push_back(std::move(next));
        return Status::OK();
      }
      return DriveRecord(steps, s + 1, next, out);
    }
  }
  return Status::OK();
}

/// A fused-frame column: either a borrowed base-batch column or one computed
/// by a Map step (owned). Project steps shuffle FrameCols by pointer — no
/// column data moves until the final gather.
struct FrameCol {
  const ColumnData* ptr = nullptr;
  std::shared_ptr<const ColumnData> owned;
};

/// Every step must have a columnar form: declarative filters narrow the
/// selection, declarative maps compute fresh columns, projects reorder
/// FrameCols. FlatMap produces a variable number of rows per row and has
/// none.
bool FusibleColumnar(const std::vector<FusedStep>& steps) {
  for (const FusedStep& s : steps) {
    switch (s.kind) {
      case FusedStep::Kind::kFilter:
        if (s.filter.expr == nullptr) return false;
        break;
      case FusedStep::Kind::kMap:
        if (s.map.projection.empty()) return false;
        break;
      case FusedStep::Kind::kProject:
        break;
      case FusedStep::Kind::kFlatMap:
        return false;
    }
  }
  return true;
}

/// Drives base-batch rows [b, e) through the steps column-at-a-time and
/// boxes the survivors into `out` — same records, same order, same errors
/// as DriveRecord over each row in turn.
Status DriveMorselColumnar(const std::vector<FusedStep>& steps,
                           const Batch& base, std::size_t b, std::size_t e,
                           std::vector<Record>& out) {
  std::vector<FrameCol> frame;
  frame.reserve(base.num_columns());
  for (std::size_t c = 0; c < base.num_columns(); ++c) {
    frame.push_back(FrameCol{&base.column(c), nullptr});
  }
  // Active rows: the dense range [dense_base, dense_base + dense_n) until
  // the first filter, a selection vector of physical row ids afterwards. A
  // Map step rebases the frame onto its dense output columns, so all frame
  // columns always share one indexing domain.
  bool dense = true;
  std::size_t dense_base = b;
  std::size_t dense_n = e - b;
  std::vector<uint32_t> sel;
  std::vector<const ColumnData*> ptrs;
  auto view = [&]() {
    ptrs.clear();
    for (const FrameCol& f : frame) ptrs.push_back(f.ptr);
    BatchView v;
    v.cols = ptrs.data();
    v.num_cols = ptrs.size();
    if (dense) {
      v.base = dense_base;
      v.n = dense_n;
    } else {
      v.sel = sel.data();
      v.n = sel.size();
    }
    return v;
  };
  for (const FusedStep& step : steps) {
    switch (step.kind) {
      case FusedStep::Kind::kFilter: {
        const BatchView v = view();
        std::vector<unsigned char> keep;
        expr::EvalPredicateView(*step.filter.expr, v, &keep);
        std::vector<uint32_t> next;
        next.reserve(v.n);
        for (std::size_t i = 0; i < v.n; ++i) {
          if (keep[i]) next.push_back(static_cast<uint32_t>(v.row(i)));
        }
        sel = std::move(next);
        dense = false;
        break;
      }
      case FusedStep::Kind::kMap: {
        const BatchView v = view();
        std::vector<FrameCol> next;
        next.reserve(step.map.projection.size());
        for (const auto& fe : step.map.projection) {
          auto col = std::make_shared<ColumnData>();
          expr::EvalExprView(*fe, v, col.get());
          next.push_back(FrameCol{col.get(), std::move(col)});
        }
        frame = std::move(next);
        dense = true;
        dense_base = 0;
        dense_n = v.n;
        sel.clear();
        break;
      }
      case FusedStep::Kind::kProject: {
        const std::size_t active = dense ? dense_n : sel.size();
        if (active == 0) {
          // No surviving rows reach this step, so the row path never runs
          // its per-record arity check here; keep an empty frame.
          frame.clear();
          break;
        }
        for (int c : step.columns) {
          if (static_cast<std::size_t>(c) >= frame.size()) {
            return Status::OutOfRange(
                "projection column " + std::to_string(c) +
                " out of range for record of arity " +
                std::to_string(frame.size()));
          }
        }
        std::vector<FrameCol> next;
        next.reserve(step.columns.size());
        for (int c : step.columns) {
          next.push_back(frame[static_cast<std::size_t>(c)]);
        }
        frame = std::move(next);
        break;
      }
      case FusedStep::Kind::kFlatMap:
        return Status::Internal("flat_map reached the columnar fused path");
    }
  }
  const BatchView v = view();
  for (std::size_t i = 0; i < v.n; ++i) {
    const std::size_t row = v.row(i);
    std::vector<Value> fields;
    fields.reserve(frame.size());
    for (const FrameCol& f : frame) fields.push_back(f.ptr->ValueAt(row));
    out.push_back(Record(std::move(fields)));
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> FusedPipeline(const std::vector<FusedStep>& steps,
                              const Dataset& in, const KernelOptions& opts) {
  RHEEM_RETURN_IF_ERROR(ValidateSteps(steps));
  TimingScope scope(kIdFusedPipeline, in.size());
  if (steps.empty()) {
    std::vector<Record> out(in.records());
    return Dataset(std::move(out));
  }
  // Fully declarative chains run columnar end-to-end: the input converts to
  // a Batch once, filters narrow a selection vector, maps compute fresh
  // columns, projects shuffle column pointers, and only the survivors box
  // back to records at the tail of each morsel.
  if (CanGoColumnar(opts) && FusibleColumnar(steps)) {
    auto converted = Batch::FromDataset(in);
    if (converted.ok()) {
      const Batch& batch = *converted;
      CountIfEnabled(RowsVectorizedCounter(), static_cast<int64_t>(in.size()));
      if (!UseParallel(opts, in.size())) {
        std::vector<Record> out;
        out.reserve(in.size());
        RHEEM_RETURN_IF_ERROR(
            DriveMorselColumnar(steps, batch, 0, in.size(), out));
        return Dataset(std::move(out));
      }
      const auto ranges = MorselRanges(in.size(), opts.morsel_size);
      std::vector<std::vector<Record>> parts(ranges.size());
      RHEEM_RETURN_IF_ERROR(RunMorsels(
          opts, ranges, scope,
          [&](std::size_t m, std::size_t b, std::size_t e) {
            parts[m].reserve(e - b);
            return DriveMorselColumnar(steps, batch, b, e, parts[m]);
          }));
      return ConcatMorsels(std::move(parts));
    }
    CountIfEnabled(BatchFallbacksCounter(), 1);
  }
  // Vector-of-records fast path: a prefix of declarative filters is ANDed
  // and evaluated column-at-a-time over the whole morsel, so only the
  // survivors enter the per-record drive. Keep set is identical — Kleene
  // AND is true exactly when every conjunct is (Null drops either way).
  std::size_t lead = 0;
  while (lead < steps.size() &&
         steps[lead].kind == FusedStep::Kind::kFilter &&
         steps[lead].filter.expr != nullptr) {
    ++lead;
  }
  expr::ExprPtr lead_pred;
  if (lead > 0) {
    std::vector<expr::ExprPtr> conjuncts;
    for (std::size_t i = 0; i < lead; ++i) {
      conjuncts.push_back(steps[i].filter.expr);
    }
    lead_pred = expr::AndAll(conjuncts);
  }
  auto drive_range = [&](std::size_t b, std::size_t e,
                         std::vector<Record>& out) -> Status {
    if (lead_pred != nullptr) {
      std::vector<unsigned char> keep;
      expr::EvalPredicateBatch(*lead_pred, in.records(), b, e, &keep);
      for (std::size_t i = b; i < e; ++i) {
        if (!keep[i - b]) continue;
        RHEEM_RETURN_IF_ERROR(DriveRecord(steps, lead, in.at(i), out));
      }
      return Status::OK();
    }
    for (std::size_t i = b; i < e; ++i) {
      RHEEM_RETURN_IF_ERROR(DriveRecord(steps, 0, in.at(i), out));
    }
    return Status::OK();
  };
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    RHEEM_RETURN_IF_ERROR(drive_range(0, in.size(), out));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        return drive_range(b, e, part);
      }));
  return ConcatMorsels(std::move(parts));
}

// ---------------------------------------------------------------------------
// Batch-level kernels
// ---------------------------------------------------------------------------

Status FilterBatch(const PredicateUdf& udf, Batch* batch,
                   const KernelOptions& opts) {
  if (udf.expr == nullptr) {
    return Status::Unsupported("FilterBatch needs a declarative predicate");
  }
  TimingScope scope(kIdFilter, batch->num_selected());
  CountIfEnabled(RowsVectorizedCounter(),
                 static_cast<int64_t>(batch->num_selected()));
  std::vector<const ColumnData*> ptrs;
  const BatchView view = batch->View(&ptrs);
  const std::size_t n = view.n;
  if (!UseParallel(opts, n)) {
    std::vector<unsigned char> keep;
    expr::EvalPredicateView(*udf.expr, view, &keep);
    std::vector<uint32_t> sel;
    sel.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) sel.push_back(static_cast<uint32_t>(view.row(i)));
    }
    batch->SetSelection(std::move(sel));
    return Status::OK();
  }
  const auto ranges = MorselRanges(n, opts.morsel_size);
  std::vector<std::vector<uint32_t>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        const BatchView v = SubView(view, b, e);
        std::vector<unsigned char> keep;
        expr::EvalPredicateView(*udf.expr, v, &keep);
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = 0; i < v.n; ++i) {
          if (keep[i]) part.push_back(static_cast<uint32_t>(v.row(i)));
        }
        return Status::OK();
      }));
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> sel;
  sel.reserve(total);
  for (const auto& p : parts) sel.insert(sel.end(), p.begin(), p.end());
  batch->SetSelection(std::move(sel));
  return Status::OK();
}

Result<Batch> MapBatch(const MapUdf& udf, const Batch& in,
                       const KernelOptions& opts) {
  if (udf.projection.empty()) {
    return Status::Unsupported("MapBatch needs a declarative projection");
  }
  const std::size_t n = in.num_selected();
  TimingScope scope(kIdMap, n);
  CountIfEnabled(RowsVectorizedCounter(), static_cast<int64_t>(n));
  std::vector<const ColumnData*> ptrs;
  const BatchView view = in.View(&ptrs);
  const std::size_t ncols = udf.projection.size();
  if (!UseParallel(opts, n)) {
    std::vector<ColumnData> cols(ncols);
    for (std::size_t j = 0; j < ncols; ++j) {
      expr::EvalExprView(*udf.projection[j], view, &cols[j]);
    }
    return Batch(std::move(cols), n);
  }
  const auto ranges = MorselRanges(n, opts.morsel_size);
  std::vector<std::vector<ColumnData>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.resize(ncols);
        const BatchView v = SubView(view, b, e);
        for (std::size_t j = 0; j < ncols; ++j) {
          expr::EvalExprView(*udf.projection[j], v, &part[j]);
        }
        return Status::OK();
      }));
  std::vector<ColumnData> cols(ncols);
  std::size_t done = 0;
  for (std::size_t m = 0; m < parts.size(); ++m) {
    const std::size_t rows = ranges[m].second - ranges[m].first;
    for (std::size_t j = 0; j < ncols; ++j) {
      RHEEM_RETURN_IF_ERROR(AppendColumn(&cols[j], done, n, parts[m][j], rows));
    }
    done += rows;
  }
  return Batch(std::move(cols), n);
}

Result<Dataset> ReduceByKeyBatch(const KeyUdf& key, const ReduceUdf& reduce,
                                 const Batch& in, const KernelOptions& opts) {
  if (key.expr == nullptr) {
    return Status::Unsupported("ReduceByKeyBatch needs a declarative key");
  }
  if (reduce.aggs.empty()) {
    return Status::Unsupported("ReduceByKeyBatch needs an aggregate spec");
  }
  TimingScope scope(kIdReduceByKey, in.num_selected());
  return GroupedAggregate(*key.expr, reduce.aggs, in, opts, scope);
}

}  // namespace kernels
}  // namespace rheem

#include "core/operators/kernels.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/rng.h"
#include "data/record.h"

namespace rheem {
namespace kernels {

Result<Dataset> Map(const MapUdf& udf, const Dataset& in) {
  if (!udf.fn) return Status::InvalidArgument("Map UDF is empty");
  std::vector<Record> out;
  out.reserve(in.size());
  for (const auto& r : in.records()) out.push_back(udf.fn(r));
  return Dataset(std::move(out));
}

Result<Dataset> FlatMap(const FlatMapUdf& udf, const Dataset& in) {
  if (!udf.fn) return Status::InvalidArgument("FlatMap UDF is empty");
  std::vector<Record> out;
  out.reserve(in.size());
  for (const auto& r : in.records()) {
    std::vector<Record> produced = udf.fn(r);
    for (auto& p : produced) out.push_back(std::move(p));
  }
  return Dataset(std::move(out));
}

Result<Dataset> Filter(const PredicateUdf& udf, const Dataset& in) {
  if (!udf.fn) return Status::InvalidArgument("Filter UDF is empty");
  std::vector<Record> out;
  for (const auto& r : in.records()) {
    if (udf.fn(r)) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> Project(const std::vector<int>& columns, const Dataset& in) {
  for (int c : columns) {
    if (c < 0) return Status::InvalidArgument("negative projection column");
  }
  std::vector<Record> out;
  out.reserve(in.size());
  for (const auto& r : in.records()) {
    for (int c : columns) {
      if (static_cast<std::size_t>(c) >= r.size()) {
        return Status::OutOfRange("projection column " + std::to_string(c) +
                                  " out of range for record of arity " +
                                  std::to_string(r.size()));
      }
    }
    out.push_back(r.Project(columns));
  }
  return Dataset(std::move(out));
}

Result<Dataset> Distinct(const Dataset& in) {
  std::unordered_map<Record, bool, RecordHasher> seen;
  seen.reserve(in.size());
  std::vector<Record> out;
  for (const auto& r : in.records()) {
    auto [it, inserted] = seen.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> SortByKey(const KeyUdf& key, const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("Sort key UDF is empty");
  // Decorate-sort-undecorate: evaluate the key once per record.
  std::vector<std::pair<Value, const Record*>> decorated;
  decorated.reserve(in.size());
  for (const auto& r : in.records()) decorated.emplace_back(key.fn(r), &r);
  std::stable_sort(decorated.begin(), decorated.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  std::vector<Record> out;
  out.reserve(in.size());
  for (const auto& [k, r] : decorated) out.push_back(*r);
  return Dataset(std::move(out));
}

Result<Dataset> Sample(double fraction, uint64_t seed, const Dataset& in) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("sample fraction must be in [0,1]");
  }
  Rng rng(seed);
  std::vector<Record> out;
  for (const auto& r : in.records()) {
    if (rng.NextBool(fraction)) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> ZipWithId(int64_t first_id, const Dataset& in) {
  std::vector<Record> out;
  out.reserve(in.size());
  int64_t id = first_id;
  for (const auto& r : in.records()) {
    Record withId = r;
    withId.Append(Value(id++));
    out.push_back(std::move(withId));
  }
  return Dataset(std::move(out));
}

Result<Dataset> ReduceByKey(const KeyUdf& key, const ReduceUdf& reduce,
                            const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("ReduceByKey key UDF is empty");
  if (!reduce.fn) return Status::InvalidArgument("ReduceByKey reduce UDF is empty");
  // std::map keeps output deterministic across platforms and partitionings.
  std::map<Value, Record> acc;
  for (const auto& r : in.records()) {
    Value k = key.fn(r);
    auto it = acc.find(k);
    if (it == acc.end()) {
      acc.emplace(std::move(k), r);
    } else {
      it->second = reduce.fn(it->second, r);
    }
  }
  std::vector<Record> out;
  out.reserve(acc.size());
  for (auto& [k, v] : acc) out.push_back(std::move(v));
  return Dataset(std::move(out));
}

Result<Dataset> HashGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("GroupBy key UDF is empty");
  if (!group.fn) return Status::InvalidArgument("GroupBy group UDF is empty");
  std::unordered_map<Value, std::vector<Record>, ValueHasher> groups;
  groups.reserve(in.size());
  // Track first-seen order of keys for deterministic output.
  std::vector<const Value*> key_order;
  for (const auto& r : in.records()) {
    Value k = key.fn(r);
    auto [it, inserted] = groups.try_emplace(std::move(k));
    if (inserted) key_order.push_back(&it->first);
    it->second.push_back(r);
  }
  std::vector<Record> out;
  for (const Value* k : key_order) {
    std::vector<Record> produced = group.fn(*k, groups.at(*k));
    for (auto& p : produced) out.push_back(std::move(p));
  }
  return Dataset(std::move(out));
}

Result<Dataset> SortGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("GroupBy key UDF is empty");
  if (!group.fn) return Status::InvalidArgument("GroupBy group UDF is empty");
  std::vector<std::pair<Value, const Record*>> decorated;
  decorated.reserve(in.size());
  for (const auto& r : in.records()) decorated.emplace_back(key.fn(r), &r);
  std::stable_sort(decorated.begin(), decorated.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  std::vector<Record> out;
  std::size_t i = 0;
  while (i < decorated.size()) {
    std::size_t j = i;
    std::vector<Record> members;
    while (j < decorated.size() &&
           decorated[j].first.Compare(decorated[i].first) == 0) {
      members.push_back(*decorated[j].second);
      ++j;
    }
    std::vector<Record> produced = group.fn(decorated[i].first, members);
    for (auto& p : produced) out.push_back(std::move(p));
    i = j;
  }
  return Dataset(std::move(out));
}

Result<Dataset> GlobalReduce(const ReduceUdf& reduce, const Dataset& in) {
  if (!reduce.fn) return Status::InvalidArgument("GlobalReduce UDF is empty");
  if (in.empty()) return Dataset();
  Record acc = in.at(0);
  for (std::size_t i = 1; i < in.size(); ++i) {
    acc = reduce.fn(acc, in.at(i));
  }
  return Dataset(std::vector<Record>{std::move(acc)});
}

Result<Dataset> Count(const Dataset& in) {
  return Dataset(std::vector<Record>{
      Record({Value(static_cast<int64_t>(in.size()))})});
}

Result<Dataset> BroadcastMap(const BroadcastMapUdf& udf, const Dataset& main,
                             const Dataset& broadcast) {
  if (!udf.fn) return Status::InvalidArgument("BroadcastMap UDF is empty");
  std::vector<Record> out;
  out.reserve(main.size());
  for (const auto& r : main.records()) out.push_back(udf.fn(r, broadcast));
  return Dataset(std::move(out));
}

Result<Dataset> HashJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                         const Dataset& left, const Dataset& right) {
  if (!left_key.fn || !right_key.fn) {
    return Status::InvalidArgument("Join key UDF is empty");
  }
  std::unordered_map<Value, std::vector<const Record*>, ValueHasher> build;
  build.reserve(right.size());
  for (const auto& r : right.records()) {
    build[right_key.fn(r)].push_back(&r);
  }
  std::vector<Record> out;
  for (const auto& l : left.records()) {
    auto it = build.find(left_key.fn(l));
    if (it == build.end()) continue;
    for (const Record* r : it->second) {
      out.push_back(Record::Concat(l, *r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> SortMergeJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                              const Dataset& left, const Dataset& right) {
  if (!left_key.fn || !right_key.fn) {
    return Status::InvalidArgument("Join key UDF is empty");
  }
  std::vector<std::pair<Value, const Record*>> ls, rs;
  ls.reserve(left.size());
  rs.reserve(right.size());
  for (const auto& r : left.records()) ls.emplace_back(left_key.fn(r), &r);
  for (const auto& r : right.records()) rs.emplace_back(right_key.fn(r), &r);
  auto less = [](const auto& a, const auto& b) {
    return a.first.Compare(b.first) < 0;
  };
  std::stable_sort(ls.begin(), ls.end(), less);
  std::stable_sort(rs.begin(), rs.end(), less);

  std::vector<Record> out;
  std::size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    const int c = ls[i].first.Compare(rs[j].first);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Emit the full run x run block.
      std::size_t i_end = i;
      while (i_end < ls.size() && ls[i_end].first.Compare(ls[i].first) == 0) ++i_end;
      std::size_t j_end = j;
      while (j_end < rs.size() && rs[j_end].first.Compare(rs[j].first) == 0) ++j_end;
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          out.push_back(Record::Concat(*ls[a].second, *rs[b].second));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> ThetaJoin(const ThetaUdf& condition, const Dataset& left,
                          const Dataset& right) {
  if (!condition.fn) return Status::InvalidArgument("ThetaJoin UDF is empty");
  std::vector<Record> out;
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      if (condition.fn(l, r)) out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> CrossProduct(const Dataset& left, const Dataset& right) {
  std::vector<Record> out;
  out.reserve(left.size() * right.size());
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> Union(const Dataset& left, const Dataset& right) {
  std::vector<Record> out;
  out.reserve(left.size() + right.size());
  for (const auto& r : left.records()) out.push_back(r);
  for (const auto& r : right.records()) out.push_back(r);
  return Dataset(std::move(out));
}

Result<Dataset> Intersect(const Dataset& left, const Dataset& right) {
  std::unordered_map<Record, bool, RecordHasher> in_right;
  in_right.reserve(right.size());
  for (const auto& r : right.records()) in_right.emplace(r, true);
  std::unordered_map<Record, bool, RecordHasher> emitted;
  std::vector<Record> out;
  for (const auto& r : left.records()) {
    if (in_right.count(r) == 0) continue;
    auto [it, inserted] = emitted.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> Subtract(const Dataset& left, const Dataset& right) {
  std::unordered_map<Record, bool, RecordHasher> in_right;
  in_right.reserve(right.size());
  for (const auto& r : right.records()) in_right.emplace(r, true);
  std::unordered_map<Record, bool, RecordHasher> emitted;
  std::vector<Record> out;
  for (const auto& r : left.records()) {
    if (in_right.count(r) > 0) continue;
    auto [it, inserted] = emitted.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> TopK(const KeyUdf& key, int64_t k, bool ascending,
                     const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("TopK key UDF is empty");
  if (k < 0) return Status::InvalidArgument("TopK wants k >= 0");
  if (k == 0) return Dataset();
  // Decorated entries carry the input index to keep ties deterministic.
  struct Entry {
    Value key;
    std::size_t index;
  };
  // `better(a, b)`: should a be kept over b? Heaping with this comparator
  // leaves the *worst* retained entry on top, ready for replacement.
  auto better = [ascending](const Entry& a, const Entry& b) {
    const int c = a.key.Compare(b.key);
    if (c != 0) return ascending ? c < 0 : c > 0;
    return a.index < b.index;  // earlier input wins ties
  };
  std::vector<Entry> heap;
  heap.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < in.size(); ++i) {
    Entry e{key.fn(in.at(i)), i};
    if (heap.size() < static_cast<std::size_t>(k)) {
      heap.push_back(std::move(e));
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(e, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = std::move(e);
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), better);
  // sort_heap leaves the sequence ordered best-first under `better`.
  std::vector<Record> out;
  out.reserve(heap.size());
  for (const Entry& e : heap) out.push_back(in.at(e.index));
  return Dataset(std::move(out));
}

}  // namespace kernels
}  // namespace rheem

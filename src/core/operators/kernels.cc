#include "core/operators/kernels.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/expr/expr.h"
#include "data/record.h"

namespace rheem {
namespace kernels {
namespace {

// ---------------------------------------------------------------------------
// Per-kernel timing registry
// ---------------------------------------------------------------------------

enum KernelId : int {
  kIdMap = 0,
  kIdFlatMap,
  kIdFilter,
  kIdProject,
  kIdZipWithId,
  kIdSample,
  kIdBroadcastMap,
  kIdReduceByKey,
  kIdHashGroupBy,
  kIdSortByKey,
  kIdSortGroupBy,
  kIdGlobalReduce,
  kIdCount,
  kIdHashJoin,
  kIdFusedPipeline,
  kNumKernelIds,
};

constexpr const char* kKernelNames[kNumKernelIds] = {
    "Map",         "FlatMap",     "Filter",    "Project",
    "ZipWithId",   "Sample",      "BroadcastMap", "ReduceByKey",
    "HashGroupBy", "SortByKey",   "SortGroupBy",  "GlobalReduce",
    "Count",       "HashJoin",    "FusedPipeline"};

struct TimingCell {
  std::atomic<int64_t> invocations{0};
  std::atomic<int64_t> records_in{0};
  std::atomic<int64_t> wall{0};
  std::atomic<int64_t> parallel_cpu{0};
  std::atomic<int64_t> critical{0};
  std::atomic<int64_t> serial{0};
};

TimingCell* Cells() {
  static TimingCell cells[kNumKernelIds];
  return cells;
}

// Registry mirrors of the timing cells, aggregated across kernels. Pointers
// are resolved once (the registry never invalidates them) so the enabled path
// pays one relaxed atomic add per event and the disabled path only the
// enabled() check inside CountIfEnabled.
Counter* InvocationsCounter() {
  static Counter* c = MetricsRegistry::Global().counter("kernels.invocations");
  return c;
}
Counter* RecordsInCounter() {
  static Counter* c = MetricsRegistry::Global().counter("kernels.records_in");
  return c;
}
Counter* MorselsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("kernels.morsels_executed");
  return c;
}

/// Accumulates one kernel call's timing and flushes it into the registry on
/// destruction. Morsel bodies report their thread-CPU time via AddMorselCpu
/// (any thread); the caller reports the wall time of each parallel region via
/// AddLoopWall (caller thread only). Everything not inside a parallel region
/// counts as the call's serial part.
class TimingScope {
 public:
  TimingScope(int id, std::size_t records) : id_(id), records_(records) {
    // One span per kernel invocation ("morsel level" of the trace tree); it
    // nests under whatever stage/chain span the calling thread has open.
    if (Tracer::Global().enabled()) {
      span_.emplace("kernel", "kernels");
      span_->AddTag("kernel", kKernelNames[id_]);
      span_->AddTag("records_in", static_cast<int64_t>(records_));
    }
  }

  ~TimingScope() {
    const int64_t wall = wall_.ElapsedMicros();
    TimingCell& c = Cells()[id_];
    c.invocations.fetch_add(1, std::memory_order_relaxed);
    c.records_in.fetch_add(static_cast<int64_t>(records_),
                           std::memory_order_relaxed);
    c.wall.fetch_add(wall, std::memory_order_relaxed);
    c.parallel_cpu.fetch_add(pcpu_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    c.critical.fetch_add(critical_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    c.serial.fetch_add(std::max<int64_t>(0, wall - loop_wall_),
                       std::memory_order_relaxed);
    CountIfEnabled(InvocationsCounter(), 1);
    CountIfEnabled(RecordsInCounter(), static_cast<int64_t>(records_));
  }

  void AddMorselCpu(int64_t micros) {
    pcpu_.fetch_add(micros, std::memory_order_relaxed);
    int64_t cur = critical_.load(std::memory_order_relaxed);
    while (micros > cur && !critical_.compare_exchange_weak(
                               cur, micros, std::memory_order_relaxed)) {
    }
  }

  void AddLoopWall(int64_t micros) { loop_wall_ += micros; }

 private:
  int id_;
  std::size_t records_;
  std::optional<TraceSpan> span_;  // open only while tracing is enabled
  Stopwatch wall_;
  std::atomic<int64_t> pcpu_{0};
  std::atomic<int64_t> critical_{0};
  int64_t loop_wall_ = 0;  // touched by the calling thread only
};

// ---------------------------------------------------------------------------
// Morsel helpers
// ---------------------------------------------------------------------------

using MorselRange = std::pair<std::size_t, std::size_t>;

std::vector<MorselRange> MorselRanges(std::size_t n, std::size_t morsel_size) {
  if (morsel_size == 0) morsel_size = 1;
  std::vector<MorselRange> ranges;
  ranges.reserve((n + morsel_size - 1) / morsel_size);
  for (std::size_t b = 0; b < n; b += morsel_size) {
    ranges.emplace_back(b, std::min(n, b + morsel_size));
  }
  return ranges;
}

/// Inputs of at most one morsel stay on the serial path: no task overhead for
/// small data, and every existing small-input caller keeps byte-exact
/// behavior regardless of the `kernels.parallel` setting.
bool UseParallel(const KernelOptions& opts, std::size_t n) {
  return opts.parallel && n > std::max<std::size_t>(1, opts.morsel_size);
}

ThreadPool& PoolFor(const KernelOptions& opts) {
  return opts.pool != nullptr ? *opts.pool : DefaultThreadPool();
}

/// Runs body(m, begin, end) for every morsel on the pool. Reports the first
/// failure in *morsel order*, so errors are as deterministic as the serial
/// scan (the first failing record lives in the first failing morsel).
template <typename Body>
Status RunMorsels(const KernelOptions& opts,
                  const std::vector<MorselRange>& ranges, TimingScope& scope,
                  const Body& body) {
  std::vector<Status> statuses(ranges.size());
  Stopwatch loop;
  PoolFor(opts).ParallelFor(ranges.size(), [&](std::size_t m) {
    ThreadCpuTimer cpu;
    statuses[m] = body(m, ranges[m].first, ranges[m].second);
    scope.AddMorselCpu(cpu.ElapsedMicros());
  });
  scope.AddLoopWall(loop.ElapsedMicros());
  CountIfEnabled(MorselsCounter(), static_cast<int64_t>(ranges.size()));
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

/// Splices per-morsel outputs in morsel order, reserving the final size once.
Dataset ConcatMorsels(std::vector<std::vector<Record>> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return Dataset(std::move(out));
}

/// Greedily packs consecutive groups (given per-group record counts) into
/// chunks of roughly `target` input records, so group-UDF application
/// parallelizes without spawning a task per tiny group.
std::vector<MorselRange> ChunkBySize(const std::vector<std::size_t>& sizes,
                                     std::size_t target) {
  if (target == 0) target = 1;
  std::vector<MorselRange> chunks;
  std::size_t start = 0;
  std::size_t load = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    load += sizes[i];
    if (load >= target) {
      chunks.emplace_back(start, i + 1);
      start = i + 1;
      load = 0;
    }
  }
  if (start < sizes.size()) chunks.emplace_back(start, sizes.size());
  return chunks;
}

Status CheckProjection(const std::vector<int>& columns, const Record& r) {
  for (int c : columns) {
    if (static_cast<std::size_t>(c) >= r.size()) {
      return Status::OutOfRange("projection column " + std::to_string(c) +
                                " out of range for record of arity " +
                                std::to_string(r.size()));
    }
  }
  return Status::OK();
}

/// Decorated sort entry for the parallel run-sort + merge. Ordering by
/// (key, original index) is a total order equivalent to stable_sort by key.
struct SortEntry {
  Value key;
  std::size_t index = 0;
};

bool SortEntryLess(const SortEntry& a, const SortEntry& b) {
  const int c = a.key.Compare(b.key);
  if (c != 0) return c < 0;
  return a.index < b.index;
}

/// Parallel decorate + per-morsel sort + pairwise parallel merge. On return
/// `buf_a` and `buf_b` are sized n and the returned pointer (into one of
/// them) holds all n entries in stable key order.
template <typename KeyFn>
SortEntry* ParallelSortEntries(const KeyFn& key_fn, const Dataset& in,
                               const KernelOptions& opts, TimingScope& scope,
                               std::vector<SortEntry>& buf_a,
                               std::vector<SortEntry>& buf_b) {
  const std::size_t n = in.size();
  const auto ranges = MorselRanges(n, opts.morsel_size);
  buf_a.resize(n);
  buf_b.resize(n);
  Stopwatch sort_loop;
  PoolFor(opts).ParallelFor(ranges.size(), [&](std::size_t m) {
    ThreadCpuTimer cpu;
    const auto [b, e] = ranges[m];
    for (std::size_t i = b; i < e; ++i) {
      buf_a[i] = SortEntry{key_fn(in.at(i)), i};
    }
    std::sort(buf_a.begin() + static_cast<std::ptrdiff_t>(b),
              buf_a.begin() + static_cast<std::ptrdiff_t>(e), SortEntryLess);
    scope.AddMorselCpu(cpu.ElapsedMicros());
  });
  scope.AddLoopWall(sort_loop.ElapsedMicros());
  CountIfEnabled(MorselsCounter(), static_cast<int64_t>(ranges.size()));

  std::vector<std::size_t> bounds;
  bounds.reserve(ranges.size() + 1);
  bounds.push_back(0);
  for (const auto& r : ranges) bounds.push_back(r.second);
  SortEntry* src = buf_a.data();
  SortEntry* dst = buf_b.data();
  while (bounds.size() > 2) {
    const std::size_t runs = bounds.size() - 1;
    const std::size_t merged_runs = (runs + 1) / 2;
    Stopwatch level;
    PoolFor(opts).ParallelFor(merged_runs, [&](std::size_t p) {
      ThreadCpuTimer cpu;
      const std::size_t lo = bounds[2 * p];
      const std::size_t mid = bounds[std::min(2 * p + 1, runs)];
      const std::size_t hi = bounds[std::min(2 * p + 2, runs)];
      if (mid == hi) {
        // Odd run out: carry it to the next level unchanged.
        std::move(src + lo, src + mid, dst + lo);
      } else {
        std::merge(std::make_move_iterator(src + lo),
                   std::make_move_iterator(src + mid),
                   std::make_move_iterator(src + mid),
                   std::make_move_iterator(src + hi), dst + lo, SortEntryLess);
      }
      scope.AddMorselCpu(cpu.ElapsedMicros());
    });
    scope.AddLoopWall(level.ElapsedMicros());
    std::vector<std::size_t> next_bounds;
    next_bounds.reserve(merged_runs + 1);
    next_bounds.push_back(0);
    for (std::size_t p = 0; p < merged_runs; ++p) {
      next_bounds.push_back(bounds[std::min(2 * p + 2, runs)]);
    }
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  return src;
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelOptions / timing API
// ---------------------------------------------------------------------------

KernelOptions KernelOptions::FromConfig(const Config& config,
                                        ThreadPool* pool) {
  KernelOptions o;
  o.parallel = config.GetBool("kernels.parallel", o.parallel).ValueOr(o.parallel);
  const int64_t morsel =
      config.GetInt("kernels.morsel_size", static_cast<int64_t>(o.morsel_size))
          .ValueOr(static_cast<int64_t>(o.morsel_size));
  if (morsel > 0) o.morsel_size = static_cast<std::size_t>(morsel);
  o.pool = pool;
  return o;
}

std::vector<KernelTiming> SnapshotKernelTimings() {
  std::vector<KernelTiming> out;
  for (int id = 0; id < kNumKernelIds; ++id) {
    TimingCell& c = Cells()[id];
    KernelTiming t;
    t.kernel = kKernelNames[id];
    t.invocations = c.invocations.load(std::memory_order_relaxed);
    if (t.invocations == 0) continue;
    t.records_in = c.records_in.load(std::memory_order_relaxed);
    t.wall_micros = c.wall.load(std::memory_order_relaxed);
    t.parallel_cpu_micros = c.parallel_cpu.load(std::memory_order_relaxed);
    t.critical_path_micros = c.critical.load(std::memory_order_relaxed);
    t.serial_micros = c.serial.load(std::memory_order_relaxed);
    out.push_back(std::move(t));
  }
  return out;
}

void ResetKernelTimings() {
  for (int id = 0; id < kNumKernelIds; ++id) {
    TimingCell& c = Cells()[id];
    c.invocations.store(0, std::memory_order_relaxed);
    c.records_in.store(0, std::memory_order_relaxed);
    c.wall.store(0, std::memory_order_relaxed);
    c.parallel_cpu.store(0, std::memory_order_relaxed);
    c.critical.store(0, std::memory_order_relaxed);
    c.serial.store(0, std::memory_order_relaxed);
  }
}

int64_t ModeledMicrosAtWidth(const KernelTiming& t, std::size_t workers) {
  if (workers == 0) workers = 1;
  const int64_t spread =
      t.parallel_cpu_micros / static_cast<int64_t>(workers);
  return t.serial_micros + std::max(spread, t.critical_path_micros);
}

// ---------------------------------------------------------------------------
// Record-at-a-time kernels
// ---------------------------------------------------------------------------

Result<Dataset> Map(const MapUdf& udf, const Dataset& in,
                    const KernelOptions& opts) {
  if (!udf.fn) return Status::InvalidArgument("Map UDF is empty");
  TimingScope scope(kIdMap, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& r : in.records()) out.push_back(udf.fn(r));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) part.push_back(udf.fn(in.at(i)));
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> FlatMap(const FlatMapUdf& udf, const Dataset& in,
                        const KernelOptions& opts) {
  if (!udf.fn) return Status::InvalidArgument("FlatMap UDF is empty");
  TimingScope scope(kIdFlatMap, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& r : in.records()) {
      std::vector<Record> produced = udf.fn(r);
      for (auto& p : produced) out.push_back(std::move(p));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          std::vector<Record> produced = udf.fn(in.at(i));
          for (auto& p : produced) part.push_back(std::move(p));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> Filter(const PredicateUdf& udf, const Dataset& in,
                       const KernelOptions& opts) {
  if (!udf.fn && udf.expr == nullptr) {
    return Status::InvalidArgument("Filter UDF is empty");
  }
  TimingScope scope(kIdFilter, in.size());
  // Declarative predicates take the vectorized path: the expression tree is
  // evaluated column-at-a-time over the whole batch (morsel) instead of one
  // virtual call per record.
  const expr::Expr* tree = udf.expr.get();
  auto decide = [&](std::size_t b, std::size_t e,
                    std::vector<std::size_t>* kept) {
    if (tree != nullptr) {
      std::vector<unsigned char> keep;
      expr::EvalPredicateBatch(*tree, in.records(), b, e, &keep);
      for (std::size_t i = b; i < e; ++i) {
        if (keep[i - b]) kept->push_back(i);
      }
    } else {
      for (std::size_t i = b; i < e; ++i) {
        if (udf.fn(in.at(i))) kept->push_back(i);
      }
    }
  };
  if (!UseParallel(opts, in.size())) {
    // Index gather: decide first, then copy exactly the survivors into a
    // right-sized vector — no reallocation churn on large outputs.
    std::vector<std::size_t> kept;
    decide(0, in.size(), &kept);
    std::vector<Record> out;
    out.reserve(kept.size());
    for (std::size_t i : kept) out.push_back(in.at(i));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        std::vector<std::size_t> kept;
        decide(b, e, &kept);
        auto& part = parts[m];
        part.reserve(kept.size());
        for (std::size_t i : kept) part.push_back(in.at(i));
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> Project(const std::vector<int>& columns, const Dataset& in,
                        const KernelOptions& opts) {
  for (int c : columns) {
    if (c < 0) return Status::InvalidArgument("negative projection column");
  }
  TimingScope scope(kIdProject, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& r : in.records()) {
      RHEEM_RETURN_IF_ERROR(CheckProjection(columns, r));
      out.push_back(r.Project(columns));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          RHEEM_RETURN_IF_ERROR(CheckProjection(columns, in.at(i)));
          part.push_back(in.at(i).Project(columns));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> Distinct(const Dataset& in) {
  // Keyed by pointers into the input — records are hashed/compared in place
  // and copied exactly once, into the right-sized output.
  struct PtrHash {
    std::size_t operator()(const Record* r) const { return r->Hash(); }
  };
  struct PtrEq {
    bool operator()(const Record* a, const Record* b) const { return *a == *b; }
  };
  std::unordered_set<const Record*, PtrHash, PtrEq> seen;
  seen.reserve(in.size());
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (seen.insert(&in.at(i)).second) kept.push_back(i);
  }
  std::vector<Record> out;
  out.reserve(kept.size());
  for (std::size_t i : kept) out.push_back(in.at(i));
  return Dataset(std::move(out));
}

Result<Dataset> SortByKey(const KeyUdf& key, const Dataset& in,
                          const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("Sort key UDF is empty");
  TimingScope scope(kIdSortByKey, in.size());
  if (!UseParallel(opts, in.size())) {
    // Decorate-sort-undecorate: evaluate the key once per record.
    std::vector<std::pair<Value, const Record*>> decorated;
    decorated.reserve(in.size());
    for (const auto& r : in.records()) decorated.emplace_back(key.fn(r), &r);
    std::stable_sort(decorated.begin(), decorated.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    std::vector<Record> out;
    out.reserve(in.size());
    for (const auto& [k, r] : decorated) out.push_back(*r);
    return Dataset(std::move(out));
  }
  std::vector<SortEntry> buf_a, buf_b;
  const SortEntry* sorted =
      ParallelSortEntries(key.fn, in, opts, scope, buf_a, buf_b);
  std::vector<Record> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.push_back(in.at(sorted[i].index));
  }
  return Dataset(std::move(out));
}

Result<Dataset> Sample(double fraction, uint64_t seed, const Dataset& in,
                       const KernelOptions& opts, uint64_t index_offset) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("sample fraction must be in [0,1]");
  }
  TimingScope scope(kIdSample, in.size());
  // Keep/drop is a stateless function of (seed, global index) — a SplitMix64
  // finalizer driving a Bernoulli draw — so element `index_offset + i` gets
  // the same decision no matter how the input is partitioned. That is what
  // makes Sample agree byte-for-byte across javasim (one call over the whole
  // dataset) and sparksim (one call per partition with that partition's
  // global offset).
  std::vector<char> keep(in.size(), 0);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    uint64_t x = seed ^ ((index_offset + i) * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    keep[i] = (static_cast<double>(x >> 11) * 0x1.0p-53) < fraction ? 1 : 0;
    kept += keep[i];
  }
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(kept);
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (keep[i]) out.push_back(in.at(i));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        std::size_t local = 0;
        for (std::size_t i = b; i < e; ++i) local += keep[i];
        auto& part = parts[m];
        part.reserve(local);
        for (std::size_t i = b; i < e; ++i) {
          if (keep[i]) part.push_back(in.at(i));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> ZipWithId(int64_t first_id, const Dataset& in,
                          const KernelOptions& opts) {
  TimingScope scope(kIdZipWithId, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    int64_t id = first_id;
    for (const auto& r : in.records()) {
      Record withId = r;
      withId.Append(Value(id++));
      out.push_back(std::move(withId));
    }
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          Record withId = in.at(i);
          withId.Append(Value(first_id + static_cast<int64_t>(i)));
          part.push_back(std::move(withId));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

// ---------------------------------------------------------------------------
// Aggregation kernels
// ---------------------------------------------------------------------------

Result<Dataset> ReduceByKey(const KeyUdf& key, const ReduceUdf& reduce,
                            const Dataset& in, const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("ReduceByKey key UDF is empty");
  if (!reduce.fn) return Status::InvalidArgument("ReduceByKey reduce UDF is empty");
  TimingScope scope(kIdReduceByKey, in.size());
  // std::map keeps output deterministic across platforms and partitionings.
  if (!UseParallel(opts, in.size())) {
    std::map<Value, Record> acc;
    for (const auto& r : in.records()) {
      Value k = key.fn(r);
      auto it = acc.find(k);
      if (it == acc.end()) {
        acc.emplace(std::move(k), r);
      } else {
        it->second = reduce.fn(it->second, r);
      }
    }
    std::vector<Record> out;
    out.reserve(acc.size());
    for (auto& [k, v] : acc) out.push_back(std::move(v));
    return Dataset(std::move(out));
  }
  // Per-morsel partial maps folded in input order, merged in morsel order:
  // for the associative/commutative combiners ReduceUdf requires, the result
  // equals the serial left fold; output order (sorted by key) is identical.
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::map<Value, Record>> partials(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& acc = partials[m];
        for (std::size_t i = b; i < e; ++i) {
          const Record& r = in.at(i);
          Value k = key.fn(r);
          auto it = acc.find(k);
          if (it == acc.end()) {
            acc.emplace(std::move(k), r);
          } else {
            it->second = reduce.fn(it->second, r);
          }
        }
        return Status::OK();
      }));
  std::map<Value, Record> acc = std::move(partials[0]);
  for (std::size_t m = 1; m < partials.size(); ++m) {
    for (auto& [k, v] : partials[m]) {
      auto it = acc.find(k);
      if (it == acc.end()) {
        acc.emplace(k, std::move(v));
      } else {
        it->second = reduce.fn(it->second, v);
      }
    }
  }
  std::vector<Record> out;
  out.reserve(acc.size());
  for (auto& [k, v] : acc) out.push_back(std::move(v));
  return Dataset(std::move(out));
}

Result<Dataset> HashGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in, const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("GroupBy key UDF is empty");
  if (!group.fn) return Status::InvalidArgument("GroupBy group UDF is empty");
  TimingScope scope(kIdHashGroupBy, in.size());
  using IndexGroups =
      std::unordered_map<Value, std::vector<std::size_t>, ValueHasher>;
  if (!UseParallel(opts, in.size())) {
    // Group by index, materializing each member list once, right-sized, at
    // the point of the UDF call.
    IndexGroups groups;
    groups.reserve(in.size());
    // Track first-seen order of keys for deterministic output.
    std::vector<const Value*> key_order;
    for (std::size_t i = 0; i < in.size(); ++i) {
      Value k = key.fn(in.at(i));
      auto [it, inserted] = groups.try_emplace(std::move(k));
      if (inserted) key_order.push_back(&it->first);
      it->second.push_back(i);
    }
    std::vector<Record> out;
    for (const Value* k : key_order) {
      const std::vector<std::size_t>& idx = groups.at(*k);
      std::vector<Record> members;
      members.reserve(idx.size());
      for (std::size_t i : idx) members.push_back(in.at(i));
      std::vector<Record> produced = group.fn(*k, members);
      for (auto& p : produced) out.push_back(std::move(p));
    }
    return Dataset(std::move(out));
  }
  // Phase 1: per-morsel index groups with local first-seen key order.
  struct Partial {
    IndexGroups groups;
    std::vector<const Value*> order;
  };
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<Partial> partials(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        Partial& p = partials[m];
        p.groups.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          Value k = key.fn(in.at(i));
          auto [it, inserted] = p.groups.try_emplace(std::move(k));
          if (inserted) p.order.push_back(&it->first);
          it->second.push_back(i);
        }
        return Status::OK();
      }));
  // Phase 2 (serial): merge in morsel order. Global key order = first-seen
  // order over the input, member indices ascend per key — exactly serial.
  IndexGroups merged;
  merged.reserve(in.size());
  std::vector<const Value*> key_order;
  for (const Partial& p : partials) {
    for (const Value* k : p.order) {
      auto src = p.groups.find(*k);
      auto [it, inserted] = merged.try_emplace(*k);
      if (inserted) key_order.push_back(&it->first);
      it->second.insert(it->second.end(), src->second.begin(),
                        src->second.end());
    }
  }
  // Phase 3: apply the group UDF over key chunks in parallel; chunking is
  // deterministic (by member counts), output concatenated in key order.
  std::vector<std::size_t> sizes;
  sizes.reserve(key_order.size());
  for (const Value* k : key_order) sizes.push_back(merged.at(*k).size());
  const auto chunks = ChunkBySize(sizes, opts.morsel_size);
  std::vector<std::vector<Record>> parts(chunks.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, chunks, scope, [&](std::size_t c, std::size_t b, std::size_t e) {
        auto& part = parts[c];
        for (std::size_t ki = b; ki < e; ++ki) {
          const Value* k = key_order[ki];
          const std::vector<std::size_t>& idx = merged.at(*k);
          std::vector<Record> members;
          members.reserve(idx.size());
          for (std::size_t i : idx) members.push_back(in.at(i));
          std::vector<Record> produced = group.fn(*k, members);
          for (auto& p : produced) part.push_back(std::move(p));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> SortGroupBy(const KeyUdf& key, const GroupUdf& group,
                            const Dataset& in, const KernelOptions& opts) {
  if (!key.fn) return Status::InvalidArgument("GroupBy key UDF is empty");
  if (!group.fn) return Status::InvalidArgument("GroupBy group UDF is empty");
  TimingScope scope(kIdSortGroupBy, in.size());
  if (!UseParallel(opts, in.size())) {
    std::vector<std::pair<Value, const Record*>> decorated;
    decorated.reserve(in.size());
    for (const auto& r : in.records()) decorated.emplace_back(key.fn(r), &r);
    std::stable_sort(decorated.begin(), decorated.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    std::vector<Record> out;
    std::size_t i = 0;
    while (i < decorated.size()) {
      std::size_t j = i;
      std::vector<Record> members;
      while (j < decorated.size() &&
             decorated[j].first.Compare(decorated[i].first) == 0) {
        members.push_back(*decorated[j].second);
        ++j;
      }
      std::vector<Record> produced = group.fn(decorated[i].first, members);
      for (auto& p : produced) out.push_back(std::move(p));
      i = j;
    }
    return Dataset(std::move(out));
  }
  std::vector<SortEntry> buf_a, buf_b;
  const SortEntry* sorted =
      ParallelSortEntries(key.fn, in, opts, scope, buf_a, buf_b);
  // Serial run-boundary scan, then the group UDF over run chunks in parallel.
  std::vector<MorselRange> runs;
  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t j = i + 1;
    while (j < in.size() && sorted[j].key.Compare(sorted[i].key) == 0) ++j;
    runs.emplace_back(i, j);
    i = j;
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(runs.size());
  for (const auto& r : runs) sizes.push_back(r.second - r.first);
  const auto chunks = ChunkBySize(sizes, opts.morsel_size);
  std::vector<std::vector<Record>> parts(chunks.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, chunks, scope, [&](std::size_t c, std::size_t b, std::size_t e) {
        auto& part = parts[c];
        for (std::size_t g = b; g < e; ++g) {
          const auto [s0, s1] = runs[g];
          std::vector<Record> members;
          members.reserve(s1 - s0);
          for (std::size_t k = s0; k < s1; ++k) {
            members.push_back(in.at(sorted[k].index));
          }
          std::vector<Record> produced = group.fn(sorted[s0].key, members);
          for (auto& p : produced) part.push_back(std::move(p));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> GlobalReduce(const ReduceUdf& reduce, const Dataset& in,
                             const KernelOptions& opts) {
  if (!reduce.fn) return Status::InvalidArgument("GlobalReduce UDF is empty");
  if (in.empty()) return Dataset();
  TimingScope scope(kIdGlobalReduce, in.size());
  if (!UseParallel(opts, in.size())) {
    Record acc = in.at(0);
    for (std::size_t i = 1; i < in.size(); ++i) {
      acc = reduce.fn(acc, in.at(i));
    }
    return Dataset(std::vector<Record>{std::move(acc)});
  }
  // Per-morsel left folds combined left-to-right: equal to the serial fold
  // by associativity alone (operand order is preserved).
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<Record> partials(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        Record acc = in.at(b);
        for (std::size_t i = b + 1; i < e; ++i) {
          acc = reduce.fn(acc, in.at(i));
        }
        partials[m] = std::move(acc);
        return Status::OK();
      }));
  Record acc = std::move(partials[0]);
  for (std::size_t m = 1; m < partials.size(); ++m) {
    acc = reduce.fn(acc, partials[m]);
  }
  return Dataset(std::vector<Record>{std::move(acc)});
}

Result<Dataset> Count(const Dataset& in, const KernelOptions& opts) {
  (void)opts;  // counting a materialized Dataset is O(1)
  TimingScope scope(kIdCount, in.size());
  return Dataset(std::vector<Record>{
      Record({Value(static_cast<int64_t>(in.size()))})});
}

Result<Dataset> BroadcastMap(const BroadcastMapUdf& udf, const Dataset& main,
                             const Dataset& broadcast,
                             const KernelOptions& opts) {
  if (!udf.fn) return Status::InvalidArgument("BroadcastMap UDF is empty");
  TimingScope scope(kIdBroadcastMap, main.size());
  if (!UseParallel(opts, main.size())) {
    std::vector<Record> out;
    out.reserve(main.size());
    for (const auto& r : main.records()) out.push_back(udf.fn(r, broadcast));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(main.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        for (std::size_t i = b; i < e; ++i) {
          part.push_back(udf.fn(main.at(i), broadcast));
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

// ---------------------------------------------------------------------------
// Join kernels
// ---------------------------------------------------------------------------

Result<Dataset> HashJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                         const Dataset& left, const Dataset& right,
                         const KernelOptions& opts) {
  if (!left_key.fn || !right_key.fn) {
    return Status::InvalidArgument("Join key UDF is empty");
  }
  TimingScope scope(kIdHashJoin, left.size() + right.size());
  if (!UseParallel(opts, std::max(left.size(), right.size()))) {
    std::unordered_map<Value, std::vector<const Record*>, ValueHasher> build;
    build.reserve(right.size());
    for (const auto& r : right.records()) {
      build[right_key.fn(r)].push_back(&r);
    }
    std::vector<Record> out;
    for (const auto& l : left.records()) {
      auto it = build.find(left_key.fn(l));
      if (it == build.end()) continue;
      for (const Record* r : it->second) {
        out.push_back(Record::Concat(l, *r));
      }
    }
    return Dataset(std::move(out));
  }
  // Partitioned build: all rows of a key hash to one partition and are
  // appended in input order, so the per-key match lists — and therefore the
  // probe output — are independent of the partition count.
  const std::size_t P =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   PoolFor(opts).num_threads() + 1, 64));
  std::vector<Value> rkeys(right.size());
  std::vector<std::size_t> rpart(right.size());
  const auto rranges = MorselRanges(right.size(), opts.morsel_size);
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, rranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        (void)m;
        for (std::size_t i = b; i < e; ++i) {
          rkeys[i] = right_key.fn(right.at(i));
          rpart[i] = ValueHasher{}(rkeys[i]) % P;
        }
        return Status::OK();
      }));
  std::vector<std::size_t> counts(P, 0);
  for (std::size_t p : rpart) ++counts[p];
  std::vector<std::vector<std::size_t>> part_rows(P);
  for (std::size_t p = 0; p < P; ++p) part_rows[p].reserve(counts[p]);
  for (std::size_t i = 0; i < rpart.size(); ++i) {
    part_rows[rpart[i]].push_back(i);
  }
  using Table =
      std::unordered_map<Value, std::vector<std::size_t>, ValueHasher>;
  std::vector<Table> tables(P);
  Stopwatch build_loop;
  PoolFor(opts).ParallelFor(P, [&](std::size_t p) {
    ThreadCpuTimer cpu;
    Table& t = tables[p];
    t.reserve(part_rows[p].size());
    for (std::size_t i : part_rows[p]) t[rkeys[i]].push_back(i);
    scope.AddMorselCpu(cpu.ElapsedMicros());
  });
  scope.AddLoopWall(build_loop.ElapsedMicros());
  const auto lranges = MorselRanges(left.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(lranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, lranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        for (std::size_t i = b; i < e; ++i) {
          const Record& l = left.at(i);
          Value k = left_key.fn(l);
          const Table& t = tables[ValueHasher{}(k) % P];
          auto it = t.find(k);
          if (it == t.end()) continue;
          for (std::size_t j : it->second) {
            part.push_back(Record::Concat(l, right.at(j)));
          }
        }
        return Status::OK();
      }));
  return ConcatMorsels(std::move(parts));
}

Result<Dataset> SortMergeJoin(const KeyUdf& left_key, const KeyUdf& right_key,
                              const Dataset& left, const Dataset& right) {
  if (!left_key.fn || !right_key.fn) {
    return Status::InvalidArgument("Join key UDF is empty");
  }
  std::vector<std::pair<Value, const Record*>> ls, rs;
  ls.reserve(left.size());
  rs.reserve(right.size());
  for (const auto& r : left.records()) ls.emplace_back(left_key.fn(r), &r);
  for (const auto& r : right.records()) rs.emplace_back(right_key.fn(r), &r);
  auto less = [](const auto& a, const auto& b) {
    return a.first.Compare(b.first) < 0;
  };
  std::stable_sort(ls.begin(), ls.end(), less);
  std::stable_sort(rs.begin(), rs.end(), less);

  std::vector<Record> out;
  std::size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    const int c = ls[i].first.Compare(rs[j].first);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Emit the full run x run block.
      std::size_t i_end = i;
      while (i_end < ls.size() && ls[i_end].first.Compare(ls[i].first) == 0) ++i_end;
      std::size_t j_end = j;
      while (j_end < rs.size() && rs[j_end].first.Compare(rs[j].first) == 0) ++j_end;
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          out.push_back(Record::Concat(*ls[a].second, *rs[b].second));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> ThetaJoin(const ThetaUdf& condition, const Dataset& left,
                          const Dataset& right) {
  if (!condition.fn && condition.pair_expr == nullptr) {
    return Status::InvalidArgument("ThetaJoin UDF is empty");
  }
  std::vector<Record> out;
  // The declarative path skips materializing Concat(l, r) for rejected
  // pairs: the expression evaluates over the implicit concatenation.
  const expr::Expr* tree = condition.pair_expr.get();
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      const bool match = tree != nullptr ? expr::EvalPredicatePair(*tree, l, r)
                                         : condition.fn(l, r);
      if (match) out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> CrossProduct(const Dataset& left, const Dataset& right) {
  std::vector<Record> out;
  out.reserve(left.size() * right.size());
  for (const auto& l : left.records()) {
    for (const auto& r : right.records()) {
      out.push_back(Record::Concat(l, r));
    }
  }
  return Dataset(std::move(out));
}

Result<Dataset> Union(const Dataset& left, const Dataset& right) {
  std::vector<Record> out;
  out.reserve(left.size() + right.size());
  for (const auto& r : left.records()) out.push_back(r);
  for (const auto& r : right.records()) out.push_back(r);
  return Dataset(std::move(out));
}

Result<Dataset> Intersect(const Dataset& left, const Dataset& right) {
  std::unordered_map<Record, bool, RecordHasher> in_right;
  in_right.reserve(right.size());
  for (const auto& r : right.records()) in_right.emplace(r, true);
  std::unordered_map<Record, bool, RecordHasher> emitted;
  std::vector<Record> out;
  for (const auto& r : left.records()) {
    if (in_right.count(r) == 0) continue;
    auto [it, inserted] = emitted.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> Subtract(const Dataset& left, const Dataset& right) {
  std::unordered_map<Record, bool, RecordHasher> in_right;
  in_right.reserve(right.size());
  for (const auto& r : right.records()) in_right.emplace(r, true);
  std::unordered_map<Record, bool, RecordHasher> emitted;
  std::vector<Record> out;
  for (const auto& r : left.records()) {
    if (in_right.count(r) > 0) continue;
    auto [it, inserted] = emitted.emplace(r, true);
    if (inserted) out.push_back(r);
  }
  return Dataset(std::move(out));
}

Result<Dataset> TopK(const KeyUdf& key, int64_t k, bool ascending,
                     const Dataset& in) {
  if (!key.fn) return Status::InvalidArgument("TopK key UDF is empty");
  if (k < 0) return Status::InvalidArgument("TopK wants k >= 0");
  if (k == 0) return Dataset();
  // Decorated entries carry the input index to keep ties deterministic.
  struct Entry {
    Value key;
    std::size_t index;
  };
  // `better(a, b)`: should a be kept over b? Heaping with this comparator
  // leaves the *worst* retained entry on top, ready for replacement.
  auto better = [ascending](const Entry& a, const Entry& b) {
    const int c = a.key.Compare(b.key);
    if (c != 0) return ascending ? c < 0 : c > 0;
    return a.index < b.index;  // earlier input wins ties
  };
  std::vector<Entry> heap;
  heap.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < in.size(); ++i) {
    Entry e{key.fn(in.at(i)), i};
    if (heap.size() < static_cast<std::size_t>(k)) {
      heap.push_back(std::move(e));
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(e, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = std::move(e);
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), better);
  // sort_heap leaves the sequence ordered best-first under `better`.
  std::vector<Record> out;
  out.reserve(heap.size());
  for (const Entry& e : heap) out.push_back(in.at(e.index));
  return Dataset(std::move(out));
}

// ---------------------------------------------------------------------------
// Fused pipeline
// ---------------------------------------------------------------------------

FusedStep FusedStep::OfMap(MapUdf udf) {
  FusedStep s;
  s.kind = Kind::kMap;
  s.map = std::move(udf);
  return s;
}

FusedStep FusedStep::OfFilter(PredicateUdf udf) {
  FusedStep s;
  s.kind = Kind::kFilter;
  s.filter = std::move(udf);
  return s;
}

FusedStep FusedStep::OfFlatMap(FlatMapUdf udf) {
  FusedStep s;
  s.kind = Kind::kFlatMap;
  s.flat_map = std::move(udf);
  return s;
}

FusedStep FusedStep::OfProject(std::vector<int> columns) {
  FusedStep s;
  s.kind = Kind::kProject;
  s.columns = std::move(columns);
  return s;
}

namespace {

Status ValidateSteps(const std::vector<FusedStep>& steps) {
  for (const FusedStep& s : steps) {
    switch (s.kind) {
      case FusedStep::Kind::kMap:
        if (!s.map.fn) return Status::InvalidArgument("Map UDF is empty");
        break;
      case FusedStep::Kind::kFilter:
        if (!s.filter.fn && s.filter.expr == nullptr)
          return Status::InvalidArgument("Filter UDF is empty");
        break;
      case FusedStep::Kind::kFlatMap:
        if (!s.flat_map.fn)
          return Status::InvalidArgument("FlatMap UDF is empty");
        break;
      case FusedStep::Kind::kProject:
        for (int c : s.columns) {
          if (c < 0) return Status::InvalidArgument("negative projection column");
        }
        break;
    }
  }
  return Status::OK();
}

/// Drives one record through steps[s..], appending survivors to `out` —
/// depth-first, so emission order matches running the kernels one at a time.
Status DriveRecord(const std::vector<FusedStep>& steps, std::size_t s,
                   const Record& r, std::vector<Record>& out) {
  if (s == steps.size()) {
    out.push_back(r);
    return Status::OK();
  }
  const FusedStep& step = steps[s];
  const bool last = (s + 1 == steps.size());
  switch (step.kind) {
    case FusedStep::Kind::kMap: {
      Record next = step.map.fn(r);
      if (last) {
        out.push_back(std::move(next));
        return Status::OK();
      }
      return DriveRecord(steps, s + 1, next, out);
    }
    case FusedStep::Kind::kFilter: {
      const bool keep = step.filter.expr != nullptr
                            ? expr::EvalPredicate(*step.filter.expr, r)
                            : step.filter.fn(r);
      if (!keep) return Status::OK();
      return DriveRecord(steps, s + 1, r, out);
    }
    case FusedStep::Kind::kFlatMap: {
      std::vector<Record> produced = step.flat_map.fn(r);
      for (Record& p : produced) {
        if (last) {
          out.push_back(std::move(p));
        } else {
          RHEEM_RETURN_IF_ERROR(DriveRecord(steps, s + 1, p, out));
        }
      }
      return Status::OK();
    }
    case FusedStep::Kind::kProject: {
      RHEEM_RETURN_IF_ERROR(CheckProjection(step.columns, r));
      Record next = r.Project(step.columns);
      if (last) {
        out.push_back(std::move(next));
        return Status::OK();
      }
      return DriveRecord(steps, s + 1, next, out);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> FusedPipeline(const std::vector<FusedStep>& steps,
                              const Dataset& in, const KernelOptions& opts) {
  RHEEM_RETURN_IF_ERROR(ValidateSteps(steps));
  TimingScope scope(kIdFusedPipeline, in.size());
  if (steps.empty()) {
    std::vector<Record> out(in.records());
    return Dataset(std::move(out));
  }
  // Vector-of-records fast path: a prefix of declarative filters is ANDed
  // and evaluated column-at-a-time over the whole morsel, so only the
  // survivors enter the per-record drive. Keep set is identical — Kleene
  // AND is true exactly when every conjunct is (Null drops either way).
  std::size_t lead = 0;
  while (lead < steps.size() &&
         steps[lead].kind == FusedStep::Kind::kFilter &&
         steps[lead].filter.expr != nullptr) {
    ++lead;
  }
  expr::ExprPtr lead_pred;
  if (lead > 0) {
    std::vector<expr::ExprPtr> conjuncts;
    for (std::size_t i = 0; i < lead; ++i) {
      conjuncts.push_back(steps[i].filter.expr);
    }
    lead_pred = expr::AndAll(conjuncts);
  }
  auto drive_range = [&](std::size_t b, std::size_t e,
                         std::vector<Record>& out) -> Status {
    if (lead_pred != nullptr) {
      std::vector<unsigned char> keep;
      expr::EvalPredicateBatch(*lead_pred, in.records(), b, e, &keep);
      for (std::size_t i = b; i < e; ++i) {
        if (!keep[i - b]) continue;
        RHEEM_RETURN_IF_ERROR(DriveRecord(steps, lead, in.at(i), out));
      }
      return Status::OK();
    }
    for (std::size_t i = b; i < e; ++i) {
      RHEEM_RETURN_IF_ERROR(DriveRecord(steps, 0, in.at(i), out));
    }
    return Status::OK();
  };
  if (!UseParallel(opts, in.size())) {
    std::vector<Record> out;
    out.reserve(in.size());
    RHEEM_RETURN_IF_ERROR(drive_range(0, in.size(), out));
    return Dataset(std::move(out));
  }
  const auto ranges = MorselRanges(in.size(), opts.morsel_size);
  std::vector<std::vector<Record>> parts(ranges.size());
  RHEEM_RETURN_IF_ERROR(RunMorsels(
      opts, ranges, scope, [&](std::size_t m, std::size_t b, std::size_t e) {
        auto& part = parts[m];
        part.reserve(e - b);
        return drive_range(b, e, part);
      }));
  return ConcatMorsels(std::move(parts));
}

}  // namespace kernels
}  // namespace rheem

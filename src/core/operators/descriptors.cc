#include "core/operators/descriptors.h"

namespace rheem {

namespace {

/// Pairwise combine of one column; the closure form of AggKind so the row
/// path and the columnar accumulators agree value-for-value.
Value CombineAgg(AggKind k, const Value& a, const Value& b) {
  switch (k) {
    case AggKind::kFirst:
      return a;
    case AggKind::kSum:
      if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
        return Value(a.int64_unchecked() + b.int64_unchecked());
      }
      if (a.is_numeric() && b.is_numeric()) {
        return Value(a.ToDoubleOr(0.0) + b.ToDoubleOr(0.0));
      }
      return Value::Null();
    case AggKind::kMin:
      if (a.is_null() || b.is_null()) return Value::Null();
      return a.Compare(b) <= 0 ? a : b;
    case AggKind::kMax:
      if (a.is_null() || b.is_null()) return Value::Null();
      return a.Compare(b) >= 0 ? a : b;
  }
  return Value::Null();
}

}  // namespace

const char* AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kFirst: return "first";
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
  }
  return "?";
}

Result<ReduceUdf> MakeAggReduceUdf(std::vector<AggSpec> aggs) {
  if (aggs.empty()) {
    return Status::InvalidArgument("aggregate spec needs >= 1 column");
  }
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].column != static_cast<int>(i)) {
      return Status::InvalidArgument(
          "aggregate output column " + std::to_string(i) +
          " must read input column " + std::to_string(i) +
          " (pairwise reduction is positional)");
    }
  }
  ReduceUdf udf;
  udf.aggs = aggs;
  udf.fn = [aggs](const Record& a, const Record& b) {
    std::vector<Value> out;
    out.reserve(aggs.size());
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      const Value va = i < a.size() ? a.at(i) : Value::Null();
      const Value vb = i < b.size() ? b.at(i) : Value::Null();
      out.push_back(CombineAgg(aggs[i].kind, va, vb));
    }
    return Record(std::move(out));
  };
  return udf;
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLess: return "<";
    case CompareOp::kLessEqual: return "<=";
    case CompareOp::kGreater: return ">";
    case CompareOp::kGreaterEqual: return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  const int c = a.Compare(b);
  switch (op) {
    case CompareOp::kLess: return c < 0;
    case CompareOp::kLessEqual: return c <= 0;
    case CompareOp::kGreater: return c > 0;
    case CompareOp::kGreaterEqual: return c >= 0;
  }
  return false;
}

}  // namespace rheem

#include "core/operators/descriptors.h"

namespace rheem {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLess: return "<";
    case CompareOp::kLessEqual: return "<=";
    case CompareOp::kGreater: return ">";
    case CompareOp::kGreaterEqual: return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  const int c = a.Compare(b);
  switch (op) {
    case CompareOp::kLess: return c < 0;
    case CompareOp::kLessEqual: return c <= 0;
    case CompareOp::kGreater: return c > 0;
    case CompareOp::kGreaterEqual: return c >= 0;
  }
  return false;
}

}  // namespace rheem

#ifndef RHEEM_CORE_PLAN_PLAN_H_
#define RHEEM_CORE_PLAN_PLAN_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/plan/operator.h"

namespace rheem {

/// \brief Owning container for a dataflow DAG of operators at one
/// abstraction level (a logical plan, a physical plan, or a loop body).
///
/// Operators are added via Add<T>(...); dataflow edges are recorded on the
/// operators themselves (Operator::AddInput). Exactly one operator is the
/// designated sink — its output is the plan's result.
class Plan {
 public:
  Plan() = default;

  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  /// Constructs an operator in place, takes ownership, assigns its id, and
  /// wires the given upstream inputs. Returns a non-owning pointer valid for
  /// the plan's lifetime.
  template <typename T, typename... Args>
  T* Add(std::vector<Operator*> inputs, Args&&... args) {
    auto op = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = op.get();
    raw->id_ = static_cast<int>(ops_.size());
    if (raw->name().empty()) {
      raw->set_name(raw->kind_name() + "#" + std::to_string(raw->id_));
    }
    for (Operator* in : inputs) raw->AddInput(in);
    ops_.push_back(std::move(op));
    return raw;
  }

  std::size_t size() const { return ops_.size(); }
  Operator* op(std::size_t i) const { return ops_[i].get(); }

  Operator* sink() const { return sink_; }
  void SetSink(Operator* op) { sink_ = op; }

  /// All operators in a deterministic topological order (inputs before
  /// consumers). Errors if the plan has a cycle or dangling inputs.
  Result<std::vector<Operator*>> TopologicalOrder() const;

  /// Structural checks: sink set, arities satisfied, all referenced inputs
  /// owned by this plan, DAG acyclic, every op reaches the sink or is a
  /// side-effect-free orphan (orphans are an error: they signal plan bugs).
  Status Validate() const;

  /// Operators whose output feeds `op` positionally (convenience).
  static const std::vector<Operator*>& InputsOf(const Operator* op) {
    return op->inputs();
  }

  /// Downstream consumers of `op` within this plan.
  std::vector<Operator*> ConsumersOf(const Operator* op) const;

  /// Drops every operator that does not reach the sink (rewrites leave such
  /// orphans behind), compacts ids, and returns the old-id -> new-id map for
  /// surviving operators. Requires a sink.
  Result<std::map<int, int>> PruneToSink();

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  Operator* sink_ = nullptr;
};

}  // namespace rheem

#endif  // RHEEM_CORE_PLAN_PLAN_H_

#include "core/plan/plan_printer.h"

#include "core/operators/physical_ops.h"

namespace rheem {

std::string PlanPrinter::ToText(const Plan& plan,
                                const std::map<int, std::string>& annotations) {
  auto order = plan.TopologicalOrder();
  if (!order.ok()) return "<invalid plan: " + order.status().ToString() + ">";
  std::string out;
  for (Operator* op : order.ValueOrDie()) {
    out += "#" + std::to_string(op->id()) + " " + op->kind_name();
    if (!op->inputs().empty()) {
      out += " <- ";
      for (std::size_t i = 0; i < op->inputs().size(); ++i) {
        if (i > 0) out += ", ";
        out += "#" + std::to_string(op->inputs()[i]->id());
      }
    }
    if (op == plan.sink()) out += " (sink)";
    auto it = annotations.find(op->id());
    if (it != annotations.end()) out += " [" + it->second + "]";
    out += "\n";
  }
  return out;
}

namespace {

void EmitDot(const Plan& plan, const std::string& prefix, std::string* out) {
  for (std::size_t i = 0; i < plan.size(); ++i) {
    Operator* op = plan.op(i);
    const std::string node = prefix + std::to_string(op->id());
    *out += "  \"" + node + "\" [label=\"" + op->kind_name() + "\\n#" +
            std::to_string(op->id()) + "\"";
    if (op == plan.sink()) *out += ", shape=doubleoctagon";
    *out += "];\n";
    for (Operator* in : op->inputs()) {
      *out += "  \"" + prefix + std::to_string(in->id()) + "\" -> \"" + node +
              "\";\n";
    }
    // Nested loop bodies become clusters.
    const Plan* body = nullptr;
    if (auto* rep = dynamic_cast<RepeatOp*>(op)) {
      body = &rep->body();
    } else if (auto* dw = dynamic_cast<DoWhileOp*>(op)) {
      body = &dw->body();
    }
    if (body != nullptr) {
      const std::string sub = prefix + std::to_string(op->id()) + "_body_";
      *out += "  subgraph \"cluster_" + sub + "\" {\n  label=\"body of " +
              op->kind_name() + " #" + std::to_string(op->id()) + "\";\n";
      EmitDot(*body, sub, out);
      *out += "  }\n";
      *out += "  \"" + sub + std::to_string(body->sink()->id()) + "\" -> \"" +
              node + "\" [style=dashed];\n";
    }
  }
}

}  // namespace

std::string PlanPrinter::ToDot(const Plan& plan) {
  std::string out = "digraph rheem_plan {\n  rankdir=TB;\n  node [shape=box];\n";
  EmitDot(plan, "op", &out);
  out += "}\n";
  return out;
}

}  // namespace rheem

#ifndef RHEEM_CORE_PLAN_OPERATOR_H_
#define RHEEM_CORE_PLAN_OPERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/record.h"

namespace rheem {

/// The three abstraction levels of the RHEEM processing stack (paper §3).
/// RHEEM's distinguishing design decision is the *decoupling* of the physical
/// level from the execution level: a physical plan states algorithmic intent
/// only; the multi-platform optimizer later binds each piece to a platform.
enum class OpLevel {
  kLogical,    // application layer: abstract UDF templates
  kPhysical,   // core layer: platform-independent algorithmic choices
  kExecution,  // platform layer: platform-dependent implementations
};

const char* OpLevelToString(OpLevel level);

/// \brief Base class of every plan node at any abstraction level.
///
/// An operator has an ordered list of input operators (the dataflow edges)
/// and exactly one output that downstream operators reference. Ownership of
/// operators lies with the Plan that contains them; Operator stores raw
/// non-owning upstream pointers.
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  virtual OpLevel level() const = 0;

  /// Short kind label, e.g. "Map", "HashGroupBy" (for printing/mappings).
  virtual std::string kind_name() const = 0;

  /// Token folded into plan fingerprints (core/optimizer/fingerprint.h).
  /// Two operators with equal tokens, names and wiring are treated as
  /// semantically interchangeable by the plan cache, so subclasses carrying
  /// payload beyond their kind (parameters, UDF metadata) must encode it
  /// here. UDF closures themselves cannot be hashed; the contract is that
  /// equal tokens imply equal behaviour.
  virtual std::string FingerprintToken() const { return kind_name(); }

  /// Number of dataflow inputs this operator requires.
  virtual int arity() const = 0;

  const std::vector<Operator*>& inputs() const { return inputs_; }
  void AddInput(Operator* op) { inputs_.push_back(op); }
  void SetInput(std::size_t i, Operator* op) { inputs_[i] = op; }
  void ClearInputs() { inputs_.clear(); }

 protected:
  Operator() = default;

 private:
  friend class Plan;
  int id_ = -1;  // assigned by the owning Plan
  std::string name_;
  std::vector<Operator*> inputs_;
};

/// \brief Application-layer operator: an abstract UDF template (paper §3.2).
///
/// Application developers subclass LogicalOperator and implement ApplyOp, the
/// per-data-quantum hook RHEEM invokes at runtime. End users fill these
/// templates with their task logic; the application optimizer then translates
/// a logical plan into a physical plan of wrapper/enhancer operators.
class LogicalOperator : public Operator {
 public:
  OpLevel level() const override { return OpLevel::kLogical; }

  /// Applies the operator's logic to one data quantum, emitting zero or more
  /// output quanta into `out`. This is the paper's `applyOp`.
  virtual Status ApplyOp(const Record& in, std::vector<Record>* out) = 0;

  /// Estimated fraction of output quanta per input quantum (drives the
  /// cardinality estimator: 1.0 for maps, <1 for filters, >1 for flat maps).
  virtual double SelectivityHint() const { return 1.0; }

  /// Relative CPU weight of one ApplyOp call (1.0 = trivial arithmetic).
  virtual double CostHint() const { return 1.0; }

  /// Default token: kind label + concrete C++ type + hints, so two distinct
  /// application operator classes sharing a kind label never collide in the
  /// plan cache.
  std::string FingerprintToken() const override;
};

}  // namespace rheem

#endif  // RHEEM_CORE_PLAN_OPERATOR_H_

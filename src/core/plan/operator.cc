#include "core/plan/operator.h"

namespace rheem {

const char* OpLevelToString(OpLevel level) {
  switch (level) {
    case OpLevel::kLogical: return "logical";
    case OpLevel::kPhysical: return "physical";
    case OpLevel::kExecution: return "execution";
  }
  return "?";
}

}  // namespace rheem

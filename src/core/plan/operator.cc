#include "core/plan/operator.h"

#include <typeinfo>

namespace rheem {

const char* OpLevelToString(OpLevel level) {
  switch (level) {
    case OpLevel::kLogical: return "logical";
    case OpLevel::kPhysical: return "physical";
    case OpLevel::kExecution: return "execution";
  }
  return "?";
}

std::string LogicalOperator::FingerprintToken() const {
  return kind_name() + "@" + typeid(*this).name() +
         "|sel=" + std::to_string(SelectivityHint()) +
         "|cost=" + std::to_string(CostHint());
}

}  // namespace rheem

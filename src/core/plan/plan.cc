#include "core/plan/plan.h"

#include <set>
#include <string>

namespace rheem {

Result<std::vector<Operator*>> Plan::TopologicalOrder() const {
  // Kahn's algorithm with deterministic tie-breaking by operator id.
  std::set<const Operator*> owned;
  for (const auto& op : ops_) owned.insert(op.get());

  std::vector<int> pending_inputs(ops_.size(), 0);
  std::vector<std::vector<Operator*>> consumers(ops_.size());
  for (const auto& op : ops_) {
    for (Operator* in : op->inputs()) {
      if (owned.count(in) == 0) {
        return Status::InvalidPlan("operator '" + op->name() +
                                   "' references an input not owned by this plan");
      }
      ++pending_inputs[static_cast<std::size_t>(op->id())];
      consumers[static_cast<std::size_t>(in->id())].push_back(op.get());
    }
  }

  std::vector<Operator*> ready;
  for (const auto& op : ops_) {
    if (pending_inputs[static_cast<std::size_t>(op->id())] == 0) {
      ready.push_back(op.get());
    }
  }
  std::vector<Operator*> order;
  order.reserve(ops_.size());
  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    Operator* op = ready[cursor++];
    order.push_back(op);
    for (Operator* c : consumers[static_cast<std::size_t>(op->id())]) {
      if (--pending_inputs[static_cast<std::size_t>(c->id())] == 0) {
        ready.push_back(c);
      }
    }
  }
  if (order.size() != ops_.size()) {
    return Status::InvalidPlan("plan contains a cycle");
  }
  return order;
}

Status Plan::Validate() const {
  if (ops_.empty()) return Status::InvalidPlan("plan is empty");
  if (sink_ == nullptr) return Status::InvalidPlan("plan has no sink");

  bool sink_owned = false;
  for (const auto& op : ops_) {
    if (op.get() == sink_) sink_owned = true;
    const int want = op->arity();
    const int got = static_cast<int>(op->inputs().size());
    if (want != got) {
      return Status::InvalidPlan(
          "operator '" + op->name() + "' wants " + std::to_string(want) +
          " inputs but has " + std::to_string(got));
    }
  }
  if (!sink_owned) return Status::InvalidPlan("sink is not owned by this plan");

  auto order = TopologicalOrder();
  if (!order.ok()) return order.status();

  // Reachability: every operator must contribute to the sink.
  std::vector<bool> reaches(ops_.size(), false);
  reaches[static_cast<std::size_t>(sink_->id())] = true;
  const auto& topo = order.ValueOrDie();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if (!reaches[static_cast<std::size_t>((*it)->id())]) continue;
    for (Operator* in : (*it)->inputs()) {
      reaches[static_cast<std::size_t>(in->id())] = true;
    }
  }
  for (const auto& op : ops_) {
    if (!reaches[static_cast<std::size_t>(op->id())]) {
      return Status::InvalidPlan("operator '" + op->name() +
                                 "' does not reach the sink (orphan)");
    }
  }
  return Status::OK();
}

Result<std::map<int, int>> Plan::PruneToSink() {
  if (sink_ == nullptr) return Status::InvalidPlan("plan has no sink");
  // Mark reachable operators walking upstream from the sink.
  std::vector<bool> reachable(ops_.size(), false);
  std::vector<Operator*> work{sink_};
  while (!work.empty()) {
    Operator* op = work.back();
    work.pop_back();
    auto flag = reachable[static_cast<std::size_t>(op->id())];
    if (flag) continue;
    reachable[static_cast<std::size_t>(op->id())] = true;
    for (Operator* in : op->inputs()) work.push_back(in);
  }
  std::map<int, int> remap;
  std::vector<std::unique_ptr<Operator>> kept;
  kept.reserve(ops_.size());
  for (auto& op : ops_) {
    if (!reachable[static_cast<std::size_t>(op->id())]) continue;
    const int old_id = op->id();
    op->id_ = static_cast<int>(kept.size());
    remap[old_id] = op->id_;
    kept.push_back(std::move(op));
  }
  ops_ = std::move(kept);
  return remap;
}

std::vector<Operator*> Plan::ConsumersOf(const Operator* op) const {
  std::vector<Operator*> out;
  for (const auto& candidate : ops_) {
    for (Operator* in : candidate->inputs()) {
      if (in == op) {
        out.push_back(candidate.get());
        break;
      }
    }
  }
  return out;
}

}  // namespace rheem

#ifndef RHEEM_CORE_PLAN_PLAN_PRINTER_H_
#define RHEEM_CORE_PLAN_PLAN_PRINTER_H_

#include <map>
#include <string>

#include "core/plan/plan.h"

namespace rheem {

/// \brief Debug renderings of plans for logs, tests and documentation.
class PlanPrinter {
 public:
  /// One line per operator in topological order:
  ///   "#3 HashGroupBy <- #1, #2 [annotation]"
  /// `annotations` (optional) maps operator id -> extra text, used by the
  /// optimizer to show platform assignments and estimated cardinalities.
  static std::string ToText(const Plan& plan,
                            const std::map<int, std::string>& annotations = {});

  /// Graphviz DOT rendering (nested loop bodies rendered as subgraphs).
  static std::string ToDot(const Plan& plan);
};

}  // namespace rheem

#endif  // RHEEM_CORE_PLAN_PLAN_PRINTER_H_

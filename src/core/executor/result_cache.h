#ifndef RHEEM_CORE_EXECUTOR_RESULT_CACHE_H_
#define RHEEM_CORE_EXECUTOR_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/result.h"
#include "core/optimizer/stage_splitter.h"
#include "data/dataset.h"

namespace rheem {

/// \brief Thread-safe LRU cache of materialized sub-plan results, keyed by
/// sub-plan fingerprint (see ComputeSubPlanFingerprints).
///
/// The paper's Executor is charged with "reusing materialized results"
/// (§4.2); a serving deployment sees the same sources and sub-plans again
/// and again, so the JobServer keeps one ResultCache and every job run
/// through it skips stages whose outputs were already computed — by a prior
/// run of the same job or by a different job sharing an operator prefix
/// (Nectar/RHEEMix-style sub-computation reuse).
///
/// Eviction is LRU by estimated bytes, the same budget discipline as the
/// storage layer's HotDataBuffer. Entries are shared const datasets: a hit
/// never copies a row, and concurrent jobs may hold the same entry while it
/// is evicted (the shared_ptr keeps it alive).
///
/// Like the plan cache, keys trust Operator::FingerprintToken: UDF closure
/// bodies are assumed equal when tokens, wiring and source content hashes
/// are equal. Callers that violate that contract opt out per submission
/// (JobOptions::use_result_cache = false).
///
/// Emits `result_cache.hits` / `result_cache.misses` / `result_cache.inserts`
/// / `result_cache.evictions` counters and the `result_cache.resident_bytes`
/// gauge into the process-wide MetricsRegistry.
class ResultCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
    int64_t resident_bytes = 0;
    std::size_t entries = 0;
    int64_t capacity_bytes = 0;
  };

  /// capacity_bytes <= 0 disables the cache (Lookup always misses without
  /// counting, Insert drops).
  explicit ResultCache(int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return capacity_bytes_ > 0; }

  /// Returns the cached result and refreshes its recency, or nullptr.
  std::shared_ptr<const Dataset> Lookup(uint64_t key);

  /// Inserts (or refreshes) an entry; oversized datasets bypass the cache.
  void Insert(uint64_t key, std::shared_ptr<const Dataset> data);

  void Clear();

  Stats stats() const;

 private:
  void EvictUntilFitsLocked(int64_t incoming_bytes);

  struct Entry {
    std::shared_ptr<const Dataset> data;
    int64_t bytes = 0;
    std::list<uint64_t>::iterator lru_pos;
  };

  const int64_t capacity_bytes_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> cache_;
  std::list<uint64_t> lru_;  // front = most recent
  int64_t resident_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t inserts_ = 0;
  int64_t evictions_ = 0;
};

/// Computes, for every operator of `eplan`, the fingerprint of the sub-plan
/// producing its output: a fold over the operator's FingerprintToken (which
/// embeds parameters, UDF metadata and — for sources — the input content
/// hash), its name, its assigned platform, and the fingerprints of its
/// inputs, recursively. Two operators with equal fingerprints produce equal
/// results under the FingerprintToken contract, regardless of how their jobs
/// were split into stages — this is what lets a job reuse a *prefix* of a
/// previously executed, structurally different job.
///
/// The assigned platform is folded in deliberately: platforms agree on bags
/// but not on row order, and downstream order-sensitive operators (Sample)
/// must not observe another platform's order.
Result<std::map<int, uint64_t>> ComputeSubPlanFingerprints(
    const ExecutionPlan& eplan);

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_RESULT_CACHE_H_

#ifndef RHEEM_CORE_EXECUTOR_EXECUTION_STATE_H_
#define RHEEM_CORE_EXECUTOR_EXECUTION_STATE_H_

#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "data/dataset.h"

namespace rheem {

/// \brief Materialized intermediate results at task-atom boundaries.
///
/// Keyed by producer operator id. The executor writes each stage's boundary
/// outputs here and assembles the BoundaryMap for downstream stages from it.
///
/// Results are held as shared const datasets so the same materialization can
/// simultaneously live here, in the cross-job ResultCache, and in a consumer
/// stage — boundary reuse never copies rows.
class ExecutionState {
 public:
  ExecutionState() = default;

  void Put(int op_id, Dataset data);
  void Put(int op_id, std::shared_ptr<const Dataset> data);

  /// Borrow a stored dataset; errors when the producer has not run.
  Result<const Dataset*> Get(int op_id) const;

  /// Like Get but shares ownership (e.g. to insert into a result cache).
  Result<std::shared_ptr<const Dataset>> GetShared(int op_id) const;

  bool Has(int op_id) const { return store_.count(op_id) > 0; }

  /// Drops a dataset no longer needed (keeps peak memory in check).
  void Evict(int op_id);

  std::size_t size() const { return store_.size(); }

 private:
  std::unordered_map<int, std::shared_ptr<const Dataset>> store_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_EXECUTION_STATE_H_

#include "core/executor/result_cache.h"

#include "common/metrics.h"
#include "core/optimizer/fingerprint.h"

namespace rheem {

std::shared_ptr<const Dataset> ResultCache::Lookup(uint64_t key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry& registry = MetricsRegistry::Global();
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++misses_;
    CountIfEnabled(registry.counter("result_cache.misses"), 1);
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  CountIfEnabled(registry.counter("result_cache.hits"), 1);
  return it->second.data;
}

void ResultCache::Insert(uint64_t key, std::shared_ptr<const Dataset> data) {
  if (!enabled() || data == nullptr) return;
  const int64_t bytes = data->EstimatedBytes();
  if (bytes > capacity_bytes_) return;  // oversized: never cache
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Same fingerprint means same result; just refresh recency.
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return;
  }
  EvictUntilFitsLocked(bytes);
  lru_.push_front(key);
  Entry entry;
  entry.data = std::move(data);
  entry.bytes = bytes;
  entry.lru_pos = lru_.begin();
  cache_.emplace(key, std::move(entry));
  resident_bytes_ += bytes;
  ++inserts_;
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.counter("result_cache.inserts")->Add(1);
    registry.gauge("result_cache.resident_bytes")->Set(resident_bytes_);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.gauge("result_cache.resident_bytes")->Set(0);
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.entries = cache_.size();
  s.capacity_bytes = capacity_bytes_;
  return s;
}

void ResultCache::EvictUntilFitsLocked(int64_t incoming_bytes) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  while (!lru_.empty() && resident_bytes_ + incoming_bytes > capacity_bytes_) {
    const uint64_t victim = lru_.back();
    auto it = cache_.find(victim);
    if (it != cache_.end()) {
      resident_bytes_ -= it->second.bytes;
      cache_.erase(it);
    }
    lru_.pop_back();
    ++evictions_;
    CountIfEnabled(registry.counter("result_cache.evictions"), 1);
  }
}

Result<std::map<int, uint64_t>> ComputeSubPlanFingerprints(
    const ExecutionPlan& eplan) {
  if (eplan.plan == nullptr) {
    return Status::InvalidArgument("execution plan has no physical plan");
  }
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> order,
                         eplan.plan->TopologicalOrder());
  std::map<int, uint64_t> fps;
  for (Operator* op : order) {
    uint64_t h = PlanFingerprint::kSeed;
    h = PlanFingerprint::Mix(h, op->FingerprintToken());
    h = PlanFingerprint::Mix(h, op->name());
    auto assigned = eplan.assignment.by_op.find(op->id());
    if (assigned != eplan.assignment.by_op.end() &&
        assigned->second != nullptr) {
      h = PlanFingerprint::Mix(h, assigned->second->name());
    }
    h = PlanFingerprint::Mix(h,
                             static_cast<uint64_t>(op->inputs().size()));
    for (const Operator* in : op->inputs()) {
      auto it = fps.find(in->id());
      if (it == fps.end()) {
        return Status::Internal("input op #" + std::to_string(in->id()) +
                                " missing from topological prefix");
      }
      h = PlanFingerprint::Mix(h, it->second);
    }
    fps[op->id()] = h;
  }
  return fps;
}

}  // namespace rheem

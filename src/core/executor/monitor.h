#ifndef RHEEM_CORE_EXECUTOR_MONITOR_H_
#define RHEEM_CORE_EXECUTOR_MONITOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/mapping/platform.h"

namespace rheem {

/// \brief Per-stage progress log kept by the Executor (paper §4.2: the
/// Executor monitors the progress of plan execution).
///
/// Thread-safe: independent stages execute concurrently (and the JobServer
/// may share one monitor across jobs), so RecordStage and the readers
/// synchronize on an internal mutex. records() returns a snapshot.
class ExecutionMonitor {
 public:
  struct StageRecord {
    int stage_id = -1;
    std::string platform;
    int attempt = 0;           // 0 = first try
    bool succeeded = false;
    std::string error;         // when failed
    int64_t wall_micros = 0;
    int64_t sim_overhead_micros = 0;
    int64_t output_records = 0;
    /// Pretty-printed declarative payloads of the stage's operators (e.g.
    /// `filter=age>30 AND dept=="eng"`); empty when every UDF is a closure.
    std::string ops_detail;
  };

  void RecordStage(StageRecord record);

  /// Snapshot of all records so far, in arrival order.
  std::vector<StageRecord> records() const;

  /// Number of failed attempts observed.
  int64_t failures() const;

  /// Human-readable execution report (one line per stage attempt).
  std::string Report() const;

 private:
  mutable std::mutex mu_;
  std::vector<StageRecord> records_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_MONITOR_H_
